#ifndef SYSDS_RUNTIME_MATRIX_OP_CODES_H_
#define SYSDS_RUNTIME_MATRIX_OP_CODES_H_

#include <cmath>
#include <cstdint>
#include <string>

namespace sysds {

/// Elementwise binary operators (matrix-matrix with broadcasting,
/// matrix-scalar, scalar-scalar).
enum class BinaryOpCode {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kPow,
  kMod,      // %% (R semantics: result has sign of divisor)
  kIntDiv,   // %/%
  kMin,
  kMax,
  kEqual,
  kNotEqual,
  kLess,
  kLessEqual,
  kGreater,
  kGreaterEqual,
  kAnd,
  kOr,
  kXor,
};

/// Elementwise unary operators.
enum class UnaryOpCode {
  kExp,
  kLog,
  kSqrt,
  kAbs,
  kRound,
  kFloor,
  kCeil,
  kSin,
  kCos,
  kTan,
  kSign,
  kNot,
  kNegate,
  kSigmoid,
};

/// Full and row/column aggregates.
enum class AggOpCode {
  kSum,
  kSumSq,
  kMean,
  kVar,
  kSd,
  kMin,
  kMax,
  kNnz,     // count of nonzeros
  kTrace,
  kIndexMax,  // 1-based argmax (row-wise only)
  kIndexMin,
};

/// Aggregation direction: full reduce to scalar, per-row, or per-column.
enum class AggDirection {
  kAll,
  kRow,  // result is rows x 1
  kCol,  // result is 1 x cols
};

const char* BinaryOpName(BinaryOpCode op);
const char* UnaryOpName(UnaryOpCode op);
std::string AggOpName(AggOpCode op, AggDirection dir);

/// Textual-opcode parsers shared by the instruction decoders, the fusion
/// planner, and the fused-plan (de)serializer. Return false on unknown
/// opcodes. The accepted strings are exactly the BinaryOpName/UnaryOpName
/// spellings; ParseAggOpcode accepts "ua"/"uar"/"uac" prefixed bases
/// ("sum", "sumsq", "mean", "var", "sd", "min", "max", "nz"/"nnz", "trace",
/// "imax", "imin").
bool ParseBinaryOpcode(const std::string& op, BinaryOpCode* out);
bool ParseUnaryOpcode(const std::string& op, UnaryOpCode* out);
bool ParseAggOpcode(const std::string& op, AggOpCode* out, AggDirection* dir);

/// Applies a scalar binary op. Shared by the matrix kernels, the fused
/// pipeline interpreter, and the scalar instruction path — fused and
/// unfused execution are bit-identical because both fold cells through
/// this one function. Defined inline so the kernels' inner loops can
/// inline it and hoist the opcode switch out of the column loop.
inline double ApplyBinary(BinaryOpCode op, double a, double b) {
  switch (op) {
    case BinaryOpCode::kAdd: return a + b;
    case BinaryOpCode::kSub: return a - b;
    case BinaryOpCode::kMul: return a * b;
    case BinaryOpCode::kDiv: return a / b;
    case BinaryOpCode::kPow:
      // x^2 dominates standardization/variance pipelines; a single rounded
      // multiply is the correctly rounded pow(x, 2) and ~20x cheaper.
      if (b == 2.0) return a * a;
      return std::pow(a, b);
    case BinaryOpCode::kMod: {
      if (b == 0.0) return std::nan("");
      double r = std::fmod(a, b);
      if (r != 0.0 && ((r < 0.0) != (b < 0.0))) r += b;
      return r;
    }
    case BinaryOpCode::kIntDiv: return std::floor(a / b);
    case BinaryOpCode::kMin: return std::fmin(a, b);
    case BinaryOpCode::kMax: return std::fmax(a, b);
    case BinaryOpCode::kEqual: return a == b ? 1.0 : 0.0;
    case BinaryOpCode::kNotEqual: return a != b ? 1.0 : 0.0;
    case BinaryOpCode::kLess: return a < b ? 1.0 : 0.0;
    case BinaryOpCode::kLessEqual: return a <= b ? 1.0 : 0.0;
    case BinaryOpCode::kGreater: return a > b ? 1.0 : 0.0;
    case BinaryOpCode::kGreaterEqual: return a >= b ? 1.0 : 0.0;
    case BinaryOpCode::kAnd: return (a != 0.0 && b != 0.0) ? 1.0 : 0.0;
    case BinaryOpCode::kOr: return (a != 0.0 || b != 0.0) ? 1.0 : 0.0;
    case BinaryOpCode::kXor: return ((a != 0.0) != (b != 0.0)) ? 1.0 : 0.0;
  }
  return std::nan("");
}

inline double ApplyUnary(UnaryOpCode op, double a) {
  switch (op) {
    case UnaryOpCode::kExp: return std::exp(a);
    case UnaryOpCode::kLog: return std::log(a);
    case UnaryOpCode::kSqrt: return std::sqrt(a);
    case UnaryOpCode::kAbs: return std::fabs(a);
    case UnaryOpCode::kRound: return std::round(a);
    case UnaryOpCode::kFloor: return std::floor(a);
    case UnaryOpCode::kCeil: return std::ceil(a);
    case UnaryOpCode::kSin: return std::sin(a);
    case UnaryOpCode::kCos: return std::cos(a);
    case UnaryOpCode::kTan: return std::tan(a);
    case UnaryOpCode::kSign: return a > 0 ? 1.0 : (a < 0 ? -1.0 : 0.0);
    case UnaryOpCode::kNot: return a == 0.0 ? 1.0 : 0.0;
    case UnaryOpCode::kNegate: return -a;
    case UnaryOpCode::kSigmoid: return 1.0 / (1.0 + std::exp(-a));
  }
  return std::nan("");
}

/// True when op(x, 0)==0 for all x in the relevant operand position, i.e.
/// the operation preserves sparsity for sparse inputs (e.g. `*`).
bool IsSparseSafeBinary(BinaryOpCode op);
/// True when op(0)==0, e.g. sqrt/abs/sin but not exp.
bool IsSparseSafeUnary(UnaryOpCode op);

}  // namespace sysds

#endif  // SYSDS_RUNTIME_MATRIX_OP_CODES_H_
