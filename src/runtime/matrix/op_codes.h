#ifndef SYSDS_RUNTIME_MATRIX_OP_CODES_H_
#define SYSDS_RUNTIME_MATRIX_OP_CODES_H_

#include <cmath>
#include <cstdint>
#include <string>

namespace sysds {

/// Elementwise binary operators (matrix-matrix with broadcasting,
/// matrix-scalar, scalar-scalar).
enum class BinaryOpCode {
  kAdd,
  kSub,
  kMul,
  kDiv,
  kPow,
  kMod,      // %% (R semantics: result has sign of divisor)
  kIntDiv,   // %/%
  kMin,
  kMax,
  kEqual,
  kNotEqual,
  kLess,
  kLessEqual,
  kGreater,
  kGreaterEqual,
  kAnd,
  kOr,
  kXor,
};

/// Elementwise unary operators.
enum class UnaryOpCode {
  kExp,
  kLog,
  kSqrt,
  kAbs,
  kRound,
  kFloor,
  kCeil,
  kSin,
  kCos,
  kTan,
  kSign,
  kNot,
  kNegate,
  kSigmoid,
};

/// Full and row/column aggregates.
enum class AggOpCode {
  kSum,
  kSumSq,
  kMean,
  kVar,
  kSd,
  kMin,
  kMax,
  kNnz,     // count of nonzeros
  kTrace,
  kIndexMax,  // 1-based argmax (row-wise only)
  kIndexMin,
};

/// Aggregation direction: full reduce to scalar, per-row, or per-column.
enum class AggDirection {
  kAll,
  kRow,  // result is rows x 1
  kCol,  // result is 1 x cols
};

const char* BinaryOpName(BinaryOpCode op);
const char* UnaryOpName(UnaryOpCode op);
std::string AggOpName(AggOpCode op, AggDirection dir);

/// Applies a scalar binary op (shared by matrix kernels and the scalar
/// instruction path).
double ApplyBinary(BinaryOpCode op, double a, double b);
double ApplyUnary(UnaryOpCode op, double a);

/// True when op(x, 0)==0 for all x in the relevant operand position, i.e.
/// the operation preserves sparsity for sparse inputs (e.g. `*`).
bool IsSparseSafeBinary(BinaryOpCode op);
/// True when op(0)==0, e.g. sqrt/abs/sin but not exp.
bool IsSparseSafeUnary(UnaryOpCode op);

}  // namespace sysds

#endif  // SYSDS_RUNTIME_MATRIX_OP_CODES_H_
