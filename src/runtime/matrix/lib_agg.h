#ifndef SYSDS_RUNTIME_MATRIX_LIB_AGG_H_
#define SYSDS_RUNTIME_MATRIX_LIB_AGG_H_

#include "common/status.h"
#include "runtime/matrix/matrix_block.h"
#include "runtime/matrix/op_codes.h"

namespace sysds {

/// Full aggregate to a scalar. Sums use Kahan-compensated accumulation like
/// SystemDS's KahanPlus to keep results stable across thread counts.
StatusOr<double> AggregateAll(AggOpCode op, const MatrixBlock& a,
                              int num_threads);

/// Row aggregate (result rows x 1) or column aggregate (result 1 x cols).
StatusOr<MatrixBlock> AggregateRowCol(AggOpCode op, AggDirection dir,
                                      const MatrixBlock& a, int num_threads);

/// Column-wise cumulative sum (like DML cumsum).
MatrixBlock CumSum(const MatrixBlock& a);
/// Column-wise cumulative product / min / max.
MatrixBlock CumProd(const MatrixBlock& a);
MatrixBlock CumMin(const MatrixBlock& a);
MatrixBlock CumMax(const MatrixBlock& a);

}  // namespace sysds

#endif  // SYSDS_RUNTIME_MATRIX_LIB_AGG_H_
