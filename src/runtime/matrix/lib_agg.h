#ifndef SYSDS_RUNTIME_MATRIX_LIB_AGG_H_
#define SYSDS_RUNTIME_MATRIX_LIB_AGG_H_

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "runtime/matrix/matrix_block.h"
#include "runtime/matrix/op_codes.h"

namespace sysds {

/// Shared aggregation primitives. The fused-pipeline runtime (lib_fused) and
/// the standalone aggregate kernels both build on these so that a fused plan
/// produces bit-identical results to its unfused counterpart: same per-cell
/// accumulation, same zero handling, same chunking, same merge order.
namespace agg {

// Kahan-compensated accumulator (SystemDS KahanPlus).
struct Kahan {
  double sum = 0.0;
  double corr = 0.0;
  void Add(double v) {
    double y = v - corr;
    double t = sum + y;
    corr = (t - sum) - y;
    sum = t;
  }
};

/// Running statistics over a sequence of cells; a single pass feeds every
/// aggregate so one scan serves sum/mean/var/min/max/argmin/argmax alike.
struct CellStats {
  Kahan sum;
  Kahan sumsq;
  double min = std::numeric_limits<double>::infinity();
  double max = -std::numeric_limits<double>::infinity();
  int64_t nnz = 0;
  int64_t count = 0;
  int64_t argmax = 0;
  int64_t argmin = 0;
  double argmax_val = -std::numeric_limits<double>::infinity();
  double argmin_val = std::numeric_limits<double>::infinity();

  void Add(double v, int64_t idx) {
    sum.Add(v);
    sumsq.Add(v * v);
    min = std::fmin(min, v);
    max = std::fmax(max, v);
    nnz += (v != 0.0);
    ++count;
    if (v > argmax_val) { argmax_val = v; argmax = idx; }
    if (v < argmin_val) { argmin_val = v; argmin = idx; }
  }
};

/// True for aggregates whose result is unaffected by zero cells. Every code
/// path (dense, sparse, fused) skips v == 0.0 cells for these ops, so the
/// result does not depend on the runtime storage format of the input.
inline bool SkipZeros(AggOpCode op) {
  return op == AggOpCode::kSum || op == AggOpCode::kSumSq ||
         op == AggOpCode::kNnz;
}

/// Folds a partial into an accumulated total. Callers must merge partials
/// strictly in chunk order — together with the static chunking from
/// PickChunks this makes parallel reductions deterministic for a fixed
/// (rows, num_threads).
inline void Merge(CellStats* into, const CellStats& from) {
  into->sum.Add(from.sum.sum);
  into->sum.Add(-from.sum.corr);
  into->sumsq.Add(from.sumsq.sum);
  into->sumsq.Add(-from.sumsq.corr);
  into->min = std::fmin(into->min, from.min);
  into->max = std::fmax(into->max, from.max);
  into->nnz += from.nnz;
  into->count += from.count;
  if (from.argmax_val > into->argmax_val) {
    into->argmax_val = from.argmax_val;
    into->argmax = from.argmax;
  }
  if (from.argmin_val < into->argmin_val) {
    into->argmin_val = from.argmin_val;
    into->argmin = from.argmin;
  }
}

inline double Finalize(AggOpCode op, const CellStats& s) {
  switch (op) {
    case AggOpCode::kSum: return s.sum.sum;
    case AggOpCode::kSumSq: return s.sumsq.sum;
    case AggOpCode::kMean: return s.count ? s.sum.sum / s.count : 0.0;
    case AggOpCode::kVar: {
      if (s.count < 2) return 0.0;
      double mean = s.sum.sum / s.count;
      return (s.sumsq.sum - s.count * mean * mean) / (s.count - 1);
    }
    case AggOpCode::kSd: {
      if (s.count < 2) return 0.0;
      double mean = s.sum.sum / s.count;
      double var = (s.sumsq.sum - s.count * mean * mean) / (s.count - 1);
      return std::sqrt(std::fmax(0.0, var));
    }
    case AggOpCode::kMin: return s.count ? s.min : 0.0;
    case AggOpCode::kMax: return s.count ? s.max : 0.0;
    case AggOpCode::kNnz: return static_cast<double>(s.nnz);
    case AggOpCode::kIndexMax: return static_cast<double>(s.argmax + 1);
    case AggOpCode::kIndexMin: return static_cast<double>(s.argmin + 1);
    case AggOpCode::kTrace: return s.sum.sum;
  }
  return std::nan("");
}

/// Sum-only dense-row fold: performs exactly the same rounded operations on
/// the Kahan state as a CellStats scan does on its `sum` field (same column
/// order, same v != 0.0 skip for kSum), so the result is bit-identical to
/// Finalize(kSum, stats) at a fraction of the per-cell cost. Shared by the
/// unfused aggregate kernels and the fused-pipeline runtime — sum is by far
/// the hottest aggregate and the full CellStats tracking (sumsq/min/max/
/// argmin/argmax) would dominate the scan otherwise.
inline void SumDenseRowInto(const double* row, int64_t cols, Kahan* k) {
  for (int64_t j = 0; j < cols; ++j) {
    double v = row[j];
    if (v != 0.0) k->Add(v);
  }
}

inline double SumDenseRow(const double* row, int64_t cols) {
  Kahan k;
  SumDenseRowInto(row, cols, &k);
  return k.sum;
}

/// Deterministic chunked full reduction over rows. `make_scan()` is invoked
/// once per chunk and must return a callable scan(r, CellStats*) that folds
/// row r (this lets callers allocate per-chunk scratch). Partials are merged
/// strictly in chunk order; with one chunk the result equals the serial scan.
template <typename MakeScan>
CellStats FullAggChunked(int64_t rows, int num_threads,
                         const MakeScan& make_scan) {
  if (rows <= 0) return CellStats();
  int64_t chunks = PickChunks(rows, num_threads);
  std::vector<CellStats> partials(static_cast<size_t>(chunks));
  int64_t chunk_rows = (rows + chunks - 1) / chunks;
  ThreadPool::Global().ParallelFor(
      0, rows, chunks, [&](int64_t rb, int64_t re) {
        auto scan = make_scan();
        CellStats& s = partials[static_cast<size_t>(rb / chunk_rows)];
        for (int64_t r = rb; r < re; ++r) scan(r, &s);
      },
      "agg");
  CellStats total = partials[0];
  for (size_t i = 1; i < partials.size(); ++i) Merge(&total, partials[i]);
  return total;
}

/// Sum-only analogue of FullAggChunked: same chunking, and the chunk-ordered
/// merge performs the same two rounded adds per partial as agg::Merge does
/// for the sum field (partial.sum then -partial.corr) — bit-identical to a
/// CellStats reduction's sum. `make_scan()` returns scan(r, Kahan*).
template <typename MakeScan>
Kahan FullSumChunked(int64_t rows, int num_threads, const MakeScan& make_scan) {
  if (rows <= 0) return Kahan();
  int64_t chunks = PickChunks(rows, num_threads);
  std::vector<Kahan> partials(static_cast<size_t>(chunks));
  int64_t chunk_rows = (rows + chunks - 1) / chunks;
  ThreadPool::Global().ParallelFor(
      0, rows, chunks, [&](int64_t rb, int64_t re) {
        auto scan = make_scan();
        Kahan& k = partials[static_cast<size_t>(rb / chunk_rows)];
        for (int64_t r = rb; r < re; ++r) scan(r, &k);
      },
      "agg");
  Kahan total = partials[0];
  for (size_t i = 1; i < partials.size(); ++i) {
    total.Add(partials[i].sum);
    total.Add(-partials[i].corr);
  }
  return total;
}

/// Deterministic chunked column reduction: like FullAggChunked but the scan
/// callable receives a per-column CellStats array (size cols).
template <typename MakeScan>
std::vector<CellStats> ColAggChunked(int64_t rows, int64_t cols,
                                     int num_threads,
                                     const MakeScan& make_scan) {
  std::vector<CellStats> total;
  if (rows <= 0) {
    total.assign(static_cast<size_t>(cols), CellStats());
    return total;
  }
  int64_t chunks = PickChunks(rows, num_threads);
  std::vector<std::vector<CellStats>> partials(static_cast<size_t>(chunks));
  int64_t chunk_rows = (rows + chunks - 1) / chunks;
  ThreadPool::Global().ParallelFor(
      0, rows, chunks, [&](int64_t rb, int64_t re) {
        auto scan = make_scan();
        std::vector<CellStats>& s = partials[static_cast<size_t>(rb / chunk_rows)];
        s.assign(static_cast<size_t>(cols), CellStats());
        for (int64_t r = rb; r < re; ++r) scan(r, s.data());
      },
      "agg");
  for (std::vector<CellStats>& p : partials) {
    if (p.empty()) continue;
    if (total.empty()) {
      total = std::move(p);
      continue;
    }
    for (int64_t j = 0; j < cols; ++j) Merge(&total[j], p[j]);
  }
  if (total.empty()) total.assign(static_cast<size_t>(cols), CellStats());
  return total;
}

}  // namespace agg

/// Full aggregate to a scalar. Sums use Kahan-compensated accumulation like
/// SystemDS's KahanPlus; the chunk-ordered merge keeps results deterministic
/// for a fixed thread count.
StatusOr<double> AggregateAll(AggOpCode op, const MatrixBlock& a,
                              int num_threads);

/// Row aggregate (result rows x 1) or column aggregate (result 1 x cols).
StatusOr<MatrixBlock> AggregateRowCol(AggOpCode op, AggDirection dir,
                                      const MatrixBlock& a, int num_threads);

/// Column-wise cumulative sum (like DML cumsum).
MatrixBlock CumSum(const MatrixBlock& a);
/// Column-wise cumulative product / min / max.
MatrixBlock CumProd(const MatrixBlock& a);
MatrixBlock CumMin(const MatrixBlock& a);
MatrixBlock CumMax(const MatrixBlock& a);

}  // namespace sysds

#endif  // SYSDS_RUNTIME_MATRIX_LIB_AGG_H_
