#ifndef SYSDS_RUNTIME_MATRIX_LIB_SOLVE_H_
#define SYSDS_RUNTIME_MATRIX_LIB_SOLVE_H_

#include "common/status.h"
#include "runtime/matrix/matrix_block.h"

namespace sysds {

/// Solves A x = b. Tries a Cholesky factorization first (the normal-
/// equations matrices of lmDS are SPD); falls back to LU with partial
/// pivoting for general square systems. b may have multiple columns.
StatusOr<MatrixBlock> Solve(const MatrixBlock& a, const MatrixBlock& b);

/// Cholesky factor L (lower triangular) with A = L Lᵀ; fails on non-SPD.
StatusOr<MatrixBlock> Cholesky(const MatrixBlock& a);

/// Matrix inverse via LU.
StatusOr<MatrixBlock> Inverse(const MatrixBlock& a);

/// Determinant via LU.
StatusOr<double> Determinant(const MatrixBlock& a);

}  // namespace sysds

#endif  // SYSDS_RUNTIME_MATRIX_LIB_SOLVE_H_
