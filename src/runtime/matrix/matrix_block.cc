#include "runtime/matrix/matrix_block.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace sysds {

MatrixBlock::MatrixBlock(int64_t rows, int64_t cols, bool sparse)
    : rows_(rows), cols_(cols), sparse_(sparse) {
  if (sparse_) {
    sparse_block_.Reset(rows_);
    nnz_ = 0;
  } else {
    dense_.assign(static_cast<size_t>(rows_ * cols_), 0.0);
    nnz_ = 0;
  }
}

MatrixBlock MatrixBlock::Dense(int64_t rows, int64_t cols, double fill) {
  MatrixBlock mb(rows, cols, /*sparse=*/false);
  if (fill != 0.0) {
    std::fill(mb.dense_.begin(), mb.dense_.end(), fill);
    mb.nnz_ = rows * cols;
  }
  return mb;
}

MatrixBlock MatrixBlock::Sparse(int64_t rows, int64_t cols) {
  return MatrixBlock(rows, cols, /*sparse=*/true);
}

MatrixBlock MatrixBlock::FromValues(int64_t rows, int64_t cols,
                                    const std::vector<double>& values) {
  MatrixBlock mb(rows, cols, /*sparse=*/false);
  size_t n = std::min(values.size(), mb.dense_.size());
  std::copy(values.begin(), values.begin() + n, mb.dense_.begin());
  mb.MarkNnzDirty();
  return mb;
}

int64_t MatrixBlock::NonZeros() const {
  if (nnz_ < 0) nnz_ = ComputeNonZeros();
  return nnz_;
}

int64_t MatrixBlock::ComputeNonZeros() const {
  if (sparse_) return sparse_block_.CountNonZeros();
  int64_t nnz = 0;
  for (double v : dense_) nnz += (v != 0.0);
  return nnz;
}

double MatrixBlock::Get(int64_t r, int64_t c) const {
  if (sparse_) return sparse_block_.Row(r).Get(c);
  return dense_[static_cast<size_t>(r * cols_ + c)];
}

void MatrixBlock::Set(int64_t r, int64_t c, double v) {
  if (sparse_) {
    sparse_block_.Row(r).Set(c, v);
  } else {
    dense_[static_cast<size_t>(r * cols_ + c)] = v;
  }
  MarkNnzDirty();
}

void MatrixBlock::AllocateDense() {
  if (dense_.size() != static_cast<size_t>(rows_ * cols_)) {
    dense_.assign(static_cast<size_t>(rows_ * cols_), 0.0);
  }
}

void MatrixBlock::AllocateSparse() {
  if (sparse_block_.NumRows() != rows_) sparse_block_.Reset(rows_);
}

void MatrixBlock::ToDense() {
  if (!sparse_) return;
  std::vector<double> dense(static_cast<size_t>(rows_ * cols_), 0.0);
  for (int64_t r = 0; r < rows_; ++r) {
    const SparseRow& row = sparse_block_.Row(r);
    for (int64_t k = 0; k < row.Size(); ++k) {
      dense[static_cast<size_t>(r * cols_ + row.Indexes()[k])] =
          row.Values()[k];
    }
  }
  dense_ = std::move(dense);
  sparse_block_ = SparseBlock();
  sparse_ = false;
}

void MatrixBlock::ToSparse() {
  if (sparse_) return;
  SparseBlock sb;
  sb.Reset(rows_);
  for (int64_t r = 0; r < rows_; ++r) {
    const double* src = dense_.data() + r * cols_;
    SparseRow& row = sb.Row(r);
    for (int64_t c = 0; c < cols_; ++c) {
      if (src[c] != 0.0) row.Append(c, src[c]);
    }
  }
  sparse_block_ = std::move(sb);
  dense_.clear();
  dense_.shrink_to_fit();
  sparse_ = true;
}

bool MatrixBlock::EvalSparseFormat(int64_t rows, int64_t cols,
                                   double sparsity) {
  return sparsity < kSparsityTurnPoint && rows * cols >= kMinSparseSize &&
         cols > 1;
}

void MatrixBlock::ExamSparsity() {
  MarkNnzDirty();
  ExamSparsity(NonZeros());
}

void MatrixBlock::ExamSparsity(int64_t known_nnz) {
  nnz_ = known_nnz;
  double cells = static_cast<double>(rows_) * static_cast<double>(cols_);
  double sparsity = cells > 0 ? static_cast<double>(known_nnz) / cells : 0.0;
  bool should_be_sparse = EvalSparseFormat(rows_, cols_, sparsity);
  if (should_be_sparse && !sparse_) {
    ToSparse();
  } else if (!should_be_sparse && sparse_) {
    ToDense();
  }
}

int64_t MatrixBlock::EstimateSizeInBytes() const {
  if (sparse_) {
    // MCSR: per nonzero an index + value, plus per-row vector overhead.
    return NonZeros() * 16 + rows_ * 48 + 64;
  }
  return rows_ * cols_ * 8 + 64;
}

int64_t MatrixBlock::EstimateSizeInBytes(int64_t rows, int64_t cols,
                                         double sparsity) {
  if (EvalSparseFormat(rows, cols, sparsity)) {
    int64_t nnz = static_cast<int64_t>(std::ceil(sparsity * rows * cols));
    return nnz * 16 + rows * 48 + 64;
  }
  return rows * cols * 8 + 64;
}

bool MatrixBlock::EqualsApprox(const MatrixBlock& other, double eps) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  for (int64_t r = 0; r < rows_; ++r) {
    for (int64_t c = 0; c < cols_; ++c) {
      double a = Get(r, c), b = other.Get(r, c);
      if (std::isnan(a) != std::isnan(b)) return false;
      if (!std::isnan(a) && std::fabs(a - b) > eps) return false;
    }
  }
  return true;
}

std::string MatrixBlock::ToString(int64_t max_rows, int64_t max_cols) const {
  std::ostringstream os;
  os << rows_ << "x" << cols_ << " " << (sparse_ ? "sparse" : "dense")
     << " nnz=" << NonZeros();
  if (rows_ <= max_rows && cols_ <= max_cols) {
    os << "\n";
    for (int64_t r = 0; r < rows_; ++r) {
      for (int64_t c = 0; c < cols_; ++c) {
        if (c > 0) os << " ";
        os << Get(r, c);
      }
      os << "\n";
    }
  }
  return os.str();
}

}  // namespace sysds
