#ifndef SYSDS_RUNTIME_RECOVERY_CHECKPOINT_MANAGER_H_
#define SYSDS_RUNTIME_RECOVERY_CHECKPOINT_MANAGER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/util.h"
#include "runtime/controlprog/program.h"

namespace sysds {

class ExecutionContext;

/// Stable program identity for checkpoint manifests: hashes the runtime
/// plan rendering (Program::Explain) after renumbering compiler-generated
/// temporary names (`_mVar<n>`, `__pred<n>`) in first-appearance order —
/// their process-global counters differ between compiles of identical
/// source, but the canonicalized plan does not.
uint64_t ProgramIdentityHash(const std::string& explain_text);

// Lineage-based checkpoint/restart for long-running iterative programs.
//
// Model: a crashed run is recovered by RE-EXECUTION, not by core-dump-style
// state capture. A fresh run with `resume` enabled re-executes the program
// from the top — that prefix is deterministic (auto-generated RNG seeds are
// restored from the manifest, everything else is a pure function of the
// inputs) — until it reaches the loop named in the committed manifest. There
// it restores the loop-carried variables from the checkpoint files, fast-
// forwards the iteration counter, and continues. Intermediates that were NOT
// saved are thereby recomputed from lineage: the manifest records their
// lineage keys, and the re-executed prefix rebuilds exactly the values those
// keys describe (invariant reads are validated by comparing the recorded
// lineage hashes against the re-traced ones).
//
// Durability: every file — one per checkpointed variable, plus the manifest
// — is written via io::WriteAtomic (temp file, CRC32 footer, atomic rename).
// Variable files are generation-numbered (`loop<id>_g<gen>_<var>.bin`) and
// the manifest rename is the commit point: a crash mid-checkpoint leaves the
// previous committed generation intact, and the new generation's orphans are
// garbage. Only after the manifest commits is the previous generation
// deleted.
//
// Scope: only OUTERMOST annotated loops of the root context checkpoint
// (BeginLoop's depth guard); loops nested inside a checkpointed loop, loops
// in function bodies, and parfor-worker loops are covered by their
// enclosing checkpoint or by prefix re-execution. On successful loop
// completion the loop's checkpoint state is deleted.
class CheckpointManager {
 public:
  struct Options {
    std::string dir;
    /// Checkpoint every N-th completed iteration. <= 0 selects the adaptive
    /// cost gate: checkpoint when estimated lost work since the last
    /// checkpoint exceeds cost_factor x the estimated write cost (write
    /// throughput is calibrated by EMA over completed checkpoints).
    int64_t interval = 1;
    double cost_factor = 2.0;
    bool resume = false;
  };

  CheckpointManager(Options options, uint64_t program_hash);

  /// Resume mode: scans the checkpoint directory for committed manifests,
  /// rejects version mismatches (a manifest whose program hash differs from
  /// this run's program), and restores the run-start RNG seed state so the
  /// re-executed prefix draws the original run's seeds. Call once, before
  /// Program::Execute.
  Status PrepareResume();

  /// Depth guard: true if `loop_id` became the active checkpointed loop
  /// (no other loop is active). Every BeginLoop(true) must be paired with
  /// EndLoop.
  bool BeginLoop(int loop_id);

  /// `completed` = the loop finished normally: its checkpoint state is
  /// deleted (resume would be wasted work — re-execution is cheaper than
  /// restoring a finished loop's last iteration).
  void EndLoop(int loop_id, bool completed);

  /// Restores a committed checkpoint for `loop_id` if one exists: CRC-
  /// verified variable restore into ec's symbol table, invariant lineage
  /// validation, lineage leaves for restored variables, RNG seed state
  /// restore. Returns the number of completed iterations to fast-forward
  /// past (0 = no checkpoint, start from scratch).
  StatusOr<int64_t> TryResume(int loop_id, const LoopLiveness& liveness,
                              ExecutionContext* ec);

  /// Called after every completed iteration of the active loop. Applies the
  /// cost gate, writes a checkpoint generation when the gate opens, then
  /// probes the deterministic kCrash kill point — returning kAborted to
  /// simulate a process crash at this exact boundary.
  Status AtBoundary(int loop_id, const LoopLiveness& liveness,
                    int64_t completed, ExecutionContext* ec);

  const Options& options() const { return options_; }
  int64_t CheckpointsWritten() const { return checkpoints_written_; }

 private:
  struct ManifestVar {
    std::string name;
    std::string file;
    uint64_t lineage_hash = 0;  // 0 = not traced
  };
  struct Manifest {
    uint64_t program_hash = 0;
    int loop_id = -1;
    int64_t generation = 0;
    int64_t completed = 0;
    SeedState seed_start;
    SeedState seed_now;
    std::vector<ManifestVar> vars;
    std::vector<std::pair<std::string, uint64_t>> invariants;
  };

  std::string ManifestPath(int loop_id) const;
  std::string VarFilePath(int loop_id, int64_t generation,
                          size_t var_index) const;
  bool GateOpen(int64_t completed);
  Status WriteCheckpoint(int loop_id, const LoopLiveness& liveness,
                         int64_t completed, ExecutionContext* ec);
  void DeleteLoopState(int loop_id);
  static std::string SerializeManifest(const Manifest& m);
  static StatusOr<Manifest> ParseManifest(const std::string& text);

  Options options_;
  uint64_t program_hash_;
  SeedState seed_start_;
  int active_loop_ = -1;
  int64_t generation_ = 0;
  int64_t last_checkpoint_iter_ = 0;
  int64_t checkpoints_written_ = 0;
  // Adaptive gate state: wall-clock since the last checkpoint and an EMA of
  // observed write throughput (bytes/second).
  Timer since_checkpoint_;
  double write_throughput_ = 200.0 * 1024 * 1024;
  int64_t last_checkpoint_bytes_ = 0;
  // Committed manifests discovered by PrepareResume, consumed by TryResume.
  std::map<int, Manifest> resumable_;
};

/// RAII wrapper used by the loop Execute methods: activates checkpointing
/// for the loop when the context carries a manager, this loop is annotated,
/// and no enclosing loop holds the depth guard. The destructor releases the
/// guard; Finish() additionally deletes the loop's checkpoint state (call
/// it only on normal loop completion, so a crash unwind keeps the state).
class CheckpointScope {
 public:
  CheckpointScope(ExecutionContext* ec, const LoopLiveness& liveness);
  ~CheckpointScope();
  CheckpointScope(const CheckpointScope&) = delete;
  CheckpointScope& operator=(const CheckpointScope&) = delete;

  bool active() const { return manager_ != nullptr; }

  /// Fast-forward count from a committed checkpoint (0 = none).
  StatusOr<int64_t> TryResume(ExecutionContext* ec);

  Status AtBoundary(ExecutionContext* ec, int64_t completed);

  /// Marks normal completion: deletes the loop's checkpoint state.
  Status Finish();

 private:
  CheckpointManager* manager_ = nullptr;
  const LoopLiveness& liveness_;
  bool finished_ = false;
};

}  // namespace sysds

#endif  // SYSDS_RUNTIME_RECOVERY_CHECKPOINT_MANAGER_H_
