#include "runtime/recovery/checkpoint_manager.h"

#include <algorithm>
#include <filesystem>
#include <sstream>

#include "common/faults.h"
#include "io/atomic_file.h"
#include "io/io.h"
#include "lineage/lineage.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/compress/compress_io.h"
#include "runtime/controlprog/execution_context.h"

namespace sysds {

namespace {

constexpr char kManifestHeader[] = "sysds-checkpoint v1";

// Variable file payload tags.
constexpr uint8_t kTagScalar = 0;
constexpr uint8_t kTagMatrix = 1;
constexpr uint8_t kTagCompressed = 2;
constexpr uint8_t kTagFrame = 3;

struct RecoveryMetrics {
  obs::Counter* checkpoints;
  obs::Counter* bytes_written;
  obs::Counter* resumes;
  obs::Counter* boundaries;
  obs::Counter* gate_skips;
  obs::Counter* failures;
};

RecoveryMetrics& Metrics() {
  static RecoveryMetrics m = {
      obs::MetricsRegistry::Get().GetCounter("recovery.checkpoints"),
      obs::MetricsRegistry::Get().GetCounter("recovery.bytes_written"),
      obs::MetricsRegistry::Get().GetCounter("recovery.resumes"),
      obs::MetricsRegistry::Get().GetCounter("recovery.boundaries"),
      obs::MetricsRegistry::Get().GetCounter("recovery.gate_skips"),
      obs::MetricsRegistry::Get().GetCounter("recovery.checkpoint_failures"),
  };
  return m;
}

Status WriteScalarPayload(const ScalarObject& s, std::ostream& out) {
  uint8_t vt = static_cast<uint8_t>(s.GetValueType());
  out.write(reinterpret_cast<const char*>(&vt), 1);
  switch (s.GetValueType()) {
    case ValueType::kInt64: {
      int64_t v = s.AsInt();
      out.write(reinterpret_cast<const char*>(&v), 8);
      break;
    }
    case ValueType::kBoolean: {
      uint8_t v = s.AsBool() ? 1 : 0;
      out.write(reinterpret_cast<const char*>(&v), 1);
      break;
    }
    case ValueType::kString: {
      std::string v = s.AsString();
      int64_t n = static_cast<int64_t>(v.size());
      out.write(reinterpret_cast<const char*>(&n), 8);
      out.write(v.data(), static_cast<std::streamsize>(n));
      break;
    }
    default: {  // FP64 (and FP32/unknown scalars, stored as double bits)
      double v = s.AsDouble();
      out.write(reinterpret_cast<const char*>(&v), 8);
      break;
    }
  }
  if (!out) return IoError("scalar checkpoint write failed");
  return Status::Ok();
}

StatusOr<DataPtr> ReadScalarPayload(std::istream& in) {
  uint8_t vt = 0;
  in.read(reinterpret_cast<char*>(&vt), 1);
  if (!in) return CorruptError("truncated scalar checkpoint");
  switch (static_cast<ValueType>(vt)) {
    case ValueType::kInt64: {
      int64_t v = 0;
      in.read(reinterpret_cast<char*>(&v), 8);
      if (!in) return CorruptError("truncated scalar checkpoint");
      return ScalarObject::MakeInt(v);
    }
    case ValueType::kBoolean: {
      uint8_t v = 0;
      in.read(reinterpret_cast<char*>(&v), 1);
      if (!in) return CorruptError("truncated scalar checkpoint");
      return ScalarObject::MakeBool(v != 0);
    }
    case ValueType::kString: {
      int64_t n = 0;
      in.read(reinterpret_cast<char*>(&n), 8);
      if (!in || n < 0) return CorruptError("truncated scalar checkpoint");
      std::string v(static_cast<size_t>(n), '\0');
      in.read(v.data(), static_cast<std::streamsize>(n));
      if (!in) return CorruptError("truncated scalar checkpoint");
      return ScalarObject::MakeString(std::move(v));
    }
    default: {
      double v = 0.0;
      in.read(reinterpret_cast<char*>(&v), 8);
      if (!in) return CorruptError("truncated scalar checkpoint");
      return ScalarObject::MakeDouble(v);
    }
  }
}

Status WriteVarPayload(Data* d, std::ostream& out) {
  switch (d->GetDataType()) {
    case DataType::kScalar: {
      out.write(reinterpret_cast<const char*>(&kTagScalar), 1);
      return WriteScalarPayload(*static_cast<ScalarObject*>(d), out);
    }
    case DataType::kMatrix: {
      auto* m = static_cast<MatrixObject*>(d);
      if (m->HasCompressed()) {
        out.write(reinterpret_cast<const char*>(&kTagCompressed), 1);
        SYSDS_ASSIGN_OR_RETURN(const CompressedMatrixBlock* cb,
                               m->AcquireCompressed());
        Status st = WriteCompressedStream(*cb, out);
        m->Release();
        return st;
      }
      out.write(reinterpret_cast<const char*>(&kTagMatrix), 1);
      SYSDS_ASSIGN_OR_RETURN(const MatrixBlock* mb, m->AcquireRead());
      Status st = io::WriteMatrixBinaryStream(*mb, out);
      m->Release();
      return st;
    }
    case DataType::kFrame: {
      out.write(reinterpret_cast<const char*>(&kTagFrame), 1);
      return io::WriteFrameBinaryStream(
          static_cast<FrameObject*>(d)->Frame(), out);
    }
    default:
      return Unimplemented("checkpoint: unsupported data type");
  }
}

StatusOr<DataPtr> ReadVarPayload(std::istream& in) {
  uint8_t tag = 0;
  in.read(reinterpret_cast<char*>(&tag), 1);
  if (!in) return CorruptError("truncated checkpoint payload");
  switch (tag) {
    case kTagScalar:
      return ReadScalarPayload(in);
    case kTagMatrix: {
      SYSDS_ASSIGN_OR_RETURN(MatrixBlock m, io::ReadMatrixBinaryStream(in));
      return std::static_pointer_cast<Data>(
          std::make_shared<MatrixObject>(std::move(m)));
    }
    case kTagCompressed: {
      SYSDS_ASSIGN_OR_RETURN(CompressedMatrixBlock c, ReadCompressedStream(in));
      return std::static_pointer_cast<Data>(
          std::make_shared<MatrixObject>(std::move(c)));
    }
    case kTagFrame: {
      SYSDS_ASSIGN_OR_RETURN(FrameBlock f, io::ReadFrameBinaryStream(in));
      return std::static_pointer_cast<Data>(
          std::make_shared<FrameObject>(std::move(f)));
    }
    default:
      return CorruptError("unknown checkpoint payload tag");
  }
}

bool IsCheckpointableType(const Data& d) {
  switch (d.GetDataType()) {
    case DataType::kScalar:
    case DataType::kMatrix:
    case DataType::kFrame:
      return true;
    default:
      return false;
  }
}

std::string HexU64(uint64_t v) {
  std::ostringstream os;
  os << std::hex << v;
  return os.str();
}

}  // namespace

uint64_t ProgramIdentityHash(const std::string& explain_text) {
  static constexpr const char* kPrefixes[] = {"_mVar", "__pred"};
  std::string canon;
  canon.reserve(explain_text.size());
  std::map<std::string, int> remap;
  int next_index[2] = {0, 0};
  size_t i = 0;
  auto is_digit = [](char c) { return c >= '0' && c <= '9'; };
  while (i < explain_text.size()) {
    bool matched = false;
    for (int p = 0; p < 2; ++p) {
      const size_t plen = std::char_traits<char>::length(kPrefixes[p]);
      if (explain_text.compare(i, plen, kPrefixes[p]) != 0 ||
          i + plen >= explain_text.size() ||
          !is_digit(explain_text[i + plen])) {
        continue;
      }
      size_t j = i + plen;
      while (j < explain_text.size() && is_digit(explain_text[j])) ++j;
      auto [it, inserted] =
          remap.try_emplace(explain_text.substr(i, j - i), next_index[p]);
      if (inserted) ++next_index[p];
      canon.append(kPrefixes[p]).append(std::to_string(it->second));
      i = j;
      matched = true;
      break;
    }
    if (!matched) canon.push_back(explain_text[i++]);
  }
  return HashString(canon);
}

CheckpointManager::CheckpointManager(Options options, uint64_t program_hash)
    : options_(std::move(options)),
      program_hash_(program_hash),
      seed_start_(GetSeedState()) {
  std::error_code ec;
  std::filesystem::create_directories(options_.dir, ec);
}

std::string CheckpointManager::ManifestPath(int loop_id) const {
  return options_.dir + "/manifest_loop" + std::to_string(loop_id) + ".ckpt";
}

std::string CheckpointManager::VarFilePath(int loop_id, int64_t generation,
                                           size_t var_index) const {
  return options_.dir + "/loop" + std::to_string(loop_id) + "_g" +
         std::to_string(generation) + "_v" + std::to_string(var_index) +
         ".bin";
}

std::string CheckpointManager::SerializeManifest(const Manifest& m) {
  std::ostringstream os;
  os << kManifestHeader << "\n";
  os << "program " << HexU64(m.program_hash) << "\n";
  os << "loop " << m.loop_id << "\n";
  os << "generation " << m.generation << "\n";
  os << "completed " << m.completed << "\n";
  os << "seed_start " << m.seed_start.base << " " << m.seed_start.counter
     << "\n";
  os << "seed_now " << m.seed_now.base << " " << m.seed_now.counter << "\n";
  os << "vars " << m.vars.size() << "\n";
  for (const ManifestVar& v : m.vars) {
    os << "v " << HexU64(v.lineage_hash) << " " << v.file << " " << v.name
       << "\n";
  }
  os << "invariants " << m.invariants.size() << "\n";
  for (const auto& [name, hash] : m.invariants) {
    os << "i " << HexU64(hash) << " " << name << "\n";
  }
  return os.str();
}

StatusOr<CheckpointManager::Manifest> CheckpointManager::ParseManifest(
    const std::string& text) {
  std::istringstream in(text);
  std::string line;
  if (!std::getline(in, line) || line != kManifestHeader) {
    return CorruptError("checkpoint manifest: bad header");
  }
  Manifest m;
  std::string key;
  auto fail = [] { return CorruptError("checkpoint manifest: malformed"); };
  std::string hex;
  if (!(in >> key >> hex) || key != "program") return fail();
  m.program_hash = std::stoull(hex, nullptr, 16);
  if (!(in >> key >> m.loop_id) || key != "loop") return fail();
  if (!(in >> key >> m.generation) || key != "generation") return fail();
  if (!(in >> key >> m.completed) || key != "completed") return fail();
  if (!(in >> key >> m.seed_start.base >> m.seed_start.counter) ||
      key != "seed_start") {
    return fail();
  }
  if (!(in >> key >> m.seed_now.base >> m.seed_now.counter) ||
      key != "seed_now") {
    return fail();
  }
  size_t nvars = 0;
  if (!(in >> key >> nvars) || key != "vars") return fail();
  m.vars.resize(nvars);
  for (ManifestVar& v : m.vars) {
    if (!(in >> key >> hex >> v.file >> v.name) || key != "v") return fail();
    v.lineage_hash = std::stoull(hex, nullptr, 16);
  }
  size_t ninv = 0;
  if (!(in >> key >> ninv) || key != "invariants") return fail();
  m.invariants.resize(ninv);
  for (auto& [name, hash] : m.invariants) {
    if (!(in >> key >> hex >> name) || key != "i") return fail();
    hash = std::stoull(hex, nullptr, 16);
  }
  return m;
}

Status CheckpointManager::PrepareResume() {
  if (!options_.resume) return Status::Ok();
  SYSDS_SPAN("recovery", "prepare_resume");
  std::error_code ec;
  std::filesystem::directory_iterator it(options_.dir, ec);
  if (ec) return Status::Ok();  // empty/missing dir: nothing to resume
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("manifest_loop", 0) != 0) continue;
    SYSDS_ASSIGN_OR_RETURN(std::string text,
                           io::ReadVerified(entry.path().string()));
    SYSDS_ASSIGN_OR_RETURN(Manifest m, ParseManifest(text));
    if (m.program_hash != program_hash_) {
      return ValidateError(
          "checkpoint version mismatch: manifest '" + name +
          "' was written by a different program (hash " +
          HexU64(m.program_hash) + ", this run " + HexU64(program_hash_) +
          "); delete the checkpoint directory to start fresh");
    }
    resumable_[m.loop_id] = std::move(m);
  }
  if (!resumable_.empty()) {
    // Every manifest of one run records the same start state; restore it so
    // the re-executed prefix draws the original run's generated seeds.
    seed_start_ = resumable_.begin()->second.seed_start;
    SetSeedState(seed_start_);
  }
  return Status::Ok();
}

bool CheckpointManager::BeginLoop(int loop_id) {
  if (loop_id < 0 || active_loop_ != -1) return false;
  active_loop_ = loop_id;
  generation_ = 0;
  last_checkpoint_iter_ = 0;
  last_checkpoint_bytes_ = 0;
  since_checkpoint_.Reset();
  return true;
}

void CheckpointManager::EndLoop(int loop_id, bool completed) {
  if (active_loop_ != loop_id) return;
  active_loop_ = -1;
  if (completed) DeleteLoopState(loop_id);
}

void CheckpointManager::DeleteLoopState(int loop_id) {
  std::error_code ec;
  std::filesystem::remove(ManifestPath(loop_id), ec);
  const std::string prefix = "loop" + std::to_string(loop_id) + "_g";
  std::filesystem::directory_iterator it(options_.dir, ec);
  if (ec) return;
  for (const auto& entry : it) {
    if (entry.path().filename().string().rfind(prefix, 0) == 0) {
      std::filesystem::remove(entry.path(), ec);
    }
  }
}

StatusOr<int64_t> CheckpointManager::TryResume(int loop_id,
                                               const LoopLiveness& liveness,
                                               ExecutionContext* ec) {
  auto it = resumable_.find(loop_id);
  if (it == resumable_.end()) return static_cast<int64_t>(0);
  SYSDS_SPAN("recovery", "resume");
  Manifest m = std::move(it->second);
  resumable_.erase(it);

  // Invariant reads were recomputed by the re-executed prefix; their lineage
  // must hash to what the original run recorded, or the checkpointed state
  // is inconsistent with this run's inputs.
  for (const auto& [name, hash] : m.invariants) {
    if (hash == 0) continue;
    LineageItemPtr cur = ec->Lineage()->GetOrNull(name);
    if (cur != nullptr && cur->hash() != hash) {
      return ValidateError(
          "checkpoint resume: invariant input '" + name +
          "' has different lineage than when the checkpoint was taken");
    }
  }

  for (const ManifestVar& v : m.vars) {
    SYSDS_ASSIGN_OR_RETURN(std::string payload,
                           io::ReadVerified(options_.dir + "/" + v.file));
    std::istringstream in(payload, std::ios::binary);
    auto restored = ReadVarPayload(in);
    if (!restored.ok()) {
      return Status(restored.status().code(),
                    "checkpoint resume: variable '" + v.name + "': " +
                        restored.status().message());
    }
    ec->Vars().Set(v.name, std::move(restored).value());
    if (ec->TracingEnabled()) {
      // Restored state re-enters the trace as a leaf carrying the original
      // lineage key, so downstream tracing (and loop dedup) stays stable.
      ec->Lineage()->Set(
          v.name, LineageItem::Leaf("ckpt", v.name + "#" +
                                                HexU64(v.lineage_hash)));
    }
  }
  (void)liveness;

  // Post-resume iterations must draw the seeds the original run would have.
  SetSeedState(m.seed_now);
  generation_ = m.generation;
  last_checkpoint_iter_ = m.completed;
  since_checkpoint_.Reset();
  Metrics().resumes->Add(1);
  obs::Tracer::Instant("recovery", "resume");
  return m.completed;
}

bool CheckpointManager::GateOpen(int64_t completed) {
  if (options_.interval > 0) {
    return completed - last_checkpoint_iter_ >= options_.interval;
  }
  // Adaptive: balance re-execution cost (work since the last checkpoint)
  // against the cost of writing one. The first boundary always writes to
  // calibrate throughput.
  if (checkpoints_written_ == 0) return true;
  double lost_work = since_checkpoint_.ElapsedSeconds();
  double est_write =
      std::max(static_cast<double>(last_checkpoint_bytes_) / write_throughput_,
               1e-4);
  return lost_work >= options_.cost_factor * est_write;
}

Status CheckpointManager::WriteCheckpoint(int loop_id,
                                          const LoopLiveness& liveness,
                                          int64_t completed,
                                          ExecutionContext* ec) {
  SYSDS_SPAN("recovery", "checkpoint");
  Timer write_timer;
  const int64_t gen = generation_ + 1;
  Manifest m;
  m.program_hash = program_hash_;
  m.loop_id = loop_id;
  m.generation = gen;
  m.completed = completed;
  m.seed_start = seed_start_;
  m.seed_now = GetSeedState();

  int64_t bytes = 0;
  for (size_t i = 0; i < liveness.checkpoint_vars.size(); ++i) {
    const std::string& name = liveness.checkpoint_vars[i];
    DataPtr d = ec->Vars().GetOrNull(name);
    if (d == nullptr) continue;  // not assigned yet (conditional write)
    if (!IsCheckpointableType(*d)) {
      return Unimplemented("checkpoint: variable '" + name +
                           "' has an unsupported data type");
    }
    std::string file = VarFilePath(loop_id, gen, i);
    SYSDS_RETURN_IF_ERROR(io::WriteAtomic(
        file, [&](std::ostream& out) { return WriteVarPayload(d.get(), out); }));
    std::error_code fec;
    bytes += static_cast<int64_t>(std::filesystem::file_size(file, fec));
    ManifestVar mv;
    mv.name = name;
    mv.file = std::filesystem::path(file).filename().string();
    LineageItemPtr li =
        ec->TracingEnabled() ? ec->Lineage()->GetOrNull(name) : nullptr;
    mv.lineage_hash = li != nullptr ? li->hash() : 0;
    m.vars.push_back(std::move(mv));
  }
  for (const std::string& name : liveness.invariant_reads) {
    LineageItemPtr li =
        ec->TracingEnabled() ? ec->Lineage()->GetOrNull(name) : nullptr;
    m.invariants.emplace_back(name, li != nullptr ? li->hash() : 0);
  }

  // The manifest rename is the commit point; only then does the previous
  // generation become garbage.
  std::string manifest_text = SerializeManifest(m);
  SYSDS_RETURN_IF_ERROR(io::WriteAtomic(
      ManifestPath(loop_id), [&](std::ostream& out) -> Status {
        out << manifest_text;
        return out ? Status::Ok() : IoError("manifest write failed");
      }));
  if (generation_ > 0) {
    for (size_t i = 0; i < liveness.checkpoint_vars.size(); ++i) {
      std::error_code fec;
      std::filesystem::remove(VarFilePath(loop_id, generation_, i), fec);
    }
  }
  generation_ = gen;
  last_checkpoint_iter_ = completed;
  last_checkpoint_bytes_ = bytes;
  double elapsed = write_timer.ElapsedSeconds();
  if (bytes > 0 && elapsed > 1e-9) {
    // EMA throughput calibration for the adaptive gate.
    write_throughput_ = 0.7 * write_throughput_ + 0.3 * (bytes / elapsed);
  }
  since_checkpoint_.Reset();
  ++checkpoints_written_;
  Metrics().checkpoints->Add(1);
  Metrics().bytes_written->Add(bytes);
  return Status::Ok();
}

Status CheckpointManager::AtBoundary(int loop_id, const LoopLiveness& liveness,
                                     int64_t completed, ExecutionContext* ec) {
  Metrics().boundaries->Add(1);
  if (GateOpen(completed)) {
    Status st = WriteCheckpoint(loop_id, liveness, completed, ec);
    if (!st.ok()) {
      // Checkpointing is best-effort: a failed write costs recovery
      // granularity, not the run. The committed previous generation (if
      // any) stays valid.
      Metrics().failures->Add(1);
      obs::Tracer::Instant("recovery", "checkpoint_failed");
    }
  } else {
    Metrics().gate_skips->Add(1);
  }
  // Deterministic kill point: simulate a process crash at exactly this
  // boundary. kAborted is non-retryable and unwinds the whole run.
  if (FaultInjector::Get().ShouldInject(FaultLayer::kRecovery, loop_id,
                                        FaultKind::kCrash)) {
    return AbortedError("simulated crash at checkpoint boundary " +
                        std::to_string(completed) + " of loop " +
                        std::to_string(loop_id));
  }
  return Status::Ok();
}

CheckpointScope::CheckpointScope(ExecutionContext* ec,
                                 const LoopLiveness& liveness)
    : liveness_(liveness) {
  CheckpointManager* cm = ec->Checkpoints();
  if (cm != nullptr && cm->BeginLoop(liveness.loop_id)) manager_ = cm;
}

CheckpointScope::~CheckpointScope() {
  if (manager_ != nullptr && !finished_) {
    manager_->EndLoop(liveness_.loop_id, /*completed=*/false);
  }
}

StatusOr<int64_t> CheckpointScope::TryResume(ExecutionContext* ec) {
  if (manager_ == nullptr) return static_cast<int64_t>(0);
  return manager_->TryResume(liveness_.loop_id, liveness_, ec);
}

Status CheckpointScope::AtBoundary(ExecutionContext* ec, int64_t completed) {
  if (manager_ == nullptr) return Status::Ok();
  return manager_->AtBoundary(liveness_.loop_id, liveness_, completed, ec);
}

Status CheckpointScope::Finish() {
  if (manager_ != nullptr && !finished_) {
    finished_ = true;
    manager_->EndLoop(liveness_.loop_id, /*completed=*/true);
  }
  return Status::Ok();
}

}  // namespace sysds
