#ifndef SYSDS_COMMON_JSON_H_
#define SYSDS_COMMON_JSON_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"

namespace sysds {

/// Minimal JSON value used for transform specs (§3.2 feature
/// transformations) and data-format descriptors (generated readers). Not a
/// general-purpose JSON library: no unicode escapes beyond \uXXXX pass-
/// through, numbers are doubles.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() : kind_(Kind::kNull) {}
  static JsonValue MakeBool(bool b);
  static JsonValue MakeNumber(double d);
  static JsonValue MakeString(std::string s);
  static JsonValue MakeArray();
  static JsonValue MakeObject();

  Kind kind() const { return kind_; }
  bool IsNull() const { return kind_ == Kind::kNull; }
  bool AsBool() const { return bool_; }
  double AsNumber() const { return number_; }
  const std::string& AsString() const { return string_; }
  const std::vector<JsonValue>& AsArray() const { return array_; }
  std::vector<JsonValue>& MutableArray() { return array_; }
  const std::map<std::string, JsonValue>& AsObject() const { return object_; }
  std::map<std::string, JsonValue>& MutableObject() { return object_; }

  /// Object field lookup; returns nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  std::string Dump() const;

 private:
  Kind kind_;
  bool bool_ = false;
  double number_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Parses a JSON document; returns ParseError with position info on bad
/// input.
StatusOr<JsonValue> ParseJson(const std::string& text);

}  // namespace sysds

#endif  // SYSDS_COMMON_JSON_H_
