#ifndef SYSDS_COMMON_FAULTS_H_
#define SYSDS_COMMON_FAULTS_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace sysds {

// Deterministic, seed-driven fault injection ("chaos mode"). The runtime's
// fragile layers — federated request/response, the distributed-executor
// simulator, the parameter server, and the buffer pool's spill paths — ask
// the process-wide FaultInjector whether the next event at a given
// (layer, id) should fail, be delayed, or be corrupted. Decisions are pure
// functions of (seed, layer, id, per-key event counter), so two runs with
// the same seed and the same per-site call order inject the identical fault
// sequence: chaos tests are reproducible and failures bisectable.
//
// When disabled (the default), every hook reduces to one relaxed atomic
// load and a branch — cheap enough to leave compiled into release builds
// (bench/bench_chaos.cc keeps the disabled overhead under 1%).

/// The runtime layer asking for a fault decision. Each layer consumes an
/// independent decision stream per id.
enum class FaultLayer : uint8_t {
  kFederated = 0,   // id = federated site
  kDist = 1,        // id = simulated executor task
  kPs = 2,          // id = parameter-server worker
  kBufferPool = 3,  // id = 0 (process-wide spill device)
  kRecovery = 4,    // id = checkpointed loop id (kPsRecoveryId for PsTrain)
};

/// The kRecovery stream id used by the parameter server's round-boundary
/// kill points (loop ids are small non-negative integers; this is out of
/// their range).
constexpr int kPsRecoveryId = 1 << 20;

/// Kinds of injectable faults. Not every kind is meaningful for every
/// layer; layers only probe the kinds they model.
enum class FaultKind : uint8_t {
  kMessageDrop = 0,    // request or response lost (surfaces as a timeout)
  kDelay = 1,          // response delayed by FaultProfile::delay_ms
  kCorruptPayload = 2, // response payload bit-flipped (integrity check trips)
  kCrash = 3,          // worker/executor crash: in-memory state lost
  kSpillIoError = 4,   // buffer-pool spill write / evict-read fails
};

const char* FaultLayerName(FaultLayer layer);
const char* FaultKindName(FaultKind kind);

/// A permanently-failed component: every decision for (layer, id) of any
/// kind reports failure, modeling e.g. a federated site that never answers.
struct FaultTarget {
  FaultLayer layer;
  int id;
};

/// Per-deployment fault rates. Probabilities are in [0, 1] and evaluated
/// independently per event.
struct FaultProfile {
  double drop_prob = 0.0;
  double delay_prob = 0.0;
  double corrupt_prob = 0.0;
  double crash_prob = 0.0;
  double spill_error_prob = 0.0;
  /// Injected response delay (kDelay). Layers compare it against their
  /// per-request timeout: a delay longer than the timeout is a timeout.
  int delay_ms = 5;
  /// Components that are dead for the whole run.
  std::vector<FaultTarget> dead_targets;
  /// Deterministic process-crash kill point for checkpoint/restart tests:
  /// when >= 1, the N-th kCrash probe (1-based, counted per (kRecovery, id)
  /// stream) on the kRecovery layer injects a crash — i.e. execution aborts
  /// at exactly the N-th checkpoint boundary. Probability-based crash_prob
  /// never applies to kRecovery; kill points are exact by design so chaos
  /// suites can target iteration {1, k/2, k-1} boundaries.
  int64_t crash_at_boundary = 0;

  /// The chaos-suite default: 10% message drop, occasional delay/corruption,
  /// rare crashes, and spill errors (`dml_runner --chaos-seed`, ctest -L
  /// chaos). Dead targets are added per scenario.
  static FaultProfile Standard();
};

struct FaultConfig {
  bool enabled = false;
  uint64_t seed = 0;
  FaultProfile profile;
};

/// Process-wide fault injector. Configure()/Disable() are safe to call at
/// runtime (tests toggle per fixture); decision hooks are thread-safe.
class FaultInjector {
 public:
  static FaultInjector& Get();

  void Configure(const FaultConfig& config);
  void Disable();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }

  /// True when (layer, id) is listed dead in the active profile.
  bool IsDead(FaultLayer layer, int id) const;

  /// Deterministically decides whether the next event of `kind` at
  /// (layer, id) fails. Consumes one event from the (layer, id, kind)
  /// stream; a retry is the next event and gets an independent decision.
  /// Always false when disabled. Increments fault.injected.* on true.
  bool ShouldInject(FaultLayer layer, int id, FaultKind kind);

  /// Injected delay for a kDelay decision that returned true.
  int DelayMs() const;

  /// Deterministically flips one byte of `payload` (no-op when empty).
  /// Callers invoke this after a true kCorruptPayload decision.
  void CorruptPayload(FaultLayer layer, int id, std::vector<uint8_t>* payload);

  /// Deterministic jitter in [0, cap_ms] for backoff randomization; also
  /// usable when the injector is disabled (seeded from the key alone).
  int JitterMs(FaultLayer layer, int id, int attempt, int cap_ms) const;

  /// Total decisions evaluated since Configure (0 when disabled). Lets
  /// tests assert the hooks actually ran.
  int64_t Decisions() const { return decisions_.load(std::memory_order_relaxed); }

  /// Snapshot of the active configuration (a default FaultConfig when
  /// disabled). ScopedFaultInjection uses it to restore the enclosing
  /// scope's configuration on destruction.
  FaultConfig CurrentConfig() const;

 private:
  FaultInjector() = default;

  uint64_t NextEvent(FaultLayer layer, int id, FaultKind kind);

  std::atomic<bool> enabled_{false};
  std::atomic<int64_t> decisions_{0};
  mutable std::mutex mutex_;
  FaultConfig config_;
  // Per-(layer,id,kind) event counters backing the deterministic streams.
  std::unordered_map<uint64_t, uint64_t> event_seq_;
};

/// RAII toggle for tests: configures the global injector on construction
/// and restores the previous configuration on destruction.
///
/// Scopes are fully hermetic: Configure() resets every per-(layer,id,kind)
/// decision stream, and destruction re-Configures (not merely disables), so
/// the streams are reset again for whatever follows. Two identical scopes
/// therefore observe identical decision sequences regardless of how many
/// events earlier scopes consumed — chaos tests cannot order-couple — and
/// nested scopes restore the outer scope's configuration (with fresh
/// streams) instead of leaving the injector disabled.
class ScopedFaultInjection {
 public:
  explicit ScopedFaultInjection(const FaultConfig& config);
  ~ScopedFaultInjection();
  ScopedFaultInjection(const ScopedFaultInjection&) = delete;
  ScopedFaultInjection& operator=(const ScopedFaultInjection&) = delete;

 private:
  FaultConfig previous_;
};

}  // namespace sysds

#endif  // SYSDS_COMMON_FAULTS_H_
