#include "common/json.h"

#include <cctype>
#include <cstdlib>
#include <sstream>

namespace sysds {

JsonValue JsonValue::MakeBool(bool b) {
  JsonValue v;
  v.kind_ = Kind::kBool;
  v.bool_ = b;
  return v;
}
JsonValue JsonValue::MakeNumber(double d) {
  JsonValue v;
  v.kind_ = Kind::kNumber;
  v.number_ = d;
  return v;
}
JsonValue JsonValue::MakeString(std::string s) {
  JsonValue v;
  v.kind_ = Kind::kString;
  v.string_ = std::move(s);
  return v;
}
JsonValue JsonValue::MakeArray() {
  JsonValue v;
  v.kind_ = Kind::kArray;
  return v;
}
JsonValue JsonValue::MakeObject() {
  JsonValue v;
  v.kind_ = Kind::kObject;
  return v;
}

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

std::string JsonValue::Dump() const {
  std::ostringstream os;
  switch (kind_) {
    case Kind::kNull: os << "null"; break;
    case Kind::kBool: os << (bool_ ? "true" : "false"); break;
    case Kind::kNumber: os << number_; break;
    case Kind::kString: os << '"' << string_ << '"'; break;
    case Kind::kArray: {
      os << '[';
      for (size_t i = 0; i < array_.size(); ++i) {
        if (i > 0) os << ',';
        os << array_[i].Dump();
      }
      os << ']';
      break;
    }
    case Kind::kObject: {
      os << '{';
      bool first = true;
      for (const auto& [k, v] : object_) {
        if (!first) os << ',';
        first = false;
        os << '"' << k << "\":" << v.Dump();
      }
      os << '}';
      break;
    }
  }
  return os.str();
}

namespace {

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  StatusOr<JsonValue> Parse() {
    SkipWs();
    SYSDS_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
    SkipWs();
    if (pos_ != text_.size()) {
      return ParseError("json: trailing characters at position " +
                        std::to_string(pos_));
    }
    return v;
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  Status Err(const std::string& msg) {
    return ParseError("json: " + msg + " at position " + std::to_string(pos_));
  }

  StatusOr<JsonValue> ParseValue() {
    if (pos_ >= text_.size()) return Err("unexpected end of input");
    char c = text_[pos_];
    if (c == '{') return ParseObject();
    if (c == '[') return ParseArray();
    if (c == '"') {
      SYSDS_ASSIGN_OR_RETURN(std::string s, ParseString());
      return JsonValue::MakeString(std::move(s));
    }
    if (text_.compare(pos_, 4, "true") == 0) {
      pos_ += 4;
      return JsonValue::MakeBool(true);
    }
    if (text_.compare(pos_, 5, "false") == 0) {
      pos_ += 5;
      return JsonValue::MakeBool(false);
    }
    if (text_.compare(pos_, 4, "null") == 0) {
      pos_ += 4;
      return JsonValue();
    }
    return ParseNumber();
  }

  StatusOr<JsonValue> ParseNumber() {
    size_t start = pos_;
    if (pos_ < text_.size() && (text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '-' || text_[pos_] == '+')) {
      ++pos_;
    }
    if (pos_ == start) return Err("invalid value");
    char* endp = nullptr;
    std::string tok = text_.substr(start, pos_ - start);
    double d = std::strtod(tok.c_str(), &endp);
    if (endp != tok.c_str() + tok.size()) return Err("invalid number");
    return JsonValue::MakeNumber(d);
  }

  StatusOr<std::string> ParseString() {
    ++pos_;  // opening quote
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        char e = text_[pos_++];
        switch (e) {
          case 'n': out += '\n'; break;
          case 't': out += '\t'; break;
          case 'r': out += '\r'; break;
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          default: out += e;
        }
      } else {
        out += c;
      }
    }
    if (pos_ >= text_.size()) return Err("unterminated string");
    ++pos_;  // closing quote
    return out;
  }

  StatusOr<JsonValue> ParseArray() {
    ++pos_;  // '['
    JsonValue arr = JsonValue::MakeArray();
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      return arr;
    }
    for (;;) {
      SkipWs();
      SYSDS_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
      arr.MutableArray().push_back(std::move(v));
      SkipWs();
      if (pos_ >= text_.size()) return Err("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        return arr;
      }
      return Err("expected ',' or ']'");
    }
  }

  StatusOr<JsonValue> ParseObject() {
    ++pos_;  // '{'
    JsonValue obj = JsonValue::MakeObject();
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      return obj;
    }
    for (;;) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Err("expected object key");
      }
      SYSDS_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') return Err("expected ':'");
      ++pos_;
      SkipWs();
      SYSDS_ASSIGN_OR_RETURN(JsonValue v, ParseValue());
      obj.MutableObject()[key] = std::move(v);
      SkipWs();
      if (pos_ >= text_.size()) return Err("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        return obj;
      }
      return Err("expected ',' or '}'");
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<JsonValue> ParseJson(const std::string& text) {
  return JsonParser(text).Parse();
}

}  // namespace sysds
