#ifndef SYSDS_COMMON_UTIL_H_
#define SYSDS_COMMON_UTIL_H_

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace sysds {

/// Wall-clock stopwatch used by benches and the statistics module.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}
  void Reset() { start_ = Clock::now(); }
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

// String helpers shared by the parser, I/O, and instruction encoding.
std::vector<std::string> SplitString(const std::string& s, char delim);
std::string JoinStrings(const std::vector<std::string>& parts,
                        const std::string& sep);
std::string TrimString(const std::string& s);
std::string ToLower(const std::string& s);
bool StartsWith(const std::string& s, const std::string& prefix);
bool EndsWith(const std::string& s, const std::string& suffix);

/// 64-bit FNV-1a style hash combiner used for lineage DAG hashing.
inline uint64_t HashCombine(uint64_t seed, uint64_t v) {
  // splitmix64-style mixing for good avalanche behaviour.
  v += 0x9e3779b97f4a7c15ULL + (seed << 6) + (seed >> 2);
  v = (v ^ (v >> 30)) * 0xbf58476d1ce4e5b9ULL;
  v = (v ^ (v >> 27)) * 0x94d049bb133111ebULL;
  return seed ^ (v ^ (v >> 31));
}

uint64_t HashString(const std::string& s);

/// A small xorshift-based RNG with an explicit seed, so that datagen results
/// are reproducible and lineage can record the seed (paper §3.1 traces
/// non-determinism like generated seeds).
class Xoshiro {
 public:
  explicit Xoshiro(uint64_t seed);
  uint64_t NextUint64();
  /// Uniform in [0,1).
  double NextDouble();
  /// Uniform in [lo,hi).
  double NextDouble(double lo, double hi);
  /// Standard normal via Box-Muller.
  double NextGaussian();

 private:
  uint64_t s_[4];
  bool have_gauss_ = false;
  double gauss_ = 0.0;
};

/// Returns a fresh pseudo-random seed; callers that need reproducibility
/// must pass explicit seeds instead. Seeds are HashCombine(base, counter++)
/// where `base` is captured once per process (from the clock) and `counter`
/// is monotonic — so a run's auto-generated seed sequence is a pure function
/// of the (base, counter) state, which checkpoint manifests record and
/// restore to make resumed runs bit-identical to uninterrupted ones.
uint64_t GenerateSeed();

/// The process RNG-seed state backing GenerateSeed(). Recorded in checkpoint
/// manifests; SetSeedState on resume replays the original run's sequence.
struct SeedState {
  uint64_t base = 0;
  uint64_t counter = 0;
};

SeedState GetSeedState();
void SetSeedState(const SeedState& state);

}  // namespace sysds

#endif  // SYSDS_COMMON_UTIL_H_
