#ifndef SYSDS_COMMON_STATUS_H_
#define SYSDS_COMMON_STATUS_H_

#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace sysds {

// Error categories used across the compiler and runtime. The library is
// exception-free on its public surface; all fallible operations return a
// Status or StatusOr<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kParseError,      // DML syntax errors (carry line/column in the message)
  kValidateError,   // semantic/type errors found during validation
  kCompileError,    // HOP/LOP construction or instruction generation failures
  kRuntimeError,    // instruction execution failures
  kIoError,         // file read/write/parse failures
  kNotFound,
  kUnimplemented,
  kOutOfRange,
  kInternal,
  // Serving / resource taxonomy: lets callers of the scoring service
  // distinguish retryable conditions (transient resource pressure, an
  // expired deadline, an explicit cancel) from fatal script errors.
  kOom,             // memory budget / admission-queue capacity exhausted
  kTimeout,         // request deadline expired (before or during execution)
  kCancelled,       // request cancelled by the caller or service shutdown
  // Fault-tolerance taxonomy (src/common/faults.h): transient transport or
  // backend failures that the retry/failover layers produce and consume.
  kUnavailable,     // backend/site/worker unreachable or circuit-broken
  kCorrupt,         // payload failed integrity checks (truncated/bit-flipped)
  // Checkpoint/restart (src/runtime/recovery/): a simulated process crash
  // at a checkpoint-boundary kill point. Deliberately NOT retryable: the
  // in-process run must unwind completely, exactly as a real crash would;
  // recovery happens via a fresh run with `--resume`.
  kAborted,
};

/// True for error conditions a scoring-service client may meaningfully retry
/// (possibly after backoff): resource exhaustion, deadline expiry,
/// cancellation, an unreachable backend, and a corrupted transfer (a
/// retransmit gets a fresh copy). Parse/validate/compile/runtime failures
/// are deterministic properties of the script+inputs and are fatal.
bool IsRetryable(StatusCode code);

/// Returns a short human-readable name for a status code, e.g. "ParseError".
const char* StatusCodeName(StatusCode code);

/// A lightweight success-or-error result, modeled after absl::Status.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Formats as "<CodeName>: <message>"; "OK" when ok().
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

inline bool IsRetryable(const Status& s) { return IsRetryable(s.code()); }

Status InvalidArgument(std::string message);
Status ParseError(std::string message);
Status ValidateError(std::string message);
Status CompileError(std::string message);
Status RuntimeError(std::string message);
Status IoError(std::string message);
Status NotFound(std::string message);
Status Unimplemented(std::string message);
Status OutOfRange(std::string message);
Status Internal(std::string message);
Status OomError(std::string message);
Status TimeoutError(std::string message);
Status CancelledError(std::string message);
Status UnavailableError(std::string message);
Status CorruptError(std::string message);
Status AbortedError(std::string message);

/// Either a value of type T or an error Status. Accessing value() on an
/// error is a programming bug and aborts in debug builds.
template <typename T>
class StatusOr {
 public:
  StatusOr(const T& value) : value_(value) {}            // NOLINT
  StatusOr(T&& value) : value_(std::move(value)) {}      // NOLINT
  StatusOr(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & { return *value_; }
  const T& value() const& { return *value_; }
  T&& value() && { return std::move(*value_); }

  T& operator*() & { return *value_; }
  const T& operator*() const& { return *value_; }
  T* operator->() { return &*value_; }
  const T* operator->() const { return &*value_; }

 private:
  Status status_;
  std::optional<T> value_;
};

// Propagates errors to the caller, mirroring the usual RETURN_IF_ERROR /
// ASSIGN_OR_RETURN idiom.
#define SYSDS_RETURN_IF_ERROR(expr)                  \
  do {                                               \
    ::sysds::Status _st = (expr);                    \
    if (!_st.ok()) return _st;                       \
  } while (0)

#define SYSDS_CONCAT_IMPL(a, b) a##b
#define SYSDS_CONCAT(a, b) SYSDS_CONCAT_IMPL(a, b)

#define SYSDS_ASSIGN_OR_RETURN(lhs, expr)                        \
  auto SYSDS_CONCAT(_statusor_, __LINE__) = (expr);              \
  if (!SYSDS_CONCAT(_statusor_, __LINE__).ok())                  \
    return SYSDS_CONCAT(_statusor_, __LINE__).status();          \
  lhs = std::move(SYSDS_CONCAT(_statusor_, __LINE__)).value()

}  // namespace sysds

#endif  // SYSDS_COMMON_STATUS_H_
