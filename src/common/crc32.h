#ifndef SYSDS_COMMON_CRC32_H_
#define SYSDS_COMMON_CRC32_H_

#include <cstddef>
#include <cstdint>

namespace sysds {

/// Incremental CRC-32 (IEEE 802.3 / zlib polynomial 0xEDB88320). Used as
/// the integrity check on every durable artifact the runtime writes —
/// buffer-pool spill files, checkpoint objects, checkpoint manifests — so a
/// torn or bit-flipped file is detected (StatusCode::kCorrupt) instead of
/// deserialized into garbage.
class Crc32 {
 public:
  /// Feeds `len` bytes into the running checksum.
  void Update(const void* data, size_t len);

  /// The checksum over everything fed so far.
  uint32_t Value() const { return state_ ^ 0xFFFFFFFFu; }

  void Reset() { state_ = 0xFFFFFFFFu; }

  /// One-shot convenience.
  static uint32_t Of(const void* data, size_t len) {
    Crc32 c;
    c.Update(data, len);
    return c.Value();
  }

 private:
  uint32_t state_ = 0xFFFFFFFFu;
};

}  // namespace sysds

#endif  // SYSDS_COMMON_CRC32_H_
