#ifndef SYSDS_COMMON_THREAD_POOL_H_
#define SYSDS_COMMON_THREAD_POOL_H_

#include <algorithm>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace sysds {

namespace obs {
class Gauge;
}  // namespace obs

/// A fixed-size worker pool used by the multi-threaded kernels, the parfor
/// backend, and the distributed-executor simulator. Tasks are plain
/// std::function<void()>; ParallelFor provides a blocking range helper with
/// static chunking (deterministic assignment of ranges to chunk indexes).
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution.
  void Submit(std::function<void()> task);

  /// Runs fn(chunk_begin, chunk_end) over [begin, end) split into
  /// `num_chunks` contiguous chunks, blocking until all complete. Chunk 0 is
  /// executed on the calling thread so a pool of size N uses N+1 workers.
  void ParallelFor(int64_t begin, int64_t end, int64_t num_chunks,
                   const std::function<void(int64_t, int64_t)>& fn);

  size_t num_threads() const { return threads_.size(); }

  /// True while the calling thread is executing a task on a pool worker.
  /// Blocking helpers (ParallelFor, RunRetryableTasks) consult this to run
  /// inline instead of enqueueing into — and then waiting on — an already
  /// saturated pool, which would deadlock.
  static bool InCurrentWorker();

  /// Process-wide pool sized by SYSDS_NUM_THREADS (default: hardware
  /// concurrency). Intentionally leaked to avoid shutdown ordering issues.
  static ThreadPool& Global();

 private:
  void WorkerLoop();

  std::vector<std::thread> threads_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
  // Registry-owned observability gauges (threadpool.queue_depth,
  // threadpool.active_workers); pointers are process-lifetime stable.
  obs::Gauge* queue_depth_ = nullptr;
  obs::Gauge* active_workers_ = nullptr;
};

/// Number of threads the runtime should use for data-parallel kernels,
/// honoring the SYSDS_NUM_THREADS environment variable.
int DefaultParallelism();

/// Shared static chunking policy for row-partitioned kernels: one chunk per
/// thread, but at least 8 rows per chunk so tiny matrices stay serial.
/// Deterministic reductions depend on every caller (fused and unfused paths
/// alike) using this single policy, so do not fork per-kernel variants.
inline int64_t PickChunks(int64_t rows, int num_threads) {
  if (num_threads <= 1) return 1;
  return std::min<int64_t>(num_threads, std::max<int64_t>(1, rows / 8));
}

}  // namespace sysds

#endif  // SYSDS_COMMON_THREAD_POOL_H_
