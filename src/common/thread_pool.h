#ifndef SYSDS_COMMON_THREAD_POOL_H_
#define SYSDS_COMMON_THREAD_POOL_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>

namespace sysds {

/// Work-stealing task scheduler used by the multi-threaded kernels, the
/// parfor backend, the distributed-executor simulator, and the scoring
/// service. Each worker owns a lock-free Chase–Lev deque; idle workers steal
/// from victims in a randomized-but-seeded order, and external submitters go
/// through a small injection queue. Workers park on per-worker condition
/// variables (no global broadcast) and are woken one at a time.
///
/// ParallelFor is a blocking range helper with static chunking: the chunk
/// decomposition (ceil-divided contiguous ranges) is a pure function of
/// (begin, end, num_chunks), never of which thread runs which chunk, so
/// callers that accumulate per-chunk partials indexed by chunk id and merge
/// them in chunk order get bit-identical results regardless of scheduling
/// order or thread count. A thread blocked in ParallelFor performs a
/// *helping join*: it claims and executes pending chunks of its own join,
/// then any other pending task in the pool, and only parks when nothing is
/// runnable — so nested parallelism (a matrix kernel inside a parfor body or
/// a dist task) uses all cores instead of collapsing to serial execution.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for asynchronous execution. With a zero-worker pool the
  /// task only runs when some thread drains it via TryRunPendingTask (the
  /// blocking helpers RunRetryableTasks/ParallelFor do this) or at pool
  /// destruction.
  void Submit(std::function<void()> task);

  /// Runs fn(chunk_begin, chunk_end) over [begin, end) split into
  /// `num_chunks` contiguous chunks, blocking until all complete. The calling
  /// thread participates (it claims chunks starting at chunk 0), so a pool
  /// of N-1 workers executes with up to N threads. Empty chunks (possible
  /// when num_chunks does not divide the range) are skipped without calling
  /// fn. When `label` is set and the loop actually splits, per-chunk wall
  /// times feed the histogram `scheduler.imbalance.<label>` (percent excess
  /// of the slowest chunk over the mean).
  void ParallelFor(int64_t begin, int64_t end, int64_t num_chunks,
                   const std::function<void(int64_t, int64_t)>& fn,
                   const char* label = nullptr);

  /// Cost-weighted variant for skewed inputs: splits [begin, end) into at
  /// most `num_chunks` contiguous chunks of approximately equal cumulative
  /// weight(i) (e.g. row nnz), then runs fn(chunk_begin, chunk_end,
  /// chunk_id). Chunk boundaries are a pure function of the weights and
  /// num_chunks — never of thread count or scheduling — so per-chunk-indexed
  /// reductions stay deterministic. Chunk ids are dense in [0, chunks_used).
  void ParallelForWeighted(int64_t begin, int64_t end, int64_t num_chunks,
                           const std::function<int64_t(int64_t)>& weight,
                           const std::function<void(int64_t, int64_t, int64_t)>& fn,
                           const char* label = nullptr);

  /// Pops or steals one pending task and runs it on the calling thread.
  /// Returns false when nothing was runnable. Blocking helpers use this to
  /// make progress instead of sleeping while the pool has work.
  bool TryRunPendingTask();

  size_t num_threads() const;

  /// True on a pool worker thread (any pool). Blocking helpers consult this
  /// to decide to help drain the pool instead of sleeping on a condition
  /// variable while holding a worker slot.
  static bool InCurrentWorker();

  /// Process-wide pool sized to DefaultParallelism() - 1 workers, so
  /// ParallelFor (caller participates) uses exactly DefaultParallelism()
  /// threads. Intentionally leaked to avoid shutdown ordering issues.
  static ThreadPool& Global();

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Number of threads the runtime should use for data-parallel kernels,
/// honoring the SYSDS_NUM_THREADS environment variable.
int DefaultParallelism();

/// Minimum rows per chunk (tiny matrices stay serial) and the chunk-count
/// ceiling for the shared chunking policy below.
constexpr int64_t kMinChunkRows = 8;
constexpr int64_t kMaxLoopChunks = 64;

/// Shared static chunking policy for row-partitioned kernels. The chunk
/// count is a pure function of the row count — the thread-count argument is
/// ignored (kept for call-site compatibility) — so per-chunk-indexed
/// reductions produce bit-identical results at any parallelism. Loops are
/// oversubscribed (up to kMaxLoopChunks chunks regardless of thread count);
/// the work-stealing scheduler load-balances the extra chunks dynamically.
/// Deterministic reductions depend on every caller (fused and unfused paths
/// alike) using this single policy, so do not fork per-kernel variants.
inline int64_t PickChunks(int64_t rows, int num_threads) {
  (void)num_threads;
  if (rows < kMinChunkRows * 2) return 1;
  return std::min<int64_t>(kMaxLoopChunks, rows / kMinChunkRows);
}

/// Chunking policy for kernels whose per-chunk scratch state is expensive
/// (e.g. tsmm holds an n*n accumulator per chunk): same deterministic
/// rows-only policy, additionally capped so total scratch stays within a
/// fixed budget. `bytes_per_chunk` is the scratch cost of one chunk.
inline int64_t PickChunksBounded(int64_t rows, int64_t bytes_per_chunk) {
  constexpr int64_t kScratchBudgetBytes = int64_t{64} << 20;  // 64 MB
  int64_t chunks = PickChunks(rows, /*num_threads=*/0);
  if (bytes_per_chunk > 0) {
    int64_t cap = std::max<int64_t>(1, kScratchBudgetBytes / bytes_per_chunk);
    chunks = std::min(chunks, cap);
  }
  return chunks;
}

}  // namespace sysds

#endif  // SYSDS_COMMON_THREAD_POOL_H_
