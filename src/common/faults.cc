#include "common/faults.h"

#include "obs/metrics.h"

namespace sysds {

namespace {

// splitmix64: a small, well-mixed hash; decisions are the high bits of the
// mixed (seed, key, event) triple mapped to [0, 1).
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

uint64_t StreamKey(FaultLayer layer, int id, FaultKind kind) {
  return (static_cast<uint64_t>(layer) << 40) |
         (static_cast<uint64_t>(kind) << 32) |
         static_cast<uint64_t>(static_cast<uint32_t>(id));
}

double UnitInterval(uint64_t h) {
  return static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0);  // 2^53
}

obs::Counter* InjectedCounter(FaultKind kind) {
  static obs::Counter* counters[5] = {
      obs::MetricsRegistry::Get().GetCounter("fault.injected.drop"),
      obs::MetricsRegistry::Get().GetCounter("fault.injected.delay"),
      obs::MetricsRegistry::Get().GetCounter("fault.injected.corrupt"),
      obs::MetricsRegistry::Get().GetCounter("fault.injected.crash"),
      obs::MetricsRegistry::Get().GetCounter("fault.injected.spill_error"),
  };
  return counters[static_cast<size_t>(kind)];
}

}  // namespace

const char* FaultLayerName(FaultLayer layer) {
  switch (layer) {
    case FaultLayer::kFederated: return "federated";
    case FaultLayer::kDist: return "dist";
    case FaultLayer::kPs: return "ps";
    case FaultLayer::kBufferPool: return "bufferpool";
    case FaultLayer::kRecovery: return "recovery";
  }
  return "unknown";
}

const char* FaultKindName(FaultKind kind) {
  switch (kind) {
    case FaultKind::kMessageDrop: return "drop";
    case FaultKind::kDelay: return "delay";
    case FaultKind::kCorruptPayload: return "corrupt";
    case FaultKind::kCrash: return "crash";
    case FaultKind::kSpillIoError: return "spill_error";
  }
  return "unknown";
}

FaultProfile FaultProfile::Standard() {
  FaultProfile p;
  p.drop_prob = 0.10;
  p.delay_prob = 0.05;
  p.corrupt_prob = 0.05;
  p.crash_prob = 0.02;
  p.spill_error_prob = 0.10;
  p.delay_ms = 5;
  return p;
}

FaultInjector& FaultInjector::Get() {
  static FaultInjector* injector = new FaultInjector();  // leaked on purpose
  return *injector;
}

void FaultInjector::Configure(const FaultConfig& config) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    config_ = config;
    event_seq_.clear();
  }
  decisions_.store(0, std::memory_order_relaxed);
  enabled_.store(config.enabled, std::memory_order_relaxed);
}

void FaultInjector::Disable() {
  enabled_.store(false, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(mutex_);
  config_ = FaultConfig{};
  event_seq_.clear();
}

bool FaultInjector::IsDead(FaultLayer layer, int id) const {
  if (!enabled()) return false;
  std::lock_guard<std::mutex> lock(mutex_);
  for (const FaultTarget& t : config_.profile.dead_targets) {
    if (t.layer == layer && t.id == id) return true;
  }
  return false;
}

uint64_t FaultInjector::NextEvent(FaultLayer layer, int id, FaultKind kind) {
  std::lock_guard<std::mutex> lock(mutex_);
  return event_seq_[StreamKey(layer, id, kind)]++;
}

bool FaultInjector::ShouldInject(FaultLayer layer, int id, FaultKind kind) {
  if (!enabled()) return false;
  // Checkpoint-boundary kill points are exact, not probabilistic: the N-th
  // probe of the (kRecovery, id) crash stream injects, every other probe
  // does not. The event counter still advances through NextEvent so the
  // stream is hermetic across Configure() calls like every other stream.
  if (layer == FaultLayer::kRecovery && kind == FaultKind::kCrash) {
    int64_t kill_at;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      kill_at = config_.profile.crash_at_boundary;
    }
    decisions_.fetch_add(1, std::memory_order_relaxed);
    if (kill_at < 1) return false;
    uint64_t event = NextEvent(layer, id, kind);
    bool inject = static_cast<int64_t>(event) + 1 == kill_at;
    if (inject) InjectedCounter(kind)->Add(1);
    return inject;
  }
  double prob = 0.0;
  uint64_t seed;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    const FaultProfile& p = config_.profile;
    switch (kind) {
      case FaultKind::kMessageDrop: prob = p.drop_prob; break;
      case FaultKind::kDelay: prob = p.delay_prob; break;
      case FaultKind::kCorruptPayload: prob = p.corrupt_prob; break;
      case FaultKind::kCrash: prob = p.crash_prob; break;
      case FaultKind::kSpillIoError: prob = p.spill_error_prob; break;
    }
    seed = config_.seed;
    for (const FaultTarget& t : config_.profile.dead_targets) {
      if (t.layer == layer && t.id == id) prob = 1.0;
    }
  }
  decisions_.fetch_add(1, std::memory_order_relaxed);
  if (prob <= 0.0) return false;
  uint64_t event = NextEvent(layer, id, kind);
  uint64_t h = Mix64(seed ^ Mix64(StreamKey(layer, id, kind) ^
                                  Mix64(event + 0x51ULL)));
  bool inject = prob >= 1.0 || UnitInterval(h) < prob;
  if (inject) InjectedCounter(kind)->Add(1);
  return inject;
}

int FaultInjector::DelayMs() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return config_.profile.delay_ms;
}

void FaultInjector::CorruptPayload(FaultLayer layer, int id,
                                   std::vector<uint8_t>* payload) {
  if (payload == nullptr || payload->empty()) return;
  uint64_t seed;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    seed = config_.seed;
  }
  uint64_t event = NextEvent(layer, id, FaultKind::kCorruptPayload);
  uint64_t h = Mix64(seed ^ Mix64(StreamKey(layer, id,
                                            FaultKind::kCorruptPayload) +
                                  event));
  (*payload)[h % payload->size()] ^= 0xFF;
}

FaultConfig FaultInjector::CurrentConfig() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return config_;
}

ScopedFaultInjection::ScopedFaultInjection(const FaultConfig& config)
    : previous_(FaultInjector::Get().CurrentConfig()) {
  FaultInjector::Get().Configure(config);
}

ScopedFaultInjection::~ScopedFaultInjection() {
  // Restore (rather than plain Disable) so nested scopes hand control back
  // to the enclosing scope's profile; Configure resets all decision
  // streams either way, keeping scopes hermetic.
  if (previous_.enabled) {
    FaultInjector::Get().Configure(previous_);
  } else {
    FaultInjector::Get().Disable();
  }
}

int FaultInjector::JitterMs(FaultLayer layer, int id, int attempt,
                            int cap_ms) const {
  if (cap_ms <= 0) return 0;
  uint64_t seed = 0;
  if (enabled()) {
    std::lock_guard<std::mutex> lock(mutex_);
    seed = config_.seed;
  }
  uint64_t h = Mix64(seed ^ Mix64(StreamKey(layer, id, FaultKind::kDelay) ^
                                  (static_cast<uint64_t>(attempt) << 48)));
  return static_cast<int>(h % static_cast<uint64_t>(cap_ms + 1));
}

}  // namespace sysds
