#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace sysds {

namespace {
// Set while executing a task on a pool worker thread. Nested ParallelFor
// calls from inside a worker (e.g. matrix kernels invoked by parfor body
// instructions) run inline instead of enqueueing into — and then waiting
// on — an already saturated pool, which would deadlock.
thread_local bool t_in_pool_worker = false;
}  // namespace

ThreadPool::ThreadPool(size_t num_threads) {
  queue_depth_ = obs::MetricsRegistry::Get().GetGauge("threadpool.queue_depth");
  active_workers_ =
      obs::MetricsRegistry::Get().GetGauge("threadpool.active_workers");
  threads_.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) {
    threads_.emplace_back([this, i] {
      // Stable worker names let the trace viewer group each worker's spans
      // on its own named track.
      obs::Tracer::SetCurrentThreadName("pool-worker-" + std::to_string(i));
      WorkerLoop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

bool ThreadPool::InCurrentWorker() { return t_in_pool_worker; }

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    tasks_.push(std::move(task));
    queue_depth_->Set(static_cast<int64_t>(tasks_.size()));
  }
  cv_.notify_one();
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !tasks_.empty(); });
      if (stop_ && tasks_.empty()) return;
      task = std::move(tasks_.front());
      tasks_.pop();
      queue_depth_->Set(static_cast<int64_t>(tasks_.size()));
    }
    t_in_pool_worker = true;
    active_workers_->Add(1);
    task();
    active_workers_->Add(-1);
    t_in_pool_worker = false;
  }
}

void ThreadPool::ParallelFor(int64_t begin, int64_t end, int64_t num_chunks,
                             const std::function<void(int64_t, int64_t)>& fn) {
  int64_t n = end - begin;
  if (n <= 0) return;
  num_chunks = std::max<int64_t>(1, std::min(num_chunks, n));
  if (num_chunks == 1 || t_in_pool_worker) {
    fn(begin, end);
    return;
  }
  std::atomic<int64_t> remaining(num_chunks - 1);
  std::promise<void> done;
  int64_t chunk = (n + num_chunks - 1) / num_chunks;
  for (int64_t c = 1; c < num_chunks; ++c) {
    int64_t b = begin + c * chunk;
    int64_t e = std::min(end, b + chunk);
    if (b >= e) {
      if (remaining.fetch_sub(1) == 1) done.set_value();
      continue;
    }
    Submit([&, b, e] {
      fn(b, e);
      if (remaining.fetch_sub(1) == 1) done.set_value();
    });
  }
  fn(begin, std::min(end, begin + chunk));
  done.get_future().wait();
}

int DefaultParallelism() {
  static int k = [] {
    if (const char* env = std::getenv("SYSDS_NUM_THREADS")) {
      int v = std::atoi(env);
      if (v > 0) return v;
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  }();
  return k;
}

ThreadPool& ThreadPool::Global() {
  static ThreadPool* pool = new ThreadPool(
      static_cast<size_t>(std::max(1, DefaultParallelism())));
  return *pool;
}

}  // namespace sysds
