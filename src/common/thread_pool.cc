#include "common/thread_pool.h"

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "obs/trace.h"

namespace sysds {

namespace {

// Identity of the current thread within the scheduler. t_worker_impl /
// t_worker_id tie a worker thread to the pool whose deque it owns;
// t_on_worker_thread backs InCurrentWorker() and stays set for the worker
// thread's whole lifetime (a worker is always "in" the pool, whether it is
// running a task or claiming chunks of a join it helps with).
thread_local void* t_worker_impl = nullptr;
thread_local int t_worker_id = -1;
thread_local bool t_on_worker_thread = false;

// Per-thread xorshift state for the randomized-but-seeded steal order.
// Workers seed deterministically from their worker index; external helper
// threads draw a seed from a global counter on first use.
thread_local uint64_t t_steal_rng = 0;
std::atomic<uint64_t> g_helper_seed{0x9e3779b97f4a7c15ull};

inline uint64_t NextRand() {
  if (t_steal_rng == 0) {
    t_steal_rng = g_helper_seed.fetch_add(0xbf58476d1ce4e5b9ull,
                                          std::memory_order_relaxed) |
                  1;
  }
  uint64_t x = t_steal_rng;
  x ^= x << 13;
  x ^= x >> 7;
  x ^= x << 17;
  t_steal_rng = x;
  return x;
}

inline int64_t NowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

inline void UpdateMax(std::atomic<int64_t>* target, int64_t value) {
  int64_t prev = target->load(std::memory_order_relaxed);
  while (value > prev &&
         !target->compare_exchange_weak(prev, value,
                                        std::memory_order_relaxed)) {
  }
}

// Records the per-loop chunk imbalance — percent excess of the slowest chunk
// over the mean chunk time — under scheduler.imbalance.<label>.
void ObserveImbalance(const char* label, int64_t executed, int64_t sum_ns,
                      int64_t max_ns) {
  if (label == nullptr || executed < 2) return;
  int64_t mean = sum_ns / executed;
  if (mean <= 0) return;
  obs::MetricsRegistry::Get()
      .GetHistogram(std::string("scheduler.imbalance.") + label)
      ->Observe((max_ns - mean) * 100 / mean);
}

}  // namespace

struct ThreadPool::Impl {
  // A unit of queued work. Run() consumes one queued reference: SubmitJobs
  // delete themselves, JoinJob entries drop one of their counted refs.
  class Job {
   public:
    virtual ~Job() = default;
    virtual void Run() = 0;
  };

  class SubmitJob : public Job {
   public:
    explicit SubmitJob(std::function<void()> fn) : fn_(std::move(fn)) {}
    void Run() override {
      fn_();
      delete this;
    }

   private:
    std::function<void()> fn_;
  };

  // Chase–Lev work-stealing deque. The owning worker pushes and pops at the
  // bottom; thieves CAS the top. All cross-thread orderings use seq_cst on
  // the top/bottom atomics directly (no standalone fences — ThreadSanitizer
  // does not model atomic_thread_fence, and the classic correctness proof
  // needs sequential consistency for the pop-side bottom-store / top-load
  // pair anyway). Slots are atomics so concurrent slot reads by thieves are
  // well-defined; a thief whose top CAS fails discards the value it read.
  class Deque {
   public:
    Deque() : array_(new Array(kInitialCap)) {}
    ~Deque() {
      delete array_.load(std::memory_order_relaxed);
      for (Array* a : retired_) delete a;
    }

    // Owner only.
    void Push(Job* job) {
      int64_t b = bottom_.load(std::memory_order_relaxed);
      int64_t t = top_.load(std::memory_order_acquire);
      Array* a = array_.load(std::memory_order_relaxed);
      if (b - t >= a->cap) a = Grow(a, t, b);
      a->slot(b).store(job, std::memory_order_relaxed);
      bottom_.store(b + 1, std::memory_order_seq_cst);
    }

    // Owner only.
    Job* Pop() {
      int64_t b = bottom_.load(std::memory_order_relaxed) - 1;
      Array* a = array_.load(std::memory_order_relaxed);
      bottom_.store(b, std::memory_order_seq_cst);
      int64_t t = top_.load(std::memory_order_seq_cst);
      if (t > b) {
        bottom_.store(b + 1, std::memory_order_relaxed);
        return nullptr;
      }
      Job* job = a->slot(b).load(std::memory_order_relaxed);
      if (t == b) {
        // Last element: race the thieves for it.
        if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                          std::memory_order_seq_cst)) {
          job = nullptr;
        }
        bottom_.store(b + 1, std::memory_order_relaxed);
      }
      return job;
    }

    // Any thread. May return nullptr spuriously under contention (the CAS
    // lost to another thief or the owner); callers just try elsewhere.
    Job* Steal() {
      int64_t t = top_.load(std::memory_order_seq_cst);
      int64_t b = bottom_.load(std::memory_order_seq_cst);
      if (t >= b) return nullptr;
      Array* a = array_.load(std::memory_order_acquire);
      Job* job = a->slot(t).load(std::memory_order_relaxed);
      if (!top_.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                        std::memory_order_relaxed)) {
        return nullptr;
      }
      return job;
    }

    bool Empty() const {
      return top_.load(std::memory_order_acquire) >=
             bottom_.load(std::memory_order_acquire);
    }

   private:
    static constexpr int64_t kInitialCap = 256;

    struct Array {
      explicit Array(int64_t c)
          : cap(c), mask(c - 1), slots(new std::atomic<Job*>[c]) {}
      ~Array() { delete[] slots; }
      std::atomic<Job*>& slot(int64_t i) { return slots[i & mask]; }
      const int64_t cap;
      const int64_t mask;
      std::atomic<Job*>* const slots;
    };

    Array* Grow(Array* old, int64_t t, int64_t b) {
      Array* bigger = new Array(old->cap * 2);
      for (int64_t i = t; i < b; ++i) {
        bigger->slot(i).store(old->slot(i).load(std::memory_order_relaxed),
                              std::memory_order_relaxed);
      }
      array_.store(bigger, std::memory_order_release);
      // Thieves may still hold a pointer to the old array mid-steal; retire
      // it until the deque itself dies instead of freeing it now.
      retired_.push_back(old);
      return bigger;
    }

    std::atomic<int64_t> top_{0};
    std::atomic<int64_t> bottom_{0};
    std::atomic<Array*> array_;
    std::vector<Array*> retired_;  // owner-only
  };

  // A blocking ParallelFor join. Chunks are claimed via the `next` ticket
  // counter, so the chunk -> range mapping is fixed by the geometry while the
  // chunk -> thread mapping is free. Heap-allocated and reference-counted:
  // one ref for the caller plus one per queued entry, so stale entries that
  // surface after the join completed claim nothing and merely drop their ref.
  class JoinJob : public Job {
   public:
    Impl* impl = nullptr;
    int64_t begin = 0;
    int64_t end = 0;
    int64_t chunk_size = 0;             // uniform mode (bounds == nullptr)
    const int64_t* bounds = nullptr;    // weighted mode: bounds[c], bounds[c+1]
    int64_t num_chunks = 0;
    const std::function<void(int64_t, int64_t)>* fn = nullptr;
    const std::function<void(int64_t, int64_t, int64_t)>* wfn = nullptr;
    bool timed = false;

    std::atomic<int64_t> next{0};
    std::atomic<int64_t> done{0};
    std::atomic<int64_t> refs{1};
    std::atomic<int64_t> executed{0};
    std::atomic<int64_t> sum_ns{0};
    std::atomic<int64_t> max_ns{0};

    std::mutex m;
    std::condition_variable cv;
    bool complete = false;

    void ChunkBounds(int64_t c, int64_t* b, int64_t* e) const {
      if (bounds != nullptr) {
        *b = bounds[c];
        *e = bounds[c + 1];
      } else {
        *b = begin + c * chunk_size;
        *e = std::min(end, *b + chunk_size);
      }
    }

    // Claims and executes chunks until every chunk is claimed. Never blocks.
    void RunChunks() {
      for (;;) {
        int64_t c = next.fetch_add(1, std::memory_order_relaxed);
        if (c >= num_chunks) return;
        int64_t b, e;
        ChunkBounds(c, &b, &e);
        if (b < e) {
          if (timed) {
            int64_t t0 = NowNs();
            Call(b, e, c);
            int64_t dt = NowNs() - t0;
            sum_ns.fetch_add(dt, std::memory_order_relaxed);
            UpdateMax(&max_ns, dt);
          } else {
            Call(b, e, c);
          }
          executed.fetch_add(1, std::memory_order_relaxed);
          impl->chunks_->Add(1);
        }
        // acq_rel chain: the thread that observes done == num_chunks (here
        // or in the caller's acquire load) sees every chunk's writes.
        if (done.fetch_add(1, std::memory_order_acq_rel) + 1 == num_chunks) {
          std::lock_guard<std::mutex> lock(m);
          complete = true;
          // Notify while holding the lock: the caller may destroy the job
          // the instant it observes `complete` with its own ref.
          cv.notify_all();
        }
      }
    }

    void Run() override {
      RunChunks();
      DecRef();
    }

    void DecRef() {
      if (refs.fetch_sub(1, std::memory_order_acq_rel) == 1) delete this;
    }

   private:
    void Call(int64_t b, int64_t e, int64_t c) {
      if (wfn != nullptr) {
        (*wfn)(b, e, c);
      } else {
        (*fn)(b, e);
      }
    }
  };

  struct Worker {
    Deque deque;
    std::mutex m;
    std::condition_variable cv;
    bool notified = false;
  };

  explicit Impl(size_t num_threads) {
    auto& reg = obs::MetricsRegistry::Get();
    queue_depth_ = reg.GetGauge("threadpool.queue_depth");
    active_workers_ = reg.GetGauge("threadpool.active_workers");
    tasks_ = reg.GetCounter("scheduler.tasks");
    steals_ = reg.GetCounter("scheduler.steals");
    chunks_ = reg.GetCounter("scheduler.chunks");
    helped_ = reg.GetCounter("scheduler.helped");
    workers_.reserve(num_threads);
    for (size_t i = 0; i < num_threads; ++i) {
      workers_.emplace_back(new Worker());
    }
    threads_.reserve(num_threads);
    for (size_t i = 0; i < num_threads; ++i) {
      threads_.emplace_back([this, i] { WorkerLoop(static_cast<int>(i)); });
    }
  }

  bool OnThisPoolsWorker() const {
    return t_worker_impl == this && t_worker_id >= 0;
  }

  // Enqueues `n` references to `job`: onto the calling worker's own deque
  // when called from a worker of this pool, else onto the injection queue.
  // Wakes up to `n` parked workers. Push-then-wake plus the park_mu_ mutex
  // ordering in WorkerLoop rules out missed wakeups.
  void PushJob(Job* job, int64_t n) {
    if (OnThisPoolsWorker()) {
      Deque& d = workers_[t_worker_id]->deque;
      for (int64_t i = 0; i < n; ++i) d.Push(job);
    } else {
      std::lock_guard<std::mutex> lock(inject_mu_);
      for (int64_t i = 0; i < n; ++i) inject_.push_back(job);
      inject_size_.store(static_cast<int64_t>(inject_.size()),
                         std::memory_order_release);
      queue_depth_->Set(static_cast<int64_t>(inject_.size()));
    }
    Wake(n);
  }

  void Wake(int64_t n) {
    for (; n > 0; --n) {
      int id;
      {
        std::lock_guard<std::mutex> lock(park_mu_);
        if (parked_.empty()) return;
        id = parked_.back();
        parked_.pop_back();
      }
      Worker& w = *workers_[id];
      {
        std::lock_guard<std::mutex> lock(w.m);
        w.notified = true;
      }
      w.cv.notify_one();
    }
  }

  bool HasWork() const {
    if (inject_size_.load(std::memory_order_acquire) > 0) return true;
    for (const auto& w : workers_) {
      if (!w->deque.Empty()) return true;
    }
    return false;
  }

  // One dequeue attempt: own deque first (workers), then the injection
  // queue, then one randomized sweep over the other workers' deques.
  Job* FindJob(int self) {
    if (self >= 0) {
      if (Job* job = workers_[self]->deque.Pop()) return job;
    }
    if (inject_size_.load(std::memory_order_acquire) > 0) {
      std::lock_guard<std::mutex> lock(inject_mu_);
      if (!inject_.empty()) {
        Job* job = inject_.front();
        inject_.pop_front();
        inject_size_.store(static_cast<int64_t>(inject_.size()),
                           std::memory_order_relaxed);
        queue_depth_->Set(static_cast<int64_t>(inject_.size()));
        return job;
      }
    }
    size_t w = workers_.size();
    if (w == 0) return nullptr;
    size_t start = static_cast<size_t>(NextRand() % w);
    for (size_t k = 0; k < w; ++k) {
      size_t victim = start + k;
      if (victim >= w) victim -= w;
      if (static_cast<int>(victim) == self) continue;
      if (Job* job = workers_[victim]->deque.Steal()) {
        steals_->Add(1);
        return job;
      }
    }
    return nullptr;
  }

  bool TryRunOne() {
    Job* job = FindJob(OnThisPoolsWorker() ? t_worker_id : -1);
    if (job == nullptr) return false;
    tasks_->Add(1);
    job->Run();
    return true;
  }

  void WorkerLoop(int id) {
    obs::Tracer::SetCurrentThreadName("pool-worker-" + std::to_string(id));
    t_worker_impl = this;
    t_worker_id = id;
    t_on_worker_thread = true;
    t_steal_rng = ((static_cast<uint64_t>(id) + 2) * 0x9e3779b97f4a7c15ull) | 1;
    Worker& me = *workers_[id];
    for (;;) {
      if (Job* job = FindJob(id)) {
        tasks_->Add(1);
        active_workers_->Add(1);
        job->Run();
        active_workers_->Add(-1);
        continue;
      }
      if (stop_.load(std::memory_order_acquire)) return;
      // Park: register, then re-check for work under the worker's own
      // mutex. A producer either saw us in parked_ (it will set notified)
      // or pushed before we registered (the predicate's HasWork sees it —
      // the producer's park_mu_ critical section happened before ours).
      {
        std::lock_guard<std::mutex> lock(park_mu_);
        parked_.push_back(id);
      }
      {
        std::unique_lock<std::mutex> lk(me.m);
        me.cv.wait(lk, [&] {
          return me.notified || stop_.load(std::memory_order_acquire) ||
                 HasWork();
        });
        me.notified = false;
      }
      // Deregister if a producer did not already pop us (waking via stop_ or
      // HasWork leaves the entry behind; a leftover pop by a producer later
      // just costs one spurious wakeup).
      {
        std::lock_guard<std::mutex> lock(park_mu_);
        for (size_t i = parked_.size(); i-- > 0;) {
          if (parked_[i] == id) {
            parked_.erase(parked_.begin() + static_cast<ptrdiff_t>(i));
            break;
          }
        }
      }
    }
  }

  // Runs a chunked loop to completion on the calling thread plus any workers
  // that pick up queued entries. The caller claims chunks immediately; once
  // all chunks are claimed it *helps* — runs other pending tasks — and only
  // parks on the join condition variable when the pool is drained.
  void RunJoin(JoinJob* job, const char* label) {
    int64_t entries = std::min<int64_t>(
        job->num_chunks - 1, static_cast<int64_t>(workers_.size()));
    if (entries > 0) {
      job->refs.fetch_add(entries, std::memory_order_relaxed);
      PushJob(job, entries);
    }
    job->RunChunks();
    for (;;) {
      {
        std::lock_guard<std::mutex> lock(job->m);
        if (job->complete) break;
      }
      if (TryRunOne()) {
        helped_->Add(1);
        continue;
      }
      std::unique_lock<std::mutex> lk(job->m);
      job->cv.wait(lk, [&] { return job->complete; });
      break;
    }
    ObserveImbalance(label, job->executed.load(std::memory_order_relaxed),
                     job->sum_ns.load(std::memory_order_relaxed),
                     job->max_ns.load(std::memory_order_relaxed));
    job->DecRef();
  }

  // Zero-worker fast path: execute the identical chunk decomposition
  // serially, in chunk order, on the calling thread.
  template <typename CallFn>
  void RunSerialChunks(const JoinJob& geom, const char* label, CallFn call) {
    int64_t executed = 0, sum_ns = 0, max_ns = 0;
    for (int64_t c = 0; c < geom.num_chunks; ++c) {
      int64_t b, e;
      geom.ChunkBounds(c, &b, &e);
      if (b >= e) continue;
      if (label != nullptr) {
        int64_t t0 = NowNs();
        call(b, e, c);
        int64_t dt = NowNs() - t0;
        sum_ns += dt;
        max_ns = std::max(max_ns, dt);
      } else {
        call(b, e, c);
      }
      ++executed;
      chunks_->Add(1);
    }
    ObserveImbalance(label, executed, sum_ns, max_ns);
  }

  void DrainForShutdown() {
    for (;;) {
      Job* job = nullptr;
      {
        std::lock_guard<std::mutex> lock(inject_mu_);
        if (!inject_.empty()) {
          job = inject_.front();
          inject_.pop_front();
          inject_size_.store(static_cast<int64_t>(inject_.size()),
                             std::memory_order_relaxed);
        }
      }
      if (job == nullptr) {
        for (auto& w : workers_) {
          if ((job = w->deque.Steal()) != nullptr) break;
        }
      }
      if (job == nullptr) return;
      job->Run();
    }
  }

  std::vector<std::unique_ptr<Worker>> workers_;
  std::vector<std::thread> threads_;

  std::mutex inject_mu_;
  std::deque<Job*> inject_;
  std::atomic<int64_t> inject_size_{0};

  std::mutex park_mu_;
  std::vector<int> parked_;

  std::atomic<bool> stop_{false};

  obs::Gauge* queue_depth_ = nullptr;
  obs::Gauge* active_workers_ = nullptr;
  obs::Counter* tasks_ = nullptr;
  obs::Counter* steals_ = nullptr;
  obs::Counter* chunks_ = nullptr;
  obs::Counter* helped_ = nullptr;
};

ThreadPool::ThreadPool(size_t num_threads) : impl_(new Impl(num_threads)) {}

ThreadPool::~ThreadPool() {
  impl_->stop_.store(true, std::memory_order_release);
  for (auto& w : impl_->workers_) {
    std::lock_guard<std::mutex> lock(w->m);
    w->notified = true;
  }
  for (auto& w : impl_->workers_) w->cv.notify_all();
  for (auto& t : impl_->threads_) t.join();
  // Matches the old pool's drain-before-exit semantics: anything still
  // queued (possible with zero workers) runs inline here.
  impl_->DrainForShutdown();
}

bool ThreadPool::InCurrentWorker() { return t_on_worker_thread; }

size_t ThreadPool::num_threads() const { return impl_->workers_.size(); }

void ThreadPool::Submit(std::function<void()> task) {
  impl_->PushJob(new Impl::SubmitJob(std::move(task)), 1);
}

bool ThreadPool::TryRunPendingTask() { return impl_->TryRunOne(); }

void ThreadPool::ParallelFor(int64_t begin, int64_t end, int64_t num_chunks,
                             const std::function<void(int64_t, int64_t)>& fn,
                             const char* label) {
  int64_t n = end - begin;
  if (n <= 0) return;
  num_chunks = std::max<int64_t>(1, std::min(num_chunks, n));
  if (num_chunks == 1) {
    fn(begin, end);
    return;
  }
  Impl::JoinJob* job = new Impl::JoinJob();
  job->impl = impl_.get();
  job->begin = begin;
  job->end = end;
  job->chunk_size = (n + num_chunks - 1) / num_chunks;
  job->num_chunks = num_chunks;
  job->fn = &fn;
  job->timed = label != nullptr;
  if (impl_->workers_.empty()) {
    impl_->RunSerialChunks(*job, label,
                           [&fn](int64_t b, int64_t e, int64_t) { fn(b, e); });
    delete job;
    return;
  }
  impl_->RunJoin(job, label);
}

void ThreadPool::ParallelForWeighted(
    int64_t begin, int64_t end, int64_t num_chunks,
    const std::function<int64_t(int64_t)>& weight,
    const std::function<void(int64_t, int64_t, int64_t)>& fn,
    const char* label) {
  int64_t n = end - begin;
  if (n <= 0) return;
  num_chunks = std::max<int64_t>(1, std::min(num_chunks, n));
  if (num_chunks == 1) {
    fn(begin, end, 0);
    return;
  }
  // Chunk boundaries from cumulative weight: close chunk c once the running
  // total crosses (c+1)/num_chunks of the grand total. Integer arithmetic
  // only, so boundaries are a pure deterministic function of the weights.
  std::vector<int64_t> bounds;
  bounds.reserve(static_cast<size_t>(num_chunks) + 1);
  int64_t total = 0;
  for (int64_t i = begin; i < end; ++i) {
    total += std::max<int64_t>(0, weight(i));
  }
  bounds.push_back(begin);
  if (total <= 0) {
    int64_t chunk = (n + num_chunks - 1) / num_chunks;
    for (int64_t b = begin + chunk; b < end; b += chunk) bounds.push_back(b);
  } else {
    int64_t cum = 0, c = 0;
    for (int64_t i = begin; i < end; ++i) {
      cum += std::max<int64_t>(0, weight(i));
      if (c + 1 < num_chunks && cum * num_chunks >= total * (c + 1)) {
        while (c + 1 < num_chunks && cum * num_chunks >= total * (c + 1)) ++c;
        if (i + 1 < end) bounds.push_back(i + 1);
      }
    }
  }
  bounds.push_back(end);
  int64_t used = static_cast<int64_t>(bounds.size()) - 1;
  if (used == 1) {
    fn(begin, end, 0);
    return;
  }
  Impl::JoinJob* job = new Impl::JoinJob();
  job->impl = impl_.get();
  job->begin = begin;
  job->end = end;
  job->bounds = bounds.data();
  job->num_chunks = used;
  job->wfn = &fn;
  job->timed = label != nullptr;
  if (impl_->workers_.empty()) {
    impl_->RunSerialChunks(
        *job, label, [&fn](int64_t b, int64_t e, int64_t c) { fn(b, e, c); });
    delete job;
    return;
  }
  // `bounds` lives on this stack frame; safe because RunJoin returns only
  // after every chunk is done, and stale queued entries never dereference
  // the geometry (their ticket fetch_add lands past num_chunks).
  impl_->RunJoin(job, label);
}

int DefaultParallelism() {
  static int k = [] {
    if (const char* env = std::getenv("SYSDS_NUM_THREADS")) {
      int v = std::atoi(env);
      if (v > 0) return v;
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
  }();
  return k;
}

ThreadPool& ThreadPool::Global() {
  // DefaultParallelism() - 1 workers: the ParallelFor caller participates,
  // so loops use exactly DefaultParallelism() threads (no oversubscription).
  static ThreadPool* pool = new ThreadPool(
      static_cast<size_t>(std::max(0, DefaultParallelism() - 1)));
  return *pool;
}

}  // namespace sysds
