#include "common/crc32.h"

namespace sysds {

namespace {

// Table generated once at first use from the reflected polynomial; the
// classic byte-at-a-time algorithm is plenty for spill/checkpoint sizes
// (memory bandwidth dominates these paths, not the checksum).
const uint32_t* CrcTable() {
  static const uint32_t* table = [] {
    static uint32_t t[256];
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  return table;
}

}  // namespace

void Crc32::Update(const void* data, size_t len) {
  const uint32_t* table = CrcTable();
  const unsigned char* p = static_cast<const unsigned char*>(data);
  uint32_t c = state_;
  for (size_t i = 0; i < len; ++i) {
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  state_ = c;
}

}  // namespace sysds
