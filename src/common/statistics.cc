#include "common/statistics.h"

#include <algorithm>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "obs/metrics.h"

namespace sysds {

namespace {

// Registry lookups take a shared lock; hot paths go through a per-thread
// memo of name -> metric pointer so steady-state increments touch no lock
// at all (pointers are stable for the process lifetime).
obs::InstrStat* CachedInstrStat(const std::string& opcode) {
  thread_local std::unordered_map<std::string, obs::InstrStat*> memo;
  auto it = memo.find(opcode);
  if (it != memo.end()) return it->second;
  obs::InstrStat* s = obs::MetricsRegistry::Get().GetInstrStat(opcode);
  memo.emplace(opcode, s);
  return s;
}

obs::Counter* CachedCounter(const std::string& name) {
  thread_local std::unordered_map<std::string, obs::Counter*> memo;
  auto it = memo.find(name);
  if (it != memo.end()) return it->second;
  obs::Counter* c = obs::MetricsRegistry::Get().GetCounter(name);
  memo.emplace(name, c);
  return c;
}

}  // namespace

Statistics& Statistics::Get() {
  static Statistics* instance = new Statistics();
  return *instance;
}

void Statistics::Reset() { obs::MetricsRegistry::Get().ResetValues(); }

void Statistics::IncInstruction(const std::string& opcode, double seconds) {
  obs::InstrStat* s = CachedInstrStat(opcode);
  s->count.Add(1);
  s->nanos.Add(static_cast<int64_t>(seconds * 1e9));
}

void Statistics::IncCounter(const std::string& name, int64_t delta) {
  CachedCounter(name)->Add(delta);
}

int64_t Statistics::GetCounter(const std::string& name) const {
  return obs::MetricsRegistry::Get().CounterValue(name);
}

std::string Statistics::Report(int top_k) const {
  std::ostringstream os;
  // Zero-count entries are metrics that exist in the registry but were not
  // touched since the last Reset(); skipping them preserves the pre-registry
  // report contents (a cleared map simply had no such entries).
  std::vector<obs::MetricsRegistry::InstrSnapshot> instrs;
  for (auto& s : obs::MetricsRegistry::Get().Instructions()) {
    if (s.count > 0) instrs.push_back(std::move(s));
  }
  std::sort(instrs.begin(), instrs.end(),
            [](const auto& a, const auto& b) { return a.seconds > b.seconds; });
  os << "Heavy hitter instructions (count, time[s]):\n";
  int shown = 0;
  for (const auto& s : instrs) {
    if (shown++ >= top_k) break;
    os << "  " << s.name << "\t" << s.count << "\t" << s.seconds << "\n";
  }
  std::vector<obs::MetricsRegistry::CounterSnapshot> counters;
  for (auto& c : obs::MetricsRegistry::Get().Counters()) {
    if (c.value != 0) counters.push_back(std::move(c));
  }
  if (!counters.empty()) {
    os << "Counters:\n";
    for (const auto& c : counters) {
      os << "  " << c.name << "\t" << c.value << "\n";
    }
  }
  return os.str();
}

}  // namespace sysds
