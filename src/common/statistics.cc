#include "common/statistics.h"

#include <algorithm>
#include <sstream>
#include <vector>

namespace sysds {

Statistics& Statistics::Get() {
  static Statistics* instance = new Statistics();
  return *instance;
}

void Statistics::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  instructions_.clear();
  counters_.clear();
}

void Statistics::IncInstruction(const std::string& opcode, double seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& entry = instructions_[opcode];
  entry.first += 1;
  entry.second += seconds;
}

void Statistics::IncCounter(const std::string& name, int64_t delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_[name] += delta;
}

int64_t Statistics::GetCounter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

std::string Statistics::Report(int top_k) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  std::vector<std::pair<std::string, std::pair<int64_t, double>>> entries(
      instructions_.begin(), instructions_.end());
  std::sort(entries.begin(), entries.end(),
            [](const auto& a, const auto& b) {
              return a.second.second > b.second.second;
            });
  os << "Heavy hitter instructions (count, time[s]):\n";
  int shown = 0;
  for (const auto& [op, ct] : entries) {
    if (shown++ >= top_k) break;
    os << "  " << op << "\t" << ct.first << "\t" << ct.second << "\n";
  }
  if (!counters_.empty()) {
    os << "Counters:\n";
    for (const auto& [name, v] : counters_) {
      os << "  " << name << "\t" << v << "\n";
    }
  }
  return os.str();
}

}  // namespace sysds
