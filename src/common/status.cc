#include "common/status.h"

namespace sysds {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "InvalidArgument";
    case StatusCode::kParseError: return "ParseError";
    case StatusCode::kValidateError: return "ValidateError";
    case StatusCode::kCompileError: return "CompileError";
    case StatusCode::kRuntimeError: return "RuntimeError";
    case StatusCode::kIoError: return "IoError";
    case StatusCode::kNotFound: return "NotFound";
    case StatusCode::kUnimplemented: return "Unimplemented";
    case StatusCode::kOutOfRange: return "OutOfRange";
    case StatusCode::kInternal: return "Internal";
    case StatusCode::kOom: return "Oom";
    case StatusCode::kTimeout: return "Timeout";
    case StatusCode::kCancelled: return "Cancelled";
    case StatusCode::kUnavailable: return "Unavailable";
    case StatusCode::kCorrupt: return "Corrupt";
    case StatusCode::kAborted: return "Aborted";
  }
  return "Unknown";
}

bool IsRetryable(StatusCode code) {
  switch (code) {
    case StatusCode::kOom:
    case StatusCode::kTimeout:
    case StatusCode::kCancelled:
    case StatusCode::kUnavailable:
    case StatusCode::kCorrupt:
      return true;
    default:
      return false;
  }
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string s = StatusCodeName(code_);
  s += ": ";
  s += message_;
  return s;
}

Status InvalidArgument(std::string m) { return Status(StatusCode::kInvalidArgument, std::move(m)); }
Status ParseError(std::string m) { return Status(StatusCode::kParseError, std::move(m)); }
Status ValidateError(std::string m) { return Status(StatusCode::kValidateError, std::move(m)); }
Status CompileError(std::string m) { return Status(StatusCode::kCompileError, std::move(m)); }
Status RuntimeError(std::string m) { return Status(StatusCode::kRuntimeError, std::move(m)); }
Status IoError(std::string m) { return Status(StatusCode::kIoError, std::move(m)); }
Status NotFound(std::string m) { return Status(StatusCode::kNotFound, std::move(m)); }
Status Unimplemented(std::string m) { return Status(StatusCode::kUnimplemented, std::move(m)); }
Status OutOfRange(std::string m) { return Status(StatusCode::kOutOfRange, std::move(m)); }
Status Internal(std::string m) { return Status(StatusCode::kInternal, std::move(m)); }
Status OomError(std::string m) { return Status(StatusCode::kOom, std::move(m)); }
Status TimeoutError(std::string m) { return Status(StatusCode::kTimeout, std::move(m)); }
Status CancelledError(std::string m) { return Status(StatusCode::kCancelled, std::move(m)); }
Status UnavailableError(std::string m) { return Status(StatusCode::kUnavailable, std::move(m)); }
Status CorruptError(std::string m) { return Status(StatusCode::kCorrupt, std::move(m)); }
Status AbortedError(std::string m) { return Status(StatusCode::kAborted, std::move(m)); }

}  // namespace sysds
