#ifndef SYSDS_COMMON_STATISTICS_H_
#define SYSDS_COMMON_STATISTICS_H_

#include <cstdint>
#include <string>

namespace sysds {

/// Process-wide runtime statistics, modeled after SystemDS's Statistics
/// output (instruction counts/times, cache hits, I/O, federated traffic).
///
/// This class is a thin facade over obs::MetricsRegistry: counters and
/// instruction timings live in the registry (sharded atomics, no global
/// mutex on the increment paths) and are shared with the --metrics JSON
/// export. Reset() is called per script execution when statistics are
/// enabled; it zeroes values but keeps registered metrics alive.
class Statistics {
 public:
  static Statistics& Get();

  void Reset();

  void IncInstruction(const std::string& opcode, double seconds);
  void IncCounter(const std::string& name, int64_t delta = 1);
  int64_t GetCounter(const std::string& name) const;

  /// Heavy-hitter style report: top-k instructions by total time plus all
  /// named counters.
  std::string Report(int top_k = 15) const;

 private:
  Statistics() = default;
};

}  // namespace sysds

#endif  // SYSDS_COMMON_STATISTICS_H_
