#ifndef SYSDS_COMMON_STATISTICS_H_
#define SYSDS_COMMON_STATISTICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>

namespace sysds {

/// Process-wide runtime statistics, modeled after SystemDS's Statistics
/// output (instruction counts/times, cache hits, I/O, federated traffic).
/// All counters are thread-safe; Reset() is called per script execution
/// when statistics are enabled.
class Statistics {
 public:
  static Statistics& Get();

  void Reset();

  void IncInstruction(const std::string& opcode, double seconds);
  void IncCounter(const std::string& name, int64_t delta = 1);
  int64_t GetCounter(const std::string& name) const;

  /// Heavy-hitter style report: top-k instructions by total time plus all
  /// named counters.
  std::string Report(int top_k = 15) const;

 private:
  Statistics() = default;

  mutable std::mutex mutex_;
  std::map<std::string, std::pair<int64_t, double>> instructions_;
  std::map<std::string, int64_t> counters_;
};

}  // namespace sysds

#endif  // SYSDS_COMMON_STATISTICS_H_
