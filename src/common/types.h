#ifndef SYSDS_COMMON_TYPES_H_
#define SYSDS_COMMON_TYPES_H_

#include <cstdint>
#include <string>

namespace sysds {

/// Data types of language-level values (DML: matrix, frame, tensor, scalar,
/// list). kUnknown is used during compilation before validation resolves it.
enum class DataType {
  kScalar,
  kMatrix,
  kFrame,
  kTensor,
  kList,
  kUnknown,
};

/// Value types of cell values. Matrices are FP64-valued; tensors and frame
/// columns support the full set (paper §2.4: FP32, FP64, INT32, INT64, Bool,
/// and String including JSON).
enum class ValueType {
  kFP64,
  kFP32,
  kInt64,
  kInt32,
  kBoolean,
  kString,
  kUnknown,
};

/// Where an operator executes (paper §2.3(4)): local control program (CP),
/// simulated distributed backend (SPARK), or federated sites (FED).
enum class ExecType {
  kCP,
  kSpark,
  kFed,
};

const char* DataTypeName(DataType dt);
const char* ValueTypeName(ValueType vt);
const char* ExecTypeName(ExecType et);

/// Size in bytes of one element of the given value type (8 for String as a
/// pointer-sized slot; actual string payloads are accounted separately).
int64_t ValueTypeSize(ValueType vt);

/// Parses "FP64"/"DOUBLE", "INT64"/"INT", "BOOLEAN", "STRING", ... Returns
/// kUnknown if unrecognized.
ValueType ParseValueType(const std::string& name);

}  // namespace sysds

#endif  // SYSDS_COMMON_TYPES_H_
