#ifndef SYSDS_COMMON_CONFIG_H_
#define SYSDS_COMMON_CONFIG_H_

#include <cstdint>

#include "common/faults.h"

namespace sysds {

/// How lineage-based reuse of intermediates operates (paper §3.1).
enum class ReusePolicy {
  kNone,         // trace only (if tracing enabled), never reuse
  kFull,         // reuse only exact lineage matches
  kPartial,      // full + compensation-plan based partial reuse
};

/// Output representation of transformencode/transformapply (§4.2 + §3.4):
/// dummy-coded and recoded columns are natural DDC column groups, so the
/// encoder can emit a CompressedMatrixBlock directly, skipping the dense
/// intermediate and the sampling planner (the fitted dictionary gives exact
/// cardinalities). kAuto prices bytes per column like the compression
/// planner and falls back to dense below the min-ratio gate.
enum class TransformOutputFormat {
  kDense,       // always a dense/sparse MatrixBlock (legacy behaviour)
  kCompressed,  // always a CompressedMatrixBlock
  kAuto,        // per-column byte pricing + min-ratio gate decides
};

/// Global execution configuration. One instance is attached to each
/// SystemDSContext; the defaults model the paper's driver configuration
/// (local CP with optional distributed/federated operations chosen by
/// memory estimates).
struct DMLConfig {
  // Degree of parallelism for multi-threaded CP kernels and parfor.
  int num_threads = 0;  // 0 = DefaultParallelism()

  // CP memory budget in bytes; operations whose memory estimate exceeds
  // this are compiled to the distributed (SPARK-sim) backend, mirroring the
  // memory-estimate-driven operator selection of §2.3(2).
  int64_t cp_memory_budget = 2LL * 1024 * 1024 * 1024;

  // Buffer-pool limit (bytes of cached matrix data before eviction).
  int64_t buffer_pool_limit = 1LL * 1024 * 1024 * 1024;
  // Write-behind eviction: a background thread spills dirty unpinned
  // blocks ahead of need so evictions become free drops of clean blocks;
  // callers only block on spill writes above the pool's hard limit. When
  // off, every eviction writes synchronously on the evicting thread.
  bool buffer_pool_write_behind = true;
  // Hint-driven prefetch: loops restore their spilled invariant operands
  // asynchronously at iteration boundaries (compiler liveness hints).
  bool buffer_pool_prefetch = true;

  // Block size (rows==cols) of the distributed blocking scheme.
  int64_t block_size = 1024;

  // Lineage tracing & reuse.
  bool lineage_tracing = false;
  ReusePolicy reuse_policy = ReusePolicy::kNone;
  int64_t lineage_cache_limit = 512LL * 1024 * 1024;
  // Loop deduplication (§3.1): per loop iteration, replace each changed
  // variable's per-instruction trace by a single node referencing the
  // distinct control-flow path taken, bounding trace growth to
  // O(loop-carried variables) instead of O(instructions) per iteration.
  bool lineage_dedup = false;

  // Force all matrix operations to a backend (testing / benchmarking).
  bool force_spark = false;

  // Operator fusion (compiler/fusion.h): single-pass fused pipelines for
  // elementwise–aggregate chains. A region is fused only when it elides at
  // least one intermediate whose dense estimate reaches the threshold, so
  // tiny expressions keep the (cheaper to compile) unfused form.
  bool fusion_enabled = true;
  int64_t fusion_min_intermediate_bytes = 1024;

  // Dynamic recompilation of basic blocks when sizes were unknown (§2.3(3)).
  bool dynamic_recompilation = true;

  // Workload-aware compressed linear algebra (§3.4). When enabled, a
  // compiler rewrite injects compress() for large loop-invariant read-only
  // matrices, matrix instructions dispatch to compressed kernels with
  // decompress-and-retry fallback, and the buffer pool accounts/spills
  // compressed blocks in compressed form.
  bool compression_enabled = false;
  // The sampling-based planner only compresses when the estimated ratio
  // (in-memory bytes / compressed bytes) reaches this gate.
  double compression_min_ratio = 1.2;
  // Matrices below this in-memory size are never compressed (the planner
  // sample would cost more than the savings).
  int64_t compression_min_size_bytes = 64 * 1024;
  // Rows sampled by the planner's estimators.
  int64_t compression_sample_rows = 2048;
  // Maximum width of a co-coded column group.
  int64_t compression_max_group_cols = 4;

  // Feature-transform pipeline (runtime/frame/transform.h). The compiler
  // plans the encode output format per instruction (PlanTransformOutputs):
  // kDense is upgraded to kAuto when compression is enabled, so encode
  // outputs feed downstream lmDS-style sweeps in compressed form.
  TransformOutputFormat transform_output = TransformOutputFormat::kDense;
  // Threads for transform fit/apply (0 = the instruction-level parallelism,
  // i.e. num_threads / DefaultParallelism).
  int transform_num_threads = 0;

  // Print instruction-level statistics at the end of a script run.
  bool statistics = false;

  // Chaos testing: when faults.enabled, SystemDSContext configures the
  // process-wide FaultInjector at construction (see common/faults.h and
  // SystemDSContext::Builder::Chaos/ChaosSeed).
  FaultConfig faults;

  // Checkpoint/restart (src/runtime/recovery/). When checkpoint_dir is
  // non-empty, outermost annotated loops snapshot their loop-carried
  // variables into crash-safe checkpoint files; a later run with
  // checkpoint_resume set re-executes the deterministic prefix and fast-
  // forwards to the last committed checkpoint. See
  // SystemDSContext::Builder::Checkpointing/Resume.
  std::string checkpoint_dir;
  // Checkpoint every N-th completed iteration; <= 0 selects the adaptive
  // cost gate (lost-work vs estimated-write-cost).
  int64_t checkpoint_interval = 1;
  // Adaptive gate: checkpoint when estimated lost work exceeds this factor
  // times the estimated checkpoint write cost.
  double checkpoint_cost_factor = 2.0;
  bool checkpoint_resume = false;
};

}  // namespace sysds

#endif  // SYSDS_COMMON_CONFIG_H_
