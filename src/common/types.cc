#include "common/types.h"

#include <algorithm>
#include <cctype>

namespace sysds {

const char* DataTypeName(DataType dt) {
  switch (dt) {
    case DataType::kScalar: return "SCALAR";
    case DataType::kMatrix: return "MATRIX";
    case DataType::kFrame: return "FRAME";
    case DataType::kTensor: return "TENSOR";
    case DataType::kList: return "LIST";
    case DataType::kUnknown: return "UNKNOWN";
  }
  return "UNKNOWN";
}

const char* ValueTypeName(ValueType vt) {
  switch (vt) {
    case ValueType::kFP64: return "FP64";
    case ValueType::kFP32: return "FP32";
    case ValueType::kInt64: return "INT64";
    case ValueType::kInt32: return "INT32";
    case ValueType::kBoolean: return "BOOLEAN";
    case ValueType::kString: return "STRING";
    case ValueType::kUnknown: return "UNKNOWN";
  }
  return "UNKNOWN";
}

const char* ExecTypeName(ExecType et) {
  switch (et) {
    case ExecType::kCP: return "CP";
    case ExecType::kSpark: return "SPARK";
    case ExecType::kFed: return "FED";
  }
  return "CP";
}

int64_t ValueTypeSize(ValueType vt) {
  switch (vt) {
    case ValueType::kFP64: return 8;
    case ValueType::kFP32: return 4;
    case ValueType::kInt64: return 8;
    case ValueType::kInt32: return 4;
    case ValueType::kBoolean: return 1;
    case ValueType::kString: return 8;
    case ValueType::kUnknown: return 8;
  }
  return 8;
}

ValueType ParseValueType(const std::string& name) {
  std::string up = name;
  std::transform(up.begin(), up.end(), up.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  if (up == "FP64" || up == "DOUBLE") return ValueType::kFP64;
  if (up == "FP32" || up == "FLOAT") return ValueType::kFP32;
  if (up == "INT64" || up == "INT" || up == "INTEGER") return ValueType::kInt64;
  if (up == "INT32") return ValueType::kInt32;
  if (up == "BOOLEAN" || up == "BOOL") return ValueType::kBoolean;
  if (up == "STRING" || up == "STR") return ValueType::kString;
  return ValueType::kUnknown;
}

}  // namespace sysds
