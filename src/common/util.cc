#include "common/util.h"

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cmath>

namespace sysds {

std::vector<std::string> SplitString(const std::string& s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.push_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string JoinStrings(const std::vector<std::string>& parts,
                        const std::string& sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

std::string TrimString(const std::string& s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string ToLower(const std::string& s) {
  std::string out = s;
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return out;
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

bool EndsWith(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

uint64_t HashString(const std::string& s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

Xoshiro::Xoshiro(uint64_t seed) {
  // splitmix64 seeding of the 4-word state.
  uint64_t z = seed;
  for (int i = 0; i < 4; ++i) {
    z += 0x9e3779b97f4a7c15ULL;
    uint64_t x = z;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
    s_[i] = x ^ (x >> 31);
  }
}

static inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

uint64_t Xoshiro::NextUint64() {
  // xoshiro256**
  uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Xoshiro::NextDouble() {
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Xoshiro::NextDouble(double lo, double hi) {
  return lo + (hi - lo) * NextDouble();
}

double Xoshiro::NextGaussian() {
  if (have_gauss_) {
    have_gauss_ = false;
    return gauss_;
  }
  double u1 = NextDouble();
  double u2 = NextDouble();
  if (u1 < 1e-300) u1 = 1e-300;
  double r = std::sqrt(-2.0 * std::log(u1));
  gauss_ = r * std::sin(2.0 * M_PI * u2);
  have_gauss_ = true;
  return r * std::cos(2.0 * M_PI * u2);
}

namespace {

std::atomic<uint64_t>& SeedBase() {
  static std::atomic<uint64_t> base{static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count())};
  return base;
}

std::atomic<uint64_t>& SeedCounter() {
  static std::atomic<uint64_t> counter{0x9e3779b97f4a7c15ULL};
  return counter;
}

}  // namespace

uint64_t GenerateSeed() {
  return HashCombine(SeedBase().load(std::memory_order_relaxed),
                     SeedCounter().fetch_add(1, std::memory_order_relaxed));
}

SeedState GetSeedState() {
  return SeedState{SeedBase().load(std::memory_order_relaxed),
                   SeedCounter().load(std::memory_order_relaxed)};
}

void SetSeedState(const SeedState& state) {
  SeedBase().store(state.base, std::memory_order_relaxed);
  SeedCounter().store(state.counter, std::memory_order_relaxed);
}

}  // namespace sysds
