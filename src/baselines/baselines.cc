#include "baselines/baselines.h"

#include <sstream>

#include "api/systemds_context.h"
#include "common/thread_pool.h"
#include "common/util.h"
#include "io/io.h"
#include "runtime/matrix/lib_datagen.h"
#include "runtime/matrix/lib_elementwise.h"
#include "runtime/matrix/lib_matmult.h"
#include "runtime/matrix/lib_reorg.h"
#include "runtime/matrix/lib_solve.h"
#include "runtime/matrix/op_codes.h"

namespace sysds {

namespace {

// Single-threaded CSV read (the TF/Julia baselines parse sequentially;
// string-to-double parsing is compute-intensive, §4.2 observation 1).
StatusOr<MatrixBlock> ReadCsvSingleThreaded(const std::string& path) {
  return io::Read(path, FormatDescriptor::Csv(',', false, 1));
}

Status WriteModels(const std::vector<MatrixBlock>& models,
                   const std::string& path) {
  if (models.empty()) return Status::Ok();
  std::vector<const MatrixBlock*> ptrs;
  ptrs.reserve(models.size());
  for (const MatrixBlock& m : models) ptrs.push_back(&m);
  SYSDS_ASSIGN_OR_RETURN(MatrixBlock all, CBind(ptrs));
  return io::Write(all, path, FormatDescriptor::Csv());
}

StatusOr<MatrixBlock> RidgeSolve(const MatrixBlock& xtx,
                                 const MatrixBlock& xty, double lambda) {
  MatrixBlock a = xtx;
  a.ToDense();
  for (int64_t i = 0; i < a.Rows(); ++i) a.DenseRow(i)[i] += lambda;
  a.MarkNnzDirty();
  return Solve(a, xty);
}

}  // namespace

StatusOr<SweepTimings> RunSweepTF(const SweepWorkload& workload,
                                  bool graph_mode) {
  SweepTimings t;
  Timer total;
  Timer io;
  SYSDS_ASSIGN_OR_RETURN(MatrixBlock x, ReadCsvSingleThreaded(workload.x_csv));
  SYSDS_ASSIGN_OR_RETURN(MatrixBlock y, ReadCsvSingleThreaded(workload.y_csv));
  t.io_seconds = io.ElapsedSeconds();

  int threads = DefaultParallelism();
  std::vector<MatrixBlock> models;
  models.reserve(workload.lambdas.size());

  if (!x.IsSparse()) {
    // Dense: the fused matmul call (manually rewritten script) — but still
    // one t(X)X and t(X)y pair PER MODEL; graph mode changes nothing for
    // dense since no transpose is materialized.
    for (double lambda : workload.lambdas) {
      SYSDS_ASSIGN_OR_RETURN(MatrixBlock xtx,
                             TransposeSelfMatMult(x, true, threads));
      SYSDS_ASSIGN_OR_RETURN(MatrixBlock xty,
                             TransposeLeftMatMult(x, y, threads));
      t.matmults += 2;
      SYSDS_ASSIGN_OR_RETURN(MatrixBlock b, RidgeSolve(xtx, xty, lambda));
      models.push_back(std::move(b));
    }
  } else if (graph_mode) {
    // TF-G sparse: the transpose is a common subexpression of the single
    // graph and executes once; the matmuls remain per model.
    MatrixBlock xt = Transpose(x, threads);
    t.transposes += 1;
    for (double lambda : workload.lambdas) {
      SYSDS_ASSIGN_OR_RETURN(MatrixBlock xtx, MatMult(xt, x, threads));
      SYSDS_ASSIGN_OR_RETURN(MatrixBlock xty, MatMult(xt, y, threads));
      t.matmults += 2;
      SYSDS_ASSIGN_OR_RETURN(MatrixBlock b, RidgeSolve(xtx, xty, lambda));
      models.push_back(std::move(b));
    }
  } else {
    // TF eager sparse: no fused sparse t(X)%*%X call — a materialized
    // transpose per model.
    for (double lambda : workload.lambdas) {
      MatrixBlock xt = Transpose(x, threads);
      t.transposes += 1;
      SYSDS_ASSIGN_OR_RETURN(MatrixBlock xtx, MatMult(xt, x, threads));
      SYSDS_ASSIGN_OR_RETURN(MatrixBlock xty, MatMult(xt, y, threads));
      t.matmults += 2;
      SYSDS_ASSIGN_OR_RETURN(MatrixBlock b, RidgeSolve(xtx, xty, lambda));
      models.push_back(std::move(b));
    }
  }
  Timer io2;
  SYSDS_RETURN_IF_ERROR(WriteModels(models, workload.out_csv));
  t.io_seconds += io2.ElapsedSeconds();
  t.total_seconds = total.ElapsedSeconds();
  return t;
}

StatusOr<SweepTimings> RunSweepJulia(const SweepWorkload& workload) {
  SweepTimings t;
  Timer total;
  Timer io;
  SYSDS_ASSIGN_OR_RETURN(MatrixBlock x, ReadCsvSingleThreaded(workload.x_csv));
  SYSDS_ASSIGN_OR_RETURN(MatrixBlock y, ReadCsvSingleThreaded(workload.y_csv));
  t.io_seconds = io.ElapsedSeconds();

  int threads = DefaultParallelism();
  std::vector<MatrixBlock> models;
  models.reserve(workload.lambdas.size());
  // Julia's X'X dispatches to fused native kernels (no materialized
  // transpose), but recomputes per model.
  for (double lambda : workload.lambdas) {
    SYSDS_ASSIGN_OR_RETURN(MatrixBlock xtx,
                           TransposeSelfMatMult(x, true, threads));
    SYSDS_ASSIGN_OR_RETURN(MatrixBlock xty,
                           TransposeLeftMatMult(x, y, threads));
    t.matmults += 2;
    SYSDS_ASSIGN_OR_RETURN(MatrixBlock b, RidgeSolve(xtx, xty, lambda));
    models.push_back(std::move(b));
  }
  Timer io2;
  SYSDS_RETURN_IF_ERROR(WriteModels(models, workload.out_csv));
  t.io_seconds += io2.ElapsedSeconds();
  t.total_seconds = total.ElapsedSeconds();
  return t;
}

StatusOr<SweepTimings> RunSweepSysDS(const SweepWorkload& workload,
                                     bool native_blas, bool reuse) {
  SweepTimings t;
  Timer total;
  GemmKernel prev = GetGemmKernel();
  SetGemmKernel(native_blas ? GemmKernel::kNative : GemmKernel::kPortable);

  DMLConfig config;
  config.reuse_policy = reuse ? ReusePolicy::kPartial : ReusePolicy::kNone;
  config.lineage_tracing = reuse;
  SystemDSContext ctx(config);

  // The hyper-parameter optimization script of §4.1, on top of the lmDS
  // DML-bodied builtin.
  std::ostringstream lambdas;
  lambdas << workload.lambdas.size();
  std::ostringstream lamvals;
  for (size_t i = 0; i < workload.lambdas.size(); ++i) {
    if (i > 0) lamvals << " ";
    lamvals << workload.lambdas[i];
  }
  std::string script =
      "X = read('" + workload.x_csv + "')\n"
      "y = read('" + workload.y_csv + "')\n"
      "lambdas = matrix(\"" + lamvals.str() + "\", " + lambdas.str() +
      ", 1)\n"
      "k = nrow(lambdas)\n"
      "B = matrix(0, ncol(X), k)\n"
      "for (i in 1:k) {\n"
      "  reg = as.scalar(lambdas[i, 1])\n"
      "  B[, i] = lmDS(X, y, 0, reg)\n"
      "}\n"
      "write(B, '" + workload.out_csv + "')\n";
  auto result = ctx.Execute(script, {}, {});
  SetGemmKernel(prev);
  if (!result.ok()) return result.status();
  t.total_seconds = total.ElapsedSeconds();
  t.matmults = 2 * static_cast<int64_t>(workload.lambdas.size());
  return t;
}

Status GenerateSweepData(int64_t rows, int64_t cols, double sparsity,
                         uint64_t seed, const std::string& x_csv,
                         const std::string& y_csv) {
  SYSDS_ASSIGN_OR_RETURN(
      MatrixBlock x,
      RandMatrix(rows, cols, 0.0, 1.0, sparsity, seed, RandPdf::kUniform,
                 DefaultParallelism()));
  SYSDS_ASSIGN_OR_RETURN(
      MatrixBlock w,
      RandMatrix(cols, 1, -1.0, 1.0, 1.0, seed + 1, RandPdf::kUniform, 1));
  SYSDS_ASSIGN_OR_RETURN(MatrixBlock y,
                         MatMult(x, w, DefaultParallelism()));
  SYSDS_ASSIGN_OR_RETURN(
      MatrixBlock noise,
      RandMatrix(rows, 1, -0.01, 0.01, 1.0, seed + 2, RandPdf::kUniform, 1));
  SYSDS_ASSIGN_OR_RETURN(
      y, BinaryMatrixMatrix(BinaryOpCode::kAdd, y, noise, 1));
  SYSDS_RETURN_IF_ERROR(io::Write(x, x_csv, FormatDescriptor::Csv()));
  return io::Write(y, y_csv, FormatDescriptor::Csv());
}

}  // namespace sysds
