#ifndef SYSDS_BASELINES_BASELINES_H_
#define SYSDS_BASELINES_BASELINES_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "runtime/matrix/matrix_block.h"

namespace sysds {

/// The evaluation workload of the paper (§4.1): read X and y from CSV,
/// train k ridge-regression models B_i = solve(t(X)X + lambda_i I, t(X)y)
/// (lmDS), and write all models to a single CSV.
struct SweepWorkload {
  std::string x_csv;
  std::string y_csv;
  std::vector<double> lambdas;
  std::string out_csv;
};

struct SweepTimings {
  double total_seconds = 0.0;
  double io_seconds = 0.0;
  int64_t matmults = 0;     // number of large matrix multiplies executed
  int64_t transposes = 0;   // number of materialized transposes
};

/// TensorFlow-1.x-style baseline (§4.2). Eager mode (graph_mode=false):
/// per-model execution; for sparse inputs every model pays a materialized
/// transpose because the sparse-dense matmul lacks a fused t(X)%*%X call
/// (dense uses the fused call, matching the paper's manually rewritten
/// script). Graph mode (TF-G, graph_mode=true): one graph for the whole
/// sweep — the transpose is a common subexpression executed once, but the
/// per-model matrix multiplies remain (the paper's observation 4: none of
/// the baselines eliminates the redundant matmuls). Single-threaded CSV
/// parsing (observation 1).
StatusOr<SweepTimings> RunSweepTF(const SweepWorkload& workload,
                                  bool graph_mode);

/// Julia-style baseline: best-in-class native eager kernels with fused
/// t(X)%*%X / t(X)%*%y dispatch, no cross-model reuse, single-threaded CSV
/// parse.
StatusOr<SweepTimings> RunSweepJulia(const SweepWorkload& workload);

/// SystemDS execution of the same workload through the DML stack
/// (hyper-parameter sweep script using lmDS). `native_blas` selects the
/// SysDS-B kernel; `reuse` enables lineage-based reuse of intermediates.
StatusOr<SweepTimings> RunSweepSysDS(const SweepWorkload& workload,
                                     bool native_blas, bool reuse);

/// Generates and writes the synthetic sweep inputs (dense or sparse X with
/// the given sparsity; y = X w + noise), returning the lambda grid.
Status GenerateSweepData(int64_t rows, int64_t cols, double sparsity,
                         uint64_t seed, const std::string& x_csv,
                         const std::string& y_csv);

}  // namespace sysds

#endif  // SYSDS_BASELINES_BASELINES_H_
