#include "lang/ast.h"

namespace sysds {

ExprPtr MakeIntLiteral(int64_t v, int line, int col) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kIntLiteral;
  e->int_value = v;
  e->double_value = static_cast<double>(v);
  e->line = line;
  e->col = col;
  return e;
}

ExprPtr MakeDoubleLiteral(double v, int line, int col) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kDoubleLiteral;
  e->double_value = v;
  e->line = line;
  e->col = col;
  return e;
}

ExprPtr MakeStringLiteral(std::string v, int line, int col) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kStringLiteral;
  e->string_value = std::move(v);
  e->line = line;
  e->col = col;
  return e;
}

ExprPtr MakeBoolLiteral(bool v, int line, int col) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBoolLiteral;
  e->bool_value = v;
  e->line = line;
  e->col = col;
  return e;
}

ExprPtr MakeIdentifier(std::string name, int line, int col) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kIdentifier;
  e->name = std::move(name);
  e->line = line;
  e->col = col;
  return e;
}

ExprPtr MakeBinary(std::string op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->name = std::move(op);
  e->line = lhs->line;
  e->col = lhs->col;
  e->args.push_back(std::move(lhs));
  e->args.push_back(std::move(rhs));
  return e;
}

ExprPtr MakeUnary(std::string op, ExprPtr operand) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kUnary;
  e->name = std::move(op);
  e->line = operand->line;
  e->col = operand->col;
  e->args.push_back(std::move(operand));
  return e;
}

ExprPtr CloneExpr(const Expr& e) {
  auto out = std::make_unique<Expr>();
  out->kind = e.kind;
  out->line = e.line;
  out->col = e.col;
  out->int_value = e.int_value;
  out->double_value = e.double_value;
  out->string_value = e.string_value;
  out->bool_value = e.bool_value;
  out->name = e.name;
  out->arg_names = e.arg_names;
  out->has_row_range = e.has_row_range;
  out->has_col_range = e.has_col_range;
  for (const ExprPtr& a : e.args) out->args.push_back(CloneExpr(*a));
  if (e.target) out->target = CloneExpr(*e.target);
  if (e.row_lower) out->row_lower = CloneExpr(*e.row_lower);
  if (e.row_upper) out->row_upper = CloneExpr(*e.row_upper);
  if (e.col_lower) out->col_lower = CloneExpr(*e.col_lower);
  if (e.col_upper) out->col_upper = CloneExpr(*e.col_upper);
  return out;
}

}  // namespace sysds
