#ifndef SYSDS_LANG_LEXER_H_
#define SYSDS_LANG_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "lang/token.h"

namespace sysds {

/// Tokenizes a DML script. Newlines inside parentheses/brackets are
/// swallowed (expressions continue); at nesting depth zero they become
/// kNewline statement separators. Comments start with '#' and run to end of
/// line.
StatusOr<std::vector<Token>> Tokenize(const std::string& source);

}  // namespace sysds

#endif  // SYSDS_LANG_LEXER_H_
