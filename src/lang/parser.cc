#include "lang/parser.h"

#include <utility>

#include "lang/lexer.h"

namespace sysds {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  StatusOr<DMLProgram> ParseProgram() {
    DMLProgram prog;
    SkipSeparators();
    while (!Check(TokenType::kEof)) {
      SYSDS_ASSIGN_OR_RETURN(StmtPtr stmt, ParseStatement());
      if (stmt->kind == StmtKind::kFunctionDef) {
        prog.functions.push_back(std::move(stmt));
      } else {
        prog.statements.push_back(std::move(stmt));
      }
      SkipSeparators();
    }
    return prog;
  }

 private:
  const Token& Peek(int ahead = 0) const {
    size_t i = pos_ + static_cast<size_t>(ahead);
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool Check(TokenType t) const { return Peek().type == t; }
  bool Match(TokenType t) {
    if (Check(t)) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status Err(const std::string& msg) const {
    const Token& t = Peek();
    return ParseError(msg + " at line " + std::to_string(t.line) + ":" +
                      std::to_string(t.col) + " (got '" +
                      (t.type == TokenType::kEof ? "<eof>" : t.text) + "')");
  }
  Status Expect(TokenType t, const std::string& what) {
    if (!Match(t)) return Err("expected " + what);
    return Status::Ok();
  }
  void SkipSeparators() {
    while (Check(TokenType::kNewline) || Check(TokenType::kSemicolon)) {
      ++pos_;
    }
  }
  void SkipNewlines() {
    while (Check(TokenType::kNewline)) ++pos_;
  }

  // ---- Statements ----

  StatusOr<StmtPtr> ParseStatement() {
    switch (Peek().type) {
      case TokenType::kIf: return ParseIf();
      case TokenType::kWhile: return ParseWhile();
      case TokenType::kFor: return ParseFor(/*parfor=*/false);
      case TokenType::kParFor: return ParseFor(/*parfor=*/true);
      case TokenType::kLBracket: return ParseMultiAssign();
      default: break;
    }
    // Function definition: IDENT = function(...)
    if (Check(TokenType::kIdentifier) &&
        (Peek(1).type == TokenType::kAssign ||
         Peek(1).type == TokenType::kLeftArrow) &&
        Peek(2).type == TokenType::kFunction) {
      return ParseFunctionDef();
    }
    // Assignment (plain or indexed lhs) vs. expression statement.
    if (Check(TokenType::kIdentifier)) {
      size_t save = pos_;
      Token ident = Advance();
      ExprPtr index;
      if (Check(TokenType::kLBracket)) {
        ExprPtr base = MakeIdentifier(ident.text, ident.line, ident.col);
        auto idx = ParseIndexSuffix(std::move(base));
        if (!idx.ok()) return idx.status();
        index = std::move(idx).value();
      }
      if (Check(TokenType::kAssign) || Check(TokenType::kLeftArrow)) {
        Advance();
        SkipNewlines();
        SYSDS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseExpr());
        auto stmt = std::make_unique<Stmt>();
        stmt->kind = StmtKind::kAssign;
        stmt->line = ident.line;
        stmt->col = ident.col;
        AssignTarget target;
        target.name = ident.text;
        target.index = std::move(index);
        stmt->targets.push_back(std::move(target));
        stmt->rhs = std::move(rhs);
        SYSDS_RETURN_IF_ERROR(EndOfStatement());
        return stmt;
      }
      pos_ = save;  // not an assignment; reparse as expression
    }
    SYSDS_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kExpression;
    stmt->line = e->line;
    stmt->col = e->col;
    stmt->expr = std::move(e);
    SYSDS_RETURN_IF_ERROR(EndOfStatement());
    return stmt;
  }

  Status EndOfStatement() {
    if (Check(TokenType::kNewline) || Check(TokenType::kSemicolon) ||
        Check(TokenType::kEof) || Check(TokenType::kRBrace)) {
      return Status::Ok();
    }
    return Err("expected end of statement");
  }

  StatusOr<StmtPtr> ParseMultiAssign() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kAssign;
    stmt->line = Peek().line;
    stmt->col = Peek().col;
    SYSDS_RETURN_IF_ERROR(Expect(TokenType::kLBracket, "'['"));
    for (;;) {
      SkipNewlines();
      if (!Check(TokenType::kIdentifier)) return Err("expected variable name");
      Token ident = Advance();
      AssignTarget target;
      target.name = ident.text;
      stmt->targets.push_back(std::move(target));
      SkipNewlines();
      if (Match(TokenType::kComma)) continue;
      break;
    }
    SYSDS_RETURN_IF_ERROR(Expect(TokenType::kRBracket, "']'"));
    if (!Match(TokenType::kAssign) && !Match(TokenType::kLeftArrow)) {
      return Err("expected '=' after multi-assignment targets");
    }
    SkipNewlines();
    SYSDS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseExpr());
    stmt->rhs = std::move(rhs);
    SYSDS_RETURN_IF_ERROR(EndOfStatement());
    return stmt;
  }

  StatusOr<std::vector<StmtPtr>> ParseBlock() {
    std::vector<StmtPtr> body;
    SkipNewlines();
    if (Match(TokenType::kLBrace)) {
      SkipSeparators();
      while (!Check(TokenType::kRBrace)) {
        if (Check(TokenType::kEof)) return Err("unterminated block");
        SYSDS_ASSIGN_OR_RETURN(StmtPtr s, ParseStatement());
        body.push_back(std::move(s));
        SkipSeparators();
      }
      Advance();  // '}'
    } else {
      SYSDS_ASSIGN_OR_RETURN(StmtPtr s, ParseStatement());
      body.push_back(std::move(s));
    }
    return body;
  }

  StatusOr<StmtPtr> ParseIf() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kIf;
    stmt->line = Peek().line;
    stmt->col = Peek().col;
    Advance();  // 'if'
    SYSDS_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'(' after if"));
    SYSDS_ASSIGN_OR_RETURN(stmt->predicate, ParseExpr());
    SYSDS_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')' after predicate"));
    SYSDS_ASSIGN_OR_RETURN(stmt->body, ParseBlock());
    size_t save = pos_;
    SkipSeparators();
    if (Match(TokenType::kElse)) {
      if (Check(TokenType::kIf)) {
        SYSDS_ASSIGN_OR_RETURN(StmtPtr elif, ParseIf());
        stmt->else_body.push_back(std::move(elif));
      } else {
        SYSDS_ASSIGN_OR_RETURN(stmt->else_body, ParseBlock());
      }
    } else {
      pos_ = save;
    }
    return stmt;
  }

  StatusOr<StmtPtr> ParseWhile() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kWhile;
    stmt->line = Peek().line;
    stmt->col = Peek().col;
    Advance();  // 'while'
    SYSDS_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'(' after while"));
    SYSDS_ASSIGN_OR_RETURN(stmt->predicate, ParseExpr());
    SYSDS_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')' after predicate"));
    SYSDS_ASSIGN_OR_RETURN(stmt->body, ParseBlock());
    return stmt;
  }

  StatusOr<StmtPtr> ParseFor(bool parfor) {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kFor;
    stmt->is_parfor = parfor;
    stmt->line = Peek().line;
    stmt->col = Peek().col;
    Advance();  // 'for'/'parfor'
    SYSDS_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'(' after for"));
    if (!Check(TokenType::kIdentifier)) return Err("expected loop variable");
    stmt->loop_var = Advance().text;
    SYSDS_RETURN_IF_ERROR(Expect(TokenType::kIn, "'in'"));
    SYSDS_ASSIGN_OR_RETURN(ExprPtr iterable, ParseExpr());
    // Accept `a:b` ranges and seq(from, to[, incr]) calls.
    if (iterable->kind == ExprKind::kBinary && iterable->name == ":") {
      stmt->from = std::move(iterable->args[0]);
      stmt->to = std::move(iterable->args[1]);
      stmt->increment = MakeIntLiteral(1, stmt->line, stmt->col);
    } else if (iterable->kind == ExprKind::kCall && iterable->name == "seq") {
      if (iterable->args.size() < 2 || iterable->args.size() > 3) {
        return Err("for: seq requires 2 or 3 arguments");
      }
      stmt->from = std::move(iterable->args[0]);
      stmt->to = std::move(iterable->args[1]);
      stmt->increment = iterable->args.size() == 3
                            ? std::move(iterable->args[2])
                            : MakeIntLiteral(1, stmt->line, stmt->col);
    } else {
      return Err("for: iterable must be a range a:b or seq(...)");
    }
    SYSDS_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')' after iterable"));
    SYSDS_ASSIGN_OR_RETURN(stmt->body, ParseBlock());
    return stmt;
  }

  StatusOr<FunctionParam> ParseTypedParam() {
    // Forms: Matrix[Double] X [= default] | Double x [= default] | x
    FunctionParam p;
    if (!Check(TokenType::kIdentifier)) return Err("expected parameter");
    Token first = Advance();
    if (Check(TokenType::kLBracket)) {
      // Matrix[Double] / Frame[String] / Tensor[...] / List[...]
      std::string dt = first.text;
      Advance();  // '['
      if (!Check(TokenType::kIdentifier)) return Err("expected value type");
      p.value_type = ParseValueType(Advance().text);
      SYSDS_RETURN_IF_ERROR(Expect(TokenType::kRBracket, "']'"));
      if (dt == "Matrix" || dt == "matrix") p.data_type = DataType::kMatrix;
      else if (dt == "Frame" || dt == "frame") p.data_type = DataType::kFrame;
      else if (dt == "Tensor" || dt == "tensor") p.data_type = DataType::kTensor;
      else if (dt == "List" || dt == "list") p.data_type = DataType::kList;
      else return Err("unknown data type '" + dt + "'");
      if (!Check(TokenType::kIdentifier)) return Err("expected parameter name");
      p.name = Advance().text;
    } else if (Check(TokenType::kIdentifier)) {
      // Scalar type followed by name: Double x / Integer n / ...
      p.data_type = DataType::kScalar;
      ValueType vt = ParseValueType(first.text);
      if (vt == ValueType::kUnknown) {
        return Err("unknown scalar type '" + first.text + "'");
      }
      p.value_type = vt;
      p.name = Advance().text;
    } else {
      // Untyped (defaults to scalar double).
      p.data_type = DataType::kScalar;
      p.name = first.text;
    }
    if (Match(TokenType::kAssign)) {
      SYSDS_ASSIGN_OR_RETURN(p.default_value, ParseExpr());
    }
    return p;
  }

  StatusOr<StmtPtr> ParseFunctionDef() {
    auto stmt = std::make_unique<Stmt>();
    stmt->kind = StmtKind::kFunctionDef;
    stmt->line = Peek().line;
    stmt->col = Peek().col;
    stmt->function_name = Advance().text;  // IDENT
    Advance();                             // '='
    Advance();                             // 'function'
    SYSDS_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'(' after function"));
    SkipNewlines();
    if (!Check(TokenType::kRParen)) {
      for (;;) {
        SkipNewlines();
        SYSDS_ASSIGN_OR_RETURN(FunctionParam p, ParseTypedParam());
        stmt->params.push_back(std::move(p));
        SkipNewlines();
        if (Match(TokenType::kComma)) continue;
        break;
      }
    }
    SYSDS_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')' after parameters"));
    SkipNewlines();
    if (Match(TokenType::kReturn)) {
      SYSDS_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'(' after return"));
      SkipNewlines();
      if (!Check(TokenType::kRParen)) {
        for (;;) {
          SkipNewlines();
          SYSDS_ASSIGN_OR_RETURN(FunctionParam p, ParseTypedParam());
          stmt->returns.push_back(std::move(p));
          SkipNewlines();
          if (Match(TokenType::kComma)) continue;
          break;
        }
      }
      SYSDS_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')' after returns"));
    }
    SYSDS_ASSIGN_OR_RETURN(stmt->body, ParseBlock());
    return stmt;
  }

  // ---- Expressions (precedence climbing) ----

  StatusOr<ExprPtr> ParseExpr() { return ParseOr(); }

  StatusOr<ExprPtr> ParseOr() {
    SYSDS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (Check(TokenType::kOr)) {
      Advance();
      SkipNewlines();
      SYSDS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = MakeBinary("|", std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  StatusOr<ExprPtr> ParseAnd() {
    SYSDS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
    while (Check(TokenType::kAnd)) {
      Advance();
      SkipNewlines();
      SYSDS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
      lhs = MakeBinary("&", std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  StatusOr<ExprPtr> ParseNot() {
    if (Check(TokenType::kNot)) {
      Advance();
      SYSDS_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
      return MakeUnary("!", std::move(operand));
    }
    return ParseComparison();
  }

  StatusOr<ExprPtr> ParseComparison() {
    SYSDS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseRange());
    for (;;) {
      std::string op;
      switch (Peek().type) {
        case TokenType::kEq: op = "=="; break;
        case TokenType::kNeq: op = "!="; break;
        case TokenType::kLt: op = "<"; break;
        case TokenType::kLe: op = "<="; break;
        case TokenType::kGt: op = ">"; break;
        case TokenType::kGe: op = ">="; break;
        default: return lhs;
      }
      Advance();
      SkipNewlines();
      SYSDS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseRange());
      lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
    }
  }

  StatusOr<ExprPtr> ParseRange() {
    SYSDS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
    if (Check(TokenType::kColon)) {
      Advance();
      SkipNewlines();
      SYSDS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
      return MakeBinary(":", std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  StatusOr<ExprPtr> ParseAdditive() {
    SYSDS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    for (;;) {
      std::string op;
      if (Check(TokenType::kPlus)) op = "+";
      else if (Check(TokenType::kMinus)) op = "-";
      else return lhs;
      Advance();
      SkipNewlines();
      SYSDS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
      lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
    }
  }

  StatusOr<ExprPtr> ParseMultiplicative() {
    SYSDS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseSpecial());
    for (;;) {
      std::string op;
      if (Check(TokenType::kMul)) op = "*";
      else if (Check(TokenType::kDiv)) op = "/";
      else return lhs;
      Advance();
      SkipNewlines();
      SYSDS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseSpecial());
      lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
    }
  }

  StatusOr<ExprPtr> ParseSpecial() {
    SYSDS_ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    for (;;) {
      std::string op;
      if (Check(TokenType::kMatMul)) op = "%*%";
      else if (Check(TokenType::kModulus)) op = "%%";
      else if (Check(TokenType::kIntDiv)) op = "%/%";
      else return lhs;
      Advance();
      SkipNewlines();
      SYSDS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
    }
  }

  StatusOr<ExprPtr> ParseUnary() {
    if (Check(TokenType::kMinus)) {
      Advance();
      SYSDS_ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
      return MakeUnary("-", std::move(operand));
    }
    if (Check(TokenType::kPlus)) {
      Advance();
      return ParseUnary();
    }
    return ParsePower();
  }

  StatusOr<ExprPtr> ParsePower() {
    SYSDS_ASSIGN_OR_RETURN(ExprPtr lhs, ParsePostfix());
    if (Check(TokenType::kPow)) {
      Advance();
      SkipNewlines();
      // Right-associative; exponent may carry a unary minus (2^-1).
      SYSDS_ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      return MakeBinary("^", std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  StatusOr<ExprPtr> ParsePostfix() {
    SYSDS_ASSIGN_OR_RETURN(ExprPtr e, ParsePrimary());
    for (;;) {
      if (Check(TokenType::kLBracket)) {
        SYSDS_ASSIGN_OR_RETURN(e, ParseIndexSuffix(std::move(e)));
        continue;
      }
      return e;
    }
  }

  StatusOr<ExprPtr> ParseIndexSuffix(ExprPtr target) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kIndex;
    e->line = Peek().line;
    e->col = Peek().col;
    e->target = std::move(target);
    Advance();  // '['
    // Row spec (may be empty for X[, c]).
    if (!Check(TokenType::kComma) && !Check(TokenType::kRBracket)) {
      SYSDS_ASSIGN_OR_RETURN(ExprPtr rows, ParseExpr());
      if (rows->kind == ExprKind::kBinary && rows->name == ":") {
        e->row_lower = std::move(rows->args[0]);
        e->row_upper = std::move(rows->args[1]);
        e->has_row_range = true;
      } else {
        e->row_lower = std::move(rows);
      }
    }
    if (Match(TokenType::kComma)) {
      if (!Check(TokenType::kRBracket)) {
        SYSDS_ASSIGN_OR_RETURN(ExprPtr cols, ParseExpr());
        if (cols->kind == ExprKind::kBinary && cols->name == ":") {
          e->col_lower = std::move(cols->args[0]);
          e->col_upper = std::move(cols->args[1]);
          e->has_col_range = true;
        } else {
          e->col_lower = std::move(cols);
        }
      }
    }
    SYSDS_RETURN_IF_ERROR(Expect(TokenType::kRBracket, "']'"));
    return e;
  }

  StatusOr<ExprPtr> ParsePrimary() {
    const Token& t = Peek();
    switch (t.type) {
      case TokenType::kIntLiteral: {
        Advance();
        return MakeIntLiteral(t.int_value, t.line, t.col);
      }
      case TokenType::kDoubleLiteral: {
        Advance();
        return MakeDoubleLiteral(t.double_value, t.line, t.col);
      }
      case TokenType::kStringLiteral: {
        Advance();
        return MakeStringLiteral(t.text, t.line, t.col);
      }
      case TokenType::kTrue: {
        Advance();
        return MakeBoolLiteral(true, t.line, t.col);
      }
      case TokenType::kFalse: {
        Advance();
        return MakeBoolLiteral(false, t.line, t.col);
      }
      case TokenType::kLParen: {
        Advance();
        SkipNewlines();
        SYSDS_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        SkipNewlines();
        SYSDS_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
        return e;
      }
      case TokenType::kIdentifier: {
        Token ident = Advance();
        if (Check(TokenType::kLParen)) {
          return ParseCall(ident);
        }
        return MakeIdentifier(ident.text, ident.line, ident.col);
      }
      default:
        return Err("expected expression");
    }
  }

  StatusOr<ExprPtr> ParseCall(const Token& name) {
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kCall;
    e->name = name.text;
    e->line = name.line;
    e->col = name.col;
    Advance();  // '('
    SkipNewlines();
    if (!Check(TokenType::kRParen)) {
      for (;;) {
        SkipNewlines();
        std::string arg_name;
        if (Check(TokenType::kIdentifier) &&
            Peek(1).type == TokenType::kAssign) {
          arg_name = Advance().text;
          Advance();  // '='
          SkipNewlines();
        }
        SYSDS_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
        e->args.push_back(std::move(arg));
        e->arg_names.push_back(arg_name);
        SkipNewlines();
        if (Match(TokenType::kComma)) continue;
        break;
      }
    }
    SYSDS_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')' after arguments"));
    return e;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<DMLProgram> ParseDML(const std::string& source) {
  SYSDS_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  return Parser(std::move(tokens)).ParseProgram();
}

}  // namespace sysds
