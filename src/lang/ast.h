#ifndef SYSDS_LANG_AST_H_
#define SYSDS_LANG_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "common/types.h"

namespace sysds {

// Abstract syntax tree of a DML script. Expressions and statements are
// plain tagged nodes (a compiler-internal IR; HOP DAGs are built from it).

enum class ExprKind {
  kIntLiteral,
  kDoubleLiteral,
  kStringLiteral,
  kBoolLiteral,
  kIdentifier,
  kBinary,    // op in {+,-,*,/,^,%%,%/%,%*%,==,!=,<,<=,>,>=,&,|}
  kUnary,     // op in {-,!}
  kCall,      // builtin or user function call, named or positional args
  kIndex,     // X[rows, cols] with optional range bounds
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

struct Expr {
  ExprKind kind;
  int line = 0;
  int col = 0;

  // Literals.
  int64_t int_value = 0;
  double double_value = 0.0;
  std::string string_value;
  bool bool_value = false;

  // kIdentifier: name; kBinary/kUnary: operator text; kCall: function name.
  std::string name;

  // kBinary: [lhs, rhs]; kUnary: [operand]; kCall: arguments.
  std::vector<ExprPtr> args;
  // Parallel to args for kCall: the parameter name, or "" if positional.
  std::vector<std::string> arg_names;

  // kIndex: the indexed expression plus optional bounds. Bounds semantics:
  //   X[i, j]     -> row_lower=i, col_lower=j (no uppers)
  //   X[a:b, ]    -> row_lower=a, row_upper=b, cols absent (all)
  //   X[, c]      -> rows absent, col_lower=c
  ExprPtr target;
  ExprPtr row_lower, row_upper, col_lower, col_upper;
  bool has_row_range = false;  // a ':' was present in the row position
  bool has_col_range = false;
};

ExprPtr MakeIntLiteral(int64_t v, int line, int col);
ExprPtr MakeDoubleLiteral(double v, int line, int col);
ExprPtr MakeStringLiteral(std::string v, int line, int col);
ExprPtr MakeBoolLiteral(bool v, int line, int col);
ExprPtr MakeIdentifier(std::string name, int line, int col);
ExprPtr MakeBinary(std::string op, ExprPtr lhs, ExprPtr rhs);
ExprPtr MakeUnary(std::string op, ExprPtr operand);
ExprPtr CloneExpr(const Expr& e);

enum class StmtKind {
  kAssign,       // lhs (plain or indexed, possibly multiple) = expr
  kIf,
  kWhile,
  kFor,          // also parfor
  kFunctionDef,
  kExpression,   // bare call statement, e.g. print(...) / write(...)
};

struct Stmt;
using StmtPtr = std::unique_ptr<Stmt>;

/// One assignment target: a variable, optionally with an index pattern for
/// left indexing (X[1:3, 2] = ...).
struct AssignTarget {
  std::string name;
  ExprPtr index;  // kIndex expr whose target is the variable, or null
};

/// Typed function parameter (DML: `Matrix[Double] X`, `Double reg = 1e-3`).
struct FunctionParam {
  std::string name;
  DataType data_type = DataType::kScalar;
  ValueType value_type = ValueType::kFP64;
  ExprPtr default_value;  // null if required
};

struct Stmt {
  StmtKind kind;
  int line = 0;
  int col = 0;

  // kAssign.
  std::vector<AssignTarget> targets;
  ExprPtr rhs;

  // kIf / kWhile: predicate + branches (body reused for while/for).
  ExprPtr predicate;
  std::vector<StmtPtr> body;
  std::vector<StmtPtr> else_body;

  // kFor / parfor.
  std::string loop_var;
  ExprPtr from, to, increment;
  bool is_parfor = false;

  // kFunctionDef.
  std::string function_name;
  std::vector<FunctionParam> params;
  std::vector<FunctionParam> returns;

  // kExpression.
  ExprPtr expr;
};

/// A parsed script: top-level statements plus named function definitions
/// (hoisted by the parser).
struct DMLProgram {
  std::vector<StmtPtr> statements;
  std::vector<StmtPtr> functions;  // all kFunctionDef
};

}  // namespace sysds

#endif  // SYSDS_LANG_AST_H_
