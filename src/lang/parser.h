#ifndef SYSDS_LANG_PARSER_H_
#define SYSDS_LANG_PARSER_H_

#include <string>

#include "common/status.h"
#include "lang/ast.h"

namespace sysds {

/// Parses a DML script into a program AST. Errors carry line/column.
StatusOr<DMLProgram> ParseDML(const std::string& source);

}  // namespace sysds

#endif  // SYSDS_LANG_PARSER_H_
