#ifndef SYSDS_LANG_TOKEN_H_
#define SYSDS_LANG_TOKEN_H_

#include <cstdint>
#include <string>

namespace sysds {

enum class TokenType {
  kEof,
  kNewline,     // statement separator at top-level nesting
  kIdentifier,
  kIntLiteral,
  kDoubleLiteral,
  kStringLiteral,
  kTrue,
  kFalse,
  // Keywords.
  kIf,
  kElse,
  kWhile,
  kFor,
  kParFor,
  kIn,
  kFunction,
  kReturn,
  // Punctuation.
  kLParen,
  kRParen,
  kLBracket,
  kRBracket,
  kLBrace,
  kRBrace,
  kComma,
  kSemicolon,
  kColon,
  kAssign,       // =
  kLeftArrow,    // <- (R-style assignment)
  // Operators.
  kPlus,
  kMinus,
  kMul,
  kDiv,
  kPow,          // ^
  kMatMul,       // %*%
  kModulus,      // %%
  kIntDiv,       // %/%
  kEq,           // ==
  kNeq,          // !=
  kLt,
  kLe,
  kGt,
  kGe,
  kAnd,          // & or &&
  kOr,           // | or ||
  kNot,          // !
};

struct Token {
  TokenType type = TokenType::kEof;
  std::string text;
  int64_t int_value = 0;
  double double_value = 0.0;
  int line = 0;
  int col = 0;
};

const char* TokenTypeName(TokenType t);

}  // namespace sysds

#endif  // SYSDS_LANG_TOKEN_H_
