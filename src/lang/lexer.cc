#include "lang/lexer.h"

#include <cctype>
#include <cstdlib>
#include <map>

namespace sysds {

const char* TokenTypeName(TokenType t) {
  switch (t) {
    case TokenType::kEof: return "<eof>";
    case TokenType::kNewline: return "<newline>";
    case TokenType::kIdentifier: return "identifier";
    case TokenType::kIntLiteral: return "int literal";
    case TokenType::kDoubleLiteral: return "double literal";
    case TokenType::kStringLiteral: return "string literal";
    case TokenType::kTrue: return "TRUE";
    case TokenType::kFalse: return "FALSE";
    case TokenType::kIf: return "if";
    case TokenType::kElse: return "else";
    case TokenType::kWhile: return "while";
    case TokenType::kFor: return "for";
    case TokenType::kParFor: return "parfor";
    case TokenType::kIn: return "in";
    case TokenType::kFunction: return "function";
    case TokenType::kReturn: return "return";
    case TokenType::kLParen: return "(";
    case TokenType::kRParen: return ")";
    case TokenType::kLBracket: return "[";
    case TokenType::kRBracket: return "]";
    case TokenType::kLBrace: return "{";
    case TokenType::kRBrace: return "}";
    case TokenType::kComma: return ",";
    case TokenType::kSemicolon: return ";";
    case TokenType::kColon: return ":";
    case TokenType::kAssign: return "=";
    case TokenType::kLeftArrow: return "<-";
    case TokenType::kPlus: return "+";
    case TokenType::kMinus: return "-";
    case TokenType::kMul: return "*";
    case TokenType::kDiv: return "/";
    case TokenType::kPow: return "^";
    case TokenType::kMatMul: return "%*%";
    case TokenType::kModulus: return "%%";
    case TokenType::kIntDiv: return "%/%";
    case TokenType::kEq: return "==";
    case TokenType::kNeq: return "!=";
    case TokenType::kLt: return "<";
    case TokenType::kLe: return "<=";
    case TokenType::kGt: return ">";
    case TokenType::kGe: return ">=";
    case TokenType::kAnd: return "&";
    case TokenType::kOr: return "|";
    case TokenType::kNot: return "!";
  }
  return "?";
}

namespace {

const std::map<std::string, TokenType>& Keywords() {
  static const auto* kw = new std::map<std::string, TokenType>{
      {"if", TokenType::kIf},         {"else", TokenType::kElse},
      {"while", TokenType::kWhile},   {"for", TokenType::kFor},
      {"parfor", TokenType::kParFor}, {"in", TokenType::kIn},
      {"function", TokenType::kFunction},
      {"return", TokenType::kReturn}, {"TRUE", TokenType::kTrue},
      {"FALSE", TokenType::kFalse},   {"True", TokenType::kTrue},
      {"False", TokenType::kFalse},
  };
  return *kw;
}

}  // namespace

StatusOr<std::vector<Token>> Tokenize(const std::string& src) {
  std::vector<Token> tokens;
  int line = 1, col = 1;
  size_t i = 0;
  int depth = 0;  // () and [] nesting; newlines inside are insignificant

  auto make = [&](TokenType t, const std::string& text) {
    Token tok;
    tok.type = t;
    tok.text = text;
    tok.line = line;
    tok.col = col;
    return tok;
  };
  auto err = [&](const std::string& msg) {
    return ParseError(msg + " at line " + std::to_string(line) + ":" +
                      std::to_string(col));
  };

  while (i < src.size()) {
    char c = src[i];
    if (c == '\n') {
      if (depth == 0) {
        // Collapse runs of newlines; also suppress after binary operators
        // or a separator so expressions/lists can wrap lines.
        bool suppress = tokens.empty();
        if (!tokens.empty()) {
          TokenType last = tokens.back().type;
          switch (last) {
            case TokenType::kNewline:
            case TokenType::kPlus: case TokenType::kMinus:
            case TokenType::kMul: case TokenType::kDiv:
            case TokenType::kPow: case TokenType::kMatMul:
            case TokenType::kModulus: case TokenType::kIntDiv:
            case TokenType::kEq: case TokenType::kNeq:
            case TokenType::kLt: case TokenType::kLe:
            case TokenType::kGt: case TokenType::kGe:
            case TokenType::kAnd: case TokenType::kOr:
            case TokenType::kAssign: case TokenType::kLeftArrow:
            case TokenType::kComma: case TokenType::kLBrace:
            case TokenType::kSemicolon:
              suppress = true;
              break;
            default:
              break;
          }
        }
        if (!suppress) tokens.push_back(make(TokenType::kNewline, "\n"));
      }
      ++i;
      ++line;
      col = 1;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r') {
      ++i;
      ++col;
      continue;
    }
    if (c == '#') {
      while (i < src.size() && src[i] != '\n') ++i;
      continue;
    }
    int start_col = col;
    auto push = [&](TokenType t, const std::string& text, size_t len) {
      Token tok;
      tok.type = t;
      tok.text = text;
      tok.line = line;
      tok.col = start_col;
      tokens.push_back(tok);
      i += len;
      col += static_cast<int>(len);
    };

    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < src.size() &&
         std::isdigit(static_cast<unsigned char>(src[i + 1])))) {
      size_t j = i;
      bool is_double = false;
      while (j < src.size() &&
             (std::isdigit(static_cast<unsigned char>(src[j])) ||
              src[j] == '.' || src[j] == 'e' || src[j] == 'E' ||
              ((src[j] == '+' || src[j] == '-') && j > i &&
               (src[j - 1] == 'e' || src[j - 1] == 'E')))) {
        if (src[j] == '.' || src[j] == 'e' || src[j] == 'E') is_double = true;
        ++j;
      }
      std::string text = src.substr(i, j - i);
      Token tok;
      tok.line = line;
      tok.col = start_col;
      tok.text = text;
      if (is_double) {
        tok.type = TokenType::kDoubleLiteral;
        tok.double_value = std::strtod(text.c_str(), nullptr);
      } else {
        tok.type = TokenType::kIntLiteral;
        tok.int_value = std::strtoll(text.c_str(), nullptr, 10);
        tok.double_value = static_cast<double>(tok.int_value);
      }
      tokens.push_back(tok);
      col += static_cast<int>(j - i);
      i = j;
      continue;
    }

    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < src.size() &&
             (std::isalnum(static_cast<unsigned char>(src[j])) ||
              src[j] == '_' || src[j] == '.')) {
        ++j;
      }
      std::string text = src.substr(i, j - i);
      auto it = Keywords().find(text);
      Token tok;
      tok.line = line;
      tok.col = start_col;
      tok.text = text;
      tok.type =
          it != Keywords().end() ? it->second : TokenType::kIdentifier;
      tokens.push_back(tok);
      col += static_cast<int>(j - i);
      i = j;
      continue;
    }

    if (c == '"' || c == '\'') {
      char quote = c;
      size_t j = i + 1;
      std::string text;
      while (j < src.size() && src[j] != quote) {
        if (src[j] == '\\' && j + 1 < src.size()) {
          char e = src[j + 1];
          switch (e) {
            case 'n': text += '\n'; break;
            case 't': text += '\t'; break;
            case '"': text += '"'; break;
            case '\'': text += '\''; break;
            case '\\': text += '\\'; break;
            default: text += e;
          }
          j += 2;
        } else {
          if (src[j] == '\n') { ++line; }
          text += src[j++];
        }
      }
      if (j >= src.size()) return err("unterminated string literal");
      Token tok;
      tok.line = line;
      tok.col = start_col;
      tok.type = TokenType::kStringLiteral;
      tok.text = text;
      tokens.push_back(tok);
      col += static_cast<int>(j + 1 - i);
      i = j + 1;
      continue;
    }

    switch (c) {
      case '(': ++depth; push(TokenType::kLParen, "(", 1); break;
      case ')': --depth; push(TokenType::kRParen, ")", 1); break;
      case '[': ++depth; push(TokenType::kLBracket, "[", 1); break;
      case ']': --depth; push(TokenType::kRBracket, "]", 1); break;
      case '{': push(TokenType::kLBrace, "{", 1); break;
      case '}': push(TokenType::kRBrace, "}", 1); break;
      case ',': push(TokenType::kComma, ",", 1); break;
      case ';': push(TokenType::kSemicolon, ";", 1); break;
      case ':': push(TokenType::kColon, ":", 1); break;
      case '+': push(TokenType::kPlus, "+", 1); break;
      case '-': push(TokenType::kMinus, "-", 1); break;
      case '*': push(TokenType::kMul, "*", 1); break;
      case '/': push(TokenType::kDiv, "/", 1); break;
      case '^': push(TokenType::kPow, "^", 1); break;
      case '%':
        if (src.compare(i, 3, "%*%") == 0) {
          push(TokenType::kMatMul, "%*%", 3);
        } else if (src.compare(i, 3, "%/%") == 0) {
          push(TokenType::kIntDiv, "%/%", 3);
        } else if (src.compare(i, 2, "%%") == 0) {
          push(TokenType::kModulus, "%%", 2);
        } else {
          return err("unexpected '%'");
        }
        break;
      case '=':
        if (src.compare(i, 2, "==") == 0) {
          push(TokenType::kEq, "==", 2);
        } else {
          push(TokenType::kAssign, "=", 1);
        }
        break;
      case '!':
        if (src.compare(i, 2, "!=") == 0) {
          push(TokenType::kNeq, "!=", 2);
        } else {
          push(TokenType::kNot, "!", 1);
        }
        break;
      case '<':
        if (src.compare(i, 2, "<=") == 0) {
          push(TokenType::kLe, "<=", 2);
        } else if (src.compare(i, 2, "<-") == 0) {
          push(TokenType::kLeftArrow, "<-", 2);
        } else {
          push(TokenType::kLt, "<", 1);
        }
        break;
      case '>':
        if (src.compare(i, 2, ">=") == 0) {
          push(TokenType::kGe, ">=", 2);
        } else {
          push(TokenType::kGt, ">", 1);
        }
        break;
      case '&':
        push(TokenType::kAnd, "&", src.compare(i, 2, "&&") == 0 ? 2 : 1);
        break;
      case '|':
        push(TokenType::kOr, "|", src.compare(i, 2, "||") == 0 ? 2 : 1);
        break;
      default:
        return err(std::string("unexpected character '") + c + "'");
    }
  }
  tokens.push_back(make(TokenType::kEof, ""));
  return tokens;
}

}  // namespace sysds
