#include "api/systemds_context.h"

#include <fstream>
#include <sstream>

#include "compiler/compiler.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace sysds {

StatusOr<MatrixBlock> ScriptResult::GetMatrix(const std::string& name) const {
  auto it = values_.find(name);
  if (it == values_.end()) return NotFound("output '" + name + "' not found");
  SYSDS_ASSIGN_OR_RETURN(MatrixObject * m, AsMatrix(it->second, name));
  MatrixBlock copy = m->AcquireRead();
  m->Release();
  return copy;
}

StatusOr<double> ScriptResult::GetDouble(const std::string& name) const {
  auto it = values_.find(name);
  if (it == values_.end()) return NotFound("output '" + name + "' not found");
  SYSDS_ASSIGN_OR_RETURN(ScalarObject * s, AsScalar(it->second, name));
  return s->AsDouble();
}

StatusOr<std::string> ScriptResult::GetString(const std::string& name) const {
  auto it = values_.find(name);
  if (it == values_.end()) return NotFound("output '" + name + "' not found");
  SYSDS_ASSIGN_OR_RETURN(ScalarObject * s, AsScalar(it->second, name));
  return s->AsString();
}

StatusOr<std::string> ScriptResult::GetLineage(const std::string& name) const {
  auto it = lineage_.find(name);
  if (it == lineage_.end()) {
    return NotFound("no lineage for '" + name +
                    "' (enable lineage_tracing or reuse)");
  }
  return it->second;
}

StatusOr<FrameBlock> ScriptResult::GetFrame(const std::string& name) const {
  auto it = values_.find(name);
  if (it == values_.end()) return NotFound("output '" + name + "' not found");
  SYSDS_ASSIGN_OR_RETURN(FrameObject * f, AsFrame(it->second, name));
  return f->Frame();
}

namespace {

SymbolInfo InfoOf(const DataPtr& d) {
  SymbolInfo info;
  if (auto* m = dynamic_cast<MatrixObject*>(d.get())) {
    info.dt = DataType::kMatrix;
    info.vt = ValueType::kFP64;
    info.dim1 = m->Rows();
    info.dim2 = m->Cols();
    info.nnz = m->NonZeros();
  } else if (auto* f = dynamic_cast<FrameObject*>(d.get())) {
    info.dt = DataType::kFrame;
    info.vt = ValueType::kString;
    info.dim1 = f->Frame().Rows();
    info.dim2 = f->Frame().Cols();
  } else if (auto* s = dynamic_cast<ScalarObject*>(d.get())) {
    info.dt = DataType::kScalar;
    info.vt = s->GetValueType();
    info.dim1 = 0;
    info.dim2 = 0;
  }
  return info;
}

StatusOr<ScriptResult> RunProgram(Program* program, const DMLConfig* config,
                                  LineageCache* cache, BufferPool* pool,
                                  const std::map<std::string, DataPtr>& inputs,
                                  const std::vector<std::string>& outputs) {
  MatrixObject::SetBufferPool(pool);
  ExecutionContext ec(program, config);
  ec.SetCache(cache);
  std::ostringstream out;
  ec.SetOut(&out);
  for (const auto& [name, value] : inputs) {
    ec.Vars().Set(name, value);
  }
  SYSDS_RETURN_IF_ERROR(program->Execute(&ec));
  ScriptResult result;
  for (const std::string& name : outputs) {
    SYSDS_ASSIGN_OR_RETURN(DataPtr d, ec.Vars().Get(name));
    result.SetValue(name, std::move(d));
    if (ec.TracingEnabled()) {
      LineageItemPtr item = ec.Lineage()->GetOrNull(name);
      if (item != nullptr) result.SetLineageText(name, item->Serialize());
    }
  }
  result.SetOutputText(out.str());
  return result;
}

}  // namespace

SystemDSContext::SystemDSContext() : SystemDSContext(DMLConfig()) {}

SystemDSContext::SystemDSContext(DMLConfig config) : config_(config) {
  pool_ = std::make_unique<BufferPool>(config_.buffer_pool_limit);
  cache_ = std::make_unique<LineageCache>(config_.lineage_cache_limit,
                                          config_.reuse_policy);
  MatrixObject::SetBufferPool(pool_.get());
}

SystemDSContext::~SystemDSContext() {
  FlushObservability();  // best-effort; failures only matter on explicit calls
  MatrixObject::SetBufferPool(nullptr);
}

void SystemDSContext::EnableTracing(const std::string& path) {
  trace_path_ = path;
  obs::Tracer::Get().Enable();
}

void SystemDSContext::EnableMetricsExport(const std::string& path) {
  metrics_path_ = path;
}

Status SystemDSContext::FlushObservability() {
  if (!trace_path_.empty()) {
    obs::Tracer::Get().Disable();
    std::string path;
    std::swap(path, trace_path_);
    SYSDS_RETURN_IF_ERROR(obs::Tracer::Get().WriteChromeTrace(path));
  }
  if (!metrics_path_.empty()) {
    std::string path;
    std::swap(path, metrics_path_);
    std::ofstream out(path);
    if (!out) return IoError("cannot open metrics output file: " + path);
    out << obs::MetricsRegistry::Get().ExportJson() << "\n";
    if (!out) return IoError("failed writing metrics output file: " + path);
  }
  return Status::Ok();
}

DataPtr SystemDSContext::Matrix(MatrixBlock m) {
  return std::make_shared<MatrixObject>(std::move(m));
}
DataPtr SystemDSContext::Frame(FrameBlock f) {
  return std::make_shared<FrameObject>(std::move(f));
}
DataPtr SystemDSContext::Scalar(double v) {
  return ScalarObject::MakeDouble(v);
}
DataPtr SystemDSContext::ScalarInt(int64_t v) {
  return ScalarObject::MakeInt(v);
}
DataPtr SystemDSContext::ScalarString(std::string v) {
  return ScalarObject::MakeString(std::move(v));
}
DataPtr SystemDSContext::ScalarBool(bool v) {
  return ScalarObject::MakeBool(v);
}

StatusOr<ScriptResult> SystemDSContext::Execute(
    const std::string& script, const std::map<std::string, DataPtr>& inputs,
    const std::vector<std::string>& outputs) {
  // The lineage cache holds values from prior executions; its policy is
  // refreshed from the current config (benchmarks toggle reuse).
  if (cache_->policy() != config_.reuse_policy) {
    cache_ = std::make_unique<LineageCache>(config_.lineage_cache_limit,
                                            config_.reuse_policy);
  }
  SymbolInfoMap infos;
  for (const auto& [name, value] : inputs) infos[name] = InfoOf(value);
  SYSDS_ASSIGN_OR_RETURN(std::unique_ptr<Program> program,
                         CompileDML(script, config_, infos));
  return RunProgram(program.get(), &config_, cache_.get(), pool_.get(),
                    inputs, outputs);
}

StatusOr<std::unique_ptr<PreparedScript>> SystemDSContext::Prepare(
    const std::string& script,
    const std::map<std::string, SymbolInfo>& input_infos) {
  SYSDS_ASSIGN_OR_RETURN(std::unique_ptr<Program> program,
                         CompileDML(script, config_, input_infos));
  auto prepared = std::make_unique<PreparedScript>();
  prepared->program_ = std::move(program);
  prepared->config_ = &config_;
  prepared->cache_ = cache_.get();
  prepared->pool_ = pool_.get();
  return prepared;
}

StatusOr<std::string> SystemDSContext::Explain(
    const std::string& script,
    const std::map<std::string, SymbolInfo>& input_infos) {
  SYSDS_ASSIGN_OR_RETURN(std::unique_ptr<Program> program,
                         CompileDML(script, config_, input_infos));
  return program->Explain();
}

void PreparedScript::BindMatrix(const std::string& name, MatrixBlock value) {
  bindings_[name] = std::make_shared<MatrixObject>(std::move(value));
}
void PreparedScript::BindFrame(const std::string& name, FrameBlock value) {
  bindings_[name] = std::make_shared<FrameObject>(std::move(value));
}
void PreparedScript::BindDouble(const std::string& name, double value) {
  bindings_[name] = ScalarObject::MakeDouble(value);
}
void PreparedScript::BindInt(const std::string& name, int64_t value) {
  bindings_[name] = ScalarObject::MakeInt(value);
}
void PreparedScript::BindBool(const std::string& name, bool value) {
  bindings_[name] = ScalarObject::MakeBool(value);
}
void PreparedScript::BindString(const std::string& name, std::string value) {
  bindings_[name] = ScalarObject::MakeString(std::move(value));
}

StatusOr<ScriptResult> PreparedScript::Execute(
    const std::vector<std::string>& outputs) {
  return RunProgram(program_.get(), config_, cache_, pool_, bindings_,
                    outputs);
}

}  // namespace sysds
