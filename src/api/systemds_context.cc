#include "api/systemds_context.h"

#include <fstream>
#include <sstream>

#include "common/util.h"
#include "compiler/compiler.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/recovery/checkpoint_manager.h"

namespace sysds {

StatusOr<MatrixBlock> ScriptResult::GetMatrix(const std::string& name) const {
  auto it = values_.find(name);
  if (it == values_.end()) return NotFound("output '" + name + "' not found");
  SYSDS_ASSIGN_OR_RETURN(MatrixObject * m, AsMatrix(it->second, name));
  SYSDS_ASSIGN_OR_RETURN(const MatrixBlock* blk, m->AcquireRead());
  MatrixBlock copy = *blk;
  m->Release();
  return copy;
}

StatusOr<double> ScriptResult::GetDouble(const std::string& name) const {
  auto it = values_.find(name);
  if (it == values_.end()) return NotFound("output '" + name + "' not found");
  SYSDS_ASSIGN_OR_RETURN(ScalarObject * s, AsScalar(it->second, name));
  return s->AsDouble();
}

StatusOr<std::string> ScriptResult::GetString(const std::string& name) const {
  auto it = values_.find(name);
  if (it == values_.end()) return NotFound("output '" + name + "' not found");
  SYSDS_ASSIGN_OR_RETURN(ScalarObject * s, AsScalar(it->second, name));
  return s->AsString();
}

StatusOr<std::string> ScriptResult::GetLineage(const std::string& name) const {
  auto it = lineage_.find(name);
  if (it == lineage_.end()) {
    return NotFound("no lineage for '" + name +
                    "' (enable lineage_tracing or reuse)");
  }
  return it->second;
}

StatusOr<FrameBlock> ScriptResult::GetFrame(const std::string& name) const {
  auto it = values_.find(name);
  if (it == values_.end()) return NotFound("output '" + name + "' not found");
  SYSDS_ASSIGN_OR_RETURN(FrameObject * f, AsFrame(it->second, name));
  return f->Frame();
}

Inputs& Inputs::Matrix(const std::string& name, MatrixBlock value) {
  bindings_[name] = std::make_shared<MatrixObject>(std::move(value));
  return *this;
}
Inputs& Inputs::Frame(const std::string& name, FrameBlock value) {
  bindings_[name] = std::make_shared<FrameObject>(std::move(value));
  return *this;
}
Inputs& Inputs::Scalar(const std::string& name, double value) {
  bindings_[name] = ScalarObject::MakeDouble(value);
  return *this;
}
Inputs& Inputs::Integer(const std::string& name, int64_t value) {
  bindings_[name] = ScalarObject::MakeInt(value);
  return *this;
}
Inputs& Inputs::Boolean(const std::string& name, bool value) {
  bindings_[name] = ScalarObject::MakeBool(value);
  return *this;
}
Inputs& Inputs::String(const std::string& name, std::string value) {
  bindings_[name] = ScalarObject::MakeString(std::move(value));
  return *this;
}
Inputs& Inputs::Bind(const std::string& name, DataPtr value) {
  bindings_[name] = std::move(value);
  return *this;
}

namespace {

SymbolInfo InfoOf(const DataPtr& d) {
  SymbolInfo info;
  if (auto* m = dynamic_cast<MatrixObject*>(d.get())) {
    info.dt = DataType::kMatrix;
    info.vt = ValueType::kFP64;
    info.dim1 = m->Rows();
    info.dim2 = m->Cols();
    info.nnz = m->NonZeros();
  } else if (auto* f = dynamic_cast<FrameObject*>(d.get())) {
    info.dt = DataType::kFrame;
    info.vt = ValueType::kString;
    info.dim1 = f->Frame().Rows();
    info.dim2 = f->Frame().Cols();
  } else if (auto* s = dynamic_cast<ScalarObject*>(d.get())) {
    info.dt = DataType::kScalar;
    info.vt = s->GetValueType();
    info.dim1 = 0;
    info.dim2 = 0;
  }
  return info;
}

struct RunOptions {
  bool allow_recompile = true;
  std::optional<std::chrono::steady_clock::time_point> deadline;
  std::shared_ptr<CancellationToken> cancel;
};

StatusOr<ScriptResult> RunProgram(Program* program, const DMLConfig* config,
                                  LineageCache* cache, BufferPool* pool,
                                  const std::map<std::string, DataPtr>& inputs,
                                  const std::vector<std::string>& outputs,
                                  const RunOptions& run = {}) {
  MatrixObject::SetBufferPool(pool);
  ExecutionContext ec(program, config);
  ec.SetCache(cache);
  ec.SetRecompileAllowed(run.allow_recompile);
  if (run.deadline.has_value()) {
    // Fail fast if the deadline already passed before any work.
    if (std::chrono::steady_clock::now() >= *run.deadline) {
      return TimeoutError("request deadline expired before execution");
    }
    ec.SetDeadline(*run.deadline);
  }
  if (run.cancel != nullptr) {
    if (run.cancel->Cancelled()) {
      return CancelledError("request cancelled before execution");
    }
    ec.SetCancelToken(run.cancel);
  }
  std::ostringstream out;
  ec.SetOut(&out);
  // Checkpoint/restart: one manager per run, bound to the root context only
  // (children never checkpoint). The program identity hash versions the
  // checkpoint state: a manifest from a different program is rejected.
  std::unique_ptr<CheckpointManager> checkpoints;
  if (!config->checkpoint_dir.empty()) {
    CheckpointManager::Options opts;
    opts.dir = config->checkpoint_dir;
    opts.interval = config->checkpoint_interval;
    opts.cost_factor = config->checkpoint_cost_factor;
    opts.resume = config->checkpoint_resume;
    checkpoints = std::make_unique<CheckpointManager>(
        std::move(opts), ProgramIdentityHash(program->Explain()));
    SYSDS_RETURN_IF_ERROR(checkpoints->PrepareResume());
    ec.SetCheckpoints(checkpoints.get());
  }
  for (const auto& [name, value] : inputs) {
    ec.Vars().Set(name, value);
  }
  if (ec.TracingEnabled()) {
    // Trace bound inputs by value identity, not variable name: with a
    // reuse cache shared across executions (PreparedScript, serving), a
    // name-only leaf would alias different inputs bound to the same name
    // and serve one request's cached intermediates for another's data.
    // Scalars trace their value (equal scalars legitimately reuse);
    // matrices and frames trace the process-unique object id, so reuse
    // happens exactly when callers share the same in-memory object.
    for (const auto& [name, value] : inputs) {
      if (auto* s = dynamic_cast<ScalarObject*>(value.get())) {
        ec.Lineage()->Set(
            name, LineageItem::Leaf("in", ValueTypeName(s->GetValueType()) +
                                              (":" + s->AsString())));
      } else {
        ec.Lineage()->Set(name, LineageItem::Leaf(
                                    "in", "obj" + std::to_string(
                                                      value->ObjectId())));
      }
    }
  }
  SYSDS_RETURN_IF_ERROR(program->Execute(&ec));
  ScriptResult result;
  for (const std::string& name : outputs) {
    SYSDS_ASSIGN_OR_RETURN(DataPtr d, ec.Vars().Get(name));
    result.SetValue(name, std::move(d));
    if (ec.TracingEnabled()) {
      LineageItemPtr item = ec.Lineage()->GetOrNull(name);
      if (item != nullptr) result.SetLineageText(name, item->Serialize());
    }
  }
  result.SetOutputText(out.str());
  return result;
}

}  // namespace

SystemDSContext::Builder& SystemDSContext::Builder::WithConfig(
    DMLConfig config) {
  config_ = config;
  return *this;
}
SystemDSContext::Builder& SystemDSContext::Builder::NumThreads(int n) {
  config_.num_threads = n;
  return *this;
}
SystemDSContext::Builder& SystemDSContext::Builder::CpMemoryBudget(
    int64_t bytes) {
  config_.cp_memory_budget = bytes;
  return *this;
}
SystemDSContext::Builder& SystemDSContext::Builder::BufferPoolLimit(
    int64_t bytes) {
  config_.buffer_pool_limit = bytes;
  return *this;
}
SystemDSContext::Builder& SystemDSContext::Builder::BufferPoolWriteBehind(
    bool on) {
  config_.buffer_pool_write_behind = on;
  return *this;
}
SystemDSContext::Builder& SystemDSContext::Builder::BufferPoolPrefetch(
    bool on) {
  config_.buffer_pool_prefetch = on;
  return *this;
}
SystemDSContext::Builder& SystemDSContext::Builder::BlockSize(int64_t rows) {
  config_.block_size = rows;
  return *this;
}
SystemDSContext::Builder& SystemDSContext::Builder::LineageTracing(bool on) {
  config_.lineage_tracing = on;
  return *this;
}
SystemDSContext::Builder& SystemDSContext::Builder::Reuse(ReusePolicy policy) {
  config_.reuse_policy = policy;
  return *this;
}
SystemDSContext::Builder& SystemDSContext::Builder::LineageCacheLimit(
    int64_t bytes) {
  config_.lineage_cache_limit = bytes;
  return *this;
}
SystemDSContext::Builder& SystemDSContext::Builder::LineageDedup(bool on) {
  config_.lineage_dedup = on;
  return *this;
}
SystemDSContext::Builder& SystemDSContext::Builder::DynamicRecompilation(
    bool on) {
  config_.dynamic_recompilation = on;
  return *this;
}
SystemDSContext::Builder& SystemDSContext::Builder::Fusion(bool on) {
  config_.fusion_enabled = on;
  return *this;
}
SystemDSContext::Builder& SystemDSContext::Builder::FusionThreshold(
    int64_t bytes) {
  config_.fusion_min_intermediate_bytes = bytes;
  return *this;
}
SystemDSContext::Builder& SystemDSContext::Builder::Compression(bool on) {
  config_.compression_enabled = on;
  return *this;
}
SystemDSContext::Builder& SystemDSContext::Builder::CompressionMinRatio(
    double ratio) {
  config_.compression_min_ratio = ratio;
  return *this;
}
SystemDSContext::Builder& SystemDSContext::Builder::CompressionMinSize(
    int64_t bytes) {
  config_.compression_min_size_bytes = bytes;
  return *this;
}
SystemDSContext::Builder& SystemDSContext::Builder::TransformThreads(int n) {
  config_.transform_num_threads = n;
  return *this;
}
SystemDSContext::Builder& SystemDSContext::Builder::TransformOutput(
    TransformOutputFormat format) {
  config_.transform_output = format;
  return *this;
}
SystemDSContext::Builder& SystemDSContext::Builder::Statistics(bool on) {
  config_.statistics = on;
  return *this;
}
SystemDSContext::Builder& SystemDSContext::Builder::EnableTracing(
    std::string path) {
  trace_path_ = std::move(path);
  return *this;
}
SystemDSContext::Builder& SystemDSContext::Builder::EnableMetricsExport(
    std::string path) {
  metrics_path_ = std::move(path);
  return *this;
}
SystemDSContext::Builder& SystemDSContext::Builder::Chaos(FaultConfig faults) {
  config_.faults = std::move(faults);
  return *this;
}
SystemDSContext::Builder& SystemDSContext::Builder::ChaosSeed(uint64_t seed) {
  config_.faults.enabled = true;
  config_.faults.seed = seed;
  config_.faults.profile = FaultProfile::Standard();
  return *this;
}
SystemDSContext::Builder& SystemDSContext::Builder::Checkpointing(
    std::string dir, int64_t interval) {
  config_.checkpoint_dir = std::move(dir);
  config_.checkpoint_interval = interval;
  return *this;
}
SystemDSContext::Builder& SystemDSContext::Builder::CheckpointCostFactor(
    double factor) {
  config_.checkpoint_cost_factor = factor;
  return *this;
}
SystemDSContext::Builder& SystemDSContext::Builder::Resume(bool on) {
  config_.checkpoint_resume = on;
  return *this;
}

std::unique_ptr<SystemDSContext> SystemDSContext::Builder::Build() const {
  auto ctx = std::make_unique<SystemDSContext>(config_);
  if (!trace_path_.empty()) ctx->EnableTracing(trace_path_);
  if (!metrics_path_.empty()) ctx->EnableMetricsExport(metrics_path_);
  return ctx;
}

SystemDSContext::SystemDSContext() : SystemDSContext(DMLConfig()) {}

SystemDSContext::SystemDSContext(DMLConfig config)
    : config_(std::make_shared<DMLConfig>(config)) {
  BufferPool::Options pool_options;
  pool_options.limit_bytes = config_->buffer_pool_limit;
  pool_options.write_behind = config_->buffer_pool_write_behind;
  pool_options.prefetch = config_->buffer_pool_prefetch;
  pool_ = std::make_shared<BufferPool>(pool_options);
  cache_ = std::make_shared<LineageCache>(config_->lineage_cache_limit,
                                          config_->reuse_policy);
  MatrixObject::SetBufferPool(pool_.get());
  if (config_->faults.enabled) {
    FaultInjector::Get().Configure(config_->faults);
    owns_fault_injection_ = true;
  }
}

SystemDSContext::~SystemDSContext() {
  FlushObservability();  // best-effort; failures only matter on explicit calls
  if (owns_fault_injection_) FaultInjector::Get().Disable();
  // Only clear the process-global pool if it is still ours: a PreparedScript
  // or a second context may have installed a pool that must stay live.
  MatrixObject::ClearBufferPool(pool_.get());
}

void SystemDSContext::EnableTracing(const std::string& path) {
  trace_path_ = path;
  obs::Tracer::Get().Enable();
}

void SystemDSContext::EnableMetricsExport(const std::string& path) {
  metrics_path_ = path;
}

Status SystemDSContext::FlushObservability() {
  if (!trace_path_.empty()) {
    obs::Tracer::Get().Disable();
    std::string path;
    std::swap(path, trace_path_);
    SYSDS_RETURN_IF_ERROR(obs::Tracer::Get().WriteChromeTrace(path));
  }
  if (!metrics_path_.empty()) {
    std::string path;
    std::swap(path, metrics_path_);
    std::ofstream out(path);
    if (!out) return IoError("cannot open metrics output file: " + path);
    out << obs::MetricsRegistry::Get().ExportJson() << "\n";
    if (!out) return IoError("failed writing metrics output file: " + path);
  }
  return Status::Ok();
}

DataPtr SystemDSContext::Matrix(MatrixBlock m) {
  return std::make_shared<MatrixObject>(std::move(m));
}
DataPtr SystemDSContext::Frame(FrameBlock f) {
  return std::make_shared<FrameObject>(std::move(f));
}
DataPtr SystemDSContext::Scalar(double v) {
  return ScalarObject::MakeDouble(v);
}
DataPtr SystemDSContext::ScalarInt(int64_t v) {
  return ScalarObject::MakeInt(v);
}
DataPtr SystemDSContext::ScalarString(std::string v) {
  return ScalarObject::MakeString(std::move(v));
}
DataPtr SystemDSContext::ScalarBool(bool v) {
  return ScalarObject::MakeBool(v);
}

StatusOr<ScriptResult> SystemDSContext::Execute(const std::string& script,
                                                const Inputs& inputs,
                                                const Outputs& outputs,
                                                const ExecuteOptions& options) {
  // The lineage cache holds values from prior executions; its policy is
  // refreshed from the current config (benchmarks toggle reuse).
  if (cache_->policy() != config_->reuse_policy) {
    cache_ = std::make_shared<LineageCache>(config_->lineage_cache_limit,
                                            config_->reuse_policy);
  }
  SymbolInfoMap infos;
  for (const auto& [name, value] : inputs.Bindings()) {
    infos[name] = InfoOf(value);
  }
  SYSDS_ASSIGN_OR_RETURN(std::unique_ptr<Program> program,
                         CompileDML(script, *config_, infos));
  RunOptions run;
  run.deadline = options.deadline;
  run.cancel = options.cancel;
  return RunProgram(program.get(), config_.get(), cache_.get(), pool_.get(),
                    inputs.Bindings(), outputs.Names(), run);
}

StatusOr<ScriptResult> SystemDSContext::Execute(
    const std::string& script, const std::map<std::string, DataPtr>& inputs,
    const std::vector<std::string>& outputs) {
  Inputs typed;
  for (const auto& [name, value] : inputs) typed.Bind(name, value);
  return Execute(script, typed, Outputs::FromVector(outputs));
}

StatusOr<std::unique_ptr<PreparedScript>> SystemDSContext::Prepare(
    const std::string& script,
    const std::map<std::string, SymbolInfo>& input_infos) {
  SYSDS_ASSIGN_OR_RETURN(std::unique_ptr<Program> program,
                         CompileDML(script, *config_, input_infos));
  auto prepared = std::make_unique<PreparedScript>();
  prepared->program_ = std::move(program);
  prepared->config_ = config_;
  prepared->cache_ = cache_;
  prepared->pool_ = pool_;
  return prepared;
}

StatusOr<std::string> SystemDSContext::Explain(
    const std::string& script,
    const std::map<std::string, SymbolInfo>& input_infos) {
  SYSDS_ASSIGN_OR_RETURN(std::unique_ptr<Program> program,
                         CompileDML(script, *config_, input_infos));
  return program->Explain();
}

void PreparedScript::BindMatrix(const std::string& name, MatrixBlock value) {
  bindings_[name] = std::make_shared<MatrixObject>(std::move(value));
}
void PreparedScript::BindFrame(const std::string& name, FrameBlock value) {
  bindings_[name] = std::make_shared<FrameObject>(std::move(value));
}
void PreparedScript::BindDouble(const std::string& name, double value) {
  bindings_[name] = ScalarObject::MakeDouble(value);
}
void PreparedScript::BindInt(const std::string& name, int64_t value) {
  bindings_[name] = ScalarObject::MakeInt(value);
}
void PreparedScript::BindBool(const std::string& name, bool value) {
  bindings_[name] = ScalarObject::MakeBool(value);
}
void PreparedScript::BindString(const std::string& name, std::string value) {
  bindings_[name] = ScalarObject::MakeString(std::move(value));
}

StatusOr<ScriptResult> PreparedScript::Execute(
    const Inputs& inputs, const Outputs& outputs,
    const ExecuteOptions& options) const {
  RunOptions run;
  // The Program is shared by concurrent executors; in-place block
  // recompilation would race (same reasoning as parfor workers).
  run.allow_recompile = false;
  run.deadline = options.deadline;
  run.cancel = options.cancel;
  return RunProgram(program_.get(), config_.get(), cache_.get(), pool_.get(),
                    inputs.Bindings(), outputs.Names(), run);
}

StatusOr<ScriptResult> PreparedScript::Execute(
    const std::vector<std::string>& outputs) {
  RunOptions run;
  run.allow_recompile = false;
  return RunProgram(program_.get(), config_.get(), cache_.get(), pool_.get(),
                    bindings_, outputs, run);
}

}  // namespace sysds
