#ifndef SYSDS_API_SYSTEMDS_CONTEXT_H_
#define SYSDS_API_SYSTEMDS_CONTEXT_H_

#include <map>
#include <memory>
#include <ostream>
#include <string>

#include "common/config.h"
#include "common/status.h"
#include "compiler/compiler.h"
#include "lineage/lineage.h"
#include "runtime/bufferpool/buffer_pool.h"
#include "runtime/controlprog/program.h"

namespace sysds {

/// Results of one script execution: the requested output variables.
class ScriptResult {
 public:
  StatusOr<MatrixBlock> GetMatrix(const std::string& name) const;
  StatusOr<double> GetDouble(const std::string& name) const;
  StatusOr<std::string> GetString(const std::string& name) const;
  StatusOr<FrameBlock> GetFrame(const std::string& name) const;
  /// Everything print()ed during execution.
  const std::string& Output() const { return output_; }

  /// Serialized lineage trace of an output variable (§3.1: the surface for
  /// model versioning, reproducibility, and debugging via queries over
  /// traces). Available when lineage tracing or reuse was enabled.
  StatusOr<std::string> GetLineage(const std::string& name) const;

  // Internal: populated by the execution layer.
  void SetValue(const std::string& name, DataPtr value) {
    values_[name] = std::move(value);
  }
  void SetOutputText(std::string text) { output_ = std::move(text); }
  void SetLineageText(const std::string& name, std::string trace) {
    lineage_[name] = std::move(trace);
  }

 private:
  std::map<std::string, DataPtr> values_;
  std::map<std::string, std::string> lineage_;
  std::string output_;
};

/// JMLC-style prepared script (paper §2.2(1)): compile once, bind in-memory
/// inputs, execute repeatedly with low latency. Each Execute runs on a
/// fresh symbol table; the lineage reuse cache persists across executions.
class PreparedScript {
 public:
  void BindMatrix(const std::string& name, MatrixBlock value);
  void BindFrame(const std::string& name, FrameBlock value);
  void BindDouble(const std::string& name, double value);
  void BindInt(const std::string& name, int64_t value);
  void BindBool(const std::string& name, bool value);
  void BindString(const std::string& name, std::string value);

  /// Executes the precompiled program and collects `outputs`.
  StatusOr<ScriptResult> Execute(const std::vector<std::string>& outputs);

 private:
  friend class SystemDSContext;
  std::shared_ptr<Program> program_;
  const DMLConfig* config_ = nullptr;
  LineageCache* cache_ = nullptr;
  BufferPool* pool_ = nullptr;
  std::map<std::string, DataPtr> bindings_;
};

/// The MLContext-like entry point: owns configuration, the buffer pool, and
/// the lineage reuse cache; compiles and executes DML scripts.
class SystemDSContext {
 public:
  SystemDSContext();
  explicit SystemDSContext(DMLConfig config);
  ~SystemDSContext();

  DMLConfig& Config() { return config_; }
  LineageCache* Cache() { return cache_.get(); }
  BufferPool* Pool() { return pool_.get(); }

  /// Turns on the span tracer (src/obs/): subsequent Compile/Execute calls
  /// record compile phases, per-instruction spans, buffer-pool, lineage,
  /// distributed, and federated events. The Chrome trace-event JSON is
  /// written to `path` (open in chrome://tracing or ui.perfetto.dev) by
  /// FlushObservability() or the destructor, whichever comes first.
  void EnableTracing(const std::string& path);

  /// Writes the metrics-registry JSON export (counters, gauges, histograms,
  /// per-opcode instruction timings) to `path` at flush/destruction time.
  void EnableMetricsExport(const std::string& path);

  /// Writes any configured trace/metrics outputs now and disables tracing.
  /// Idempotent; also invoked by the destructor.
  Status FlushObservability();

  /// One-shot execution: compile + run, returning requested outputs.
  /// Inputs are bound under their names before execution.
  StatusOr<ScriptResult> Execute(
      const std::string& script,
      const std::map<std::string, DataPtr>& inputs = {},
      const std::vector<std::string>& outputs = {});

  /// Precompiles a script for repeated low-latency execution (JMLC).
  StatusOr<std::unique_ptr<PreparedScript>> Prepare(
      const std::string& script,
      const std::map<std::string, SymbolInfo>& input_infos);

  /// Compiles the script and renders the runtime plan — program blocks and
  /// their instruction sequences (the `explain` facility; SystemDS prints
  /// the analogous HOP/runtime plans).
  StatusOr<std::string> Explain(
      const std::string& script,
      const std::map<std::string, SymbolInfo>& input_infos = {});

  /// Convenience helpers to build input bindings.
  static DataPtr Matrix(MatrixBlock m);
  static DataPtr Frame(FrameBlock f);
  static DataPtr Scalar(double v);
  static DataPtr ScalarInt(int64_t v);
  static DataPtr ScalarString(std::string v);
  static DataPtr ScalarBool(bool v);

 private:
  DMLConfig config_;
  std::unique_ptr<BufferPool> pool_;
  std::unique_ptr<LineageCache> cache_;
  std::string trace_path_;
  std::string metrics_path_;
};

}  // namespace sysds

#endif  // SYSDS_API_SYSTEMDS_CONTEXT_H_
