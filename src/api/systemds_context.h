#ifndef SYSDS_API_SYSTEMDS_CONTEXT_H_
#define SYSDS_API_SYSTEMDS_CONTEXT_H_

#include <chrono>
#include <map>
#include <memory>
#include <optional>
#include <ostream>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/config.h"
#include "common/status.h"
#include "compiler/compiler.h"
#include "lineage/lineage.h"
#include "runtime/bufferpool/buffer_pool.h"
#include "runtime/controlprog/program.h"

namespace sysds {

/// Results of one script execution: the requested output variables.
class ScriptResult {
 public:
  StatusOr<MatrixBlock> GetMatrix(const std::string& name) const;
  StatusOr<double> GetDouble(const std::string& name) const;
  StatusOr<std::string> GetString(const std::string& name) const;
  StatusOr<FrameBlock> GetFrame(const std::string& name) const;
  /// Everything print()ed during execution.
  const std::string& Output() const { return output_; }

  /// Serialized lineage trace of an output variable (§3.1: the surface for
  /// model versioning, reproducibility, and debugging via queries over
  /// traces). Available when lineage tracing or reuse was enabled.
  StatusOr<std::string> GetLineage(const std::string& name) const;

  // Internal: populated by the execution layer.
  void SetValue(const std::string& name, DataPtr value) {
    values_[name] = std::move(value);
  }
  void SetOutputText(std::string text) { output_ = std::move(text); }
  void SetLineageText(const std::string& name, std::string trace) {
    lineage_[name] = std::move(trace);
  }

 private:
  std::map<std::string, DataPtr> values_;
  std::map<std::string, std::string> lineage_;
  std::string output_;
};

/// Typed input-binding builder: the value-carrying half of an execution
/// request. Replaces the raw std::map<std::string, DataPtr> surface:
///
///   ctx.Execute(script,
///               Inputs().Matrix("X", x).Scalar("eps", 1e-6),
///               Outputs("B"));
///
/// An Inputs object is an immutable value once handed to Execute; build a
/// fresh one per request (they are cheap: bindings are shared_ptrs).
class Inputs {
 public:
  Inputs() = default;

  Inputs& Matrix(const std::string& name, MatrixBlock value);
  Inputs& Frame(const std::string& name, FrameBlock value);
  Inputs& Scalar(const std::string& name, double value);
  Inputs& Integer(const std::string& name, int64_t value);
  Inputs& Boolean(const std::string& name, bool value);
  Inputs& String(const std::string& name, std::string value);
  /// Binds an already-constructed runtime object (shares, never copies).
  Inputs& Bind(const std::string& name, DataPtr value);

  const std::map<std::string, DataPtr>& Bindings() const { return bindings_; }

 private:
  std::map<std::string, DataPtr> bindings_;
};

/// Output selection for an execution request: `Outputs("B", "loss")`. At
/// least one name is required by the constructor; use Outputs::None() for a
/// script executed purely for its side effects (print/write).
class Outputs {
 public:
  template <typename... Names,
            typename = std::enable_if_t<
                (sizeof...(Names) >= 1) &&
                (std::is_convertible_v<Names, std::string> && ...)>>
  explicit Outputs(Names&&... names) {
    (names_.emplace_back(std::forward<Names>(names)), ...);
  }

  static Outputs None() { return Outputs(Tag{}); }
  static Outputs FromVector(std::vector<std::string> names) {
    Outputs o{Tag{}};
    o.names_ = std::move(names);
    return o;
  }

  Outputs& Add(std::string name) {
    names_.push_back(std::move(name));
    return *this;
  }

  const std::vector<std::string>& Names() const { return names_; }

 private:
  struct Tag {};
  explicit Outputs(Tag) {}
  std::vector<std::string> names_;
};

/// Per-request execution controls for the thread-safe execution paths.
struct ExecuteOptions {
  /// Absolute deadline; the interpreter polls it between instructions and
  /// fails the request with StatusCode::kTimeout once expired.
  std::optional<std::chrono::steady_clock::time_point> deadline;
  /// Cooperative cancellation (StatusCode::kCancelled when fired).
  std::shared_ptr<CancellationToken> cancel;
};

/// JMLC-style prepared script (paper §2.2(1)): compile once, bind in-memory
/// inputs, execute repeatedly with low latency.
///
/// The const Execute(Inputs, Outputs) overload is thread-safe: any number
/// of threads may execute one PreparedScript concurrently, each call runs
/// on its own ExecutionContext/symbol table over the shared immutable
/// Program, and the lineage reuse cache (sharded, internally synchronized)
/// persists across executions. Because program blocks are shared across
/// threads, dynamic recompilation is disabled on this path; pass complete
/// SymbolInfo dimensions to Prepare so plans are compiled to final form.
///
/// A PreparedScript co-owns the config, lineage cache, and buffer pool of
/// the context that prepared it, so it remains valid (and executable) after
/// that context is destroyed.
class PreparedScript {
 public:
  /// Thread-safe execution with per-call bindings.
  StatusOr<ScriptResult> Execute(const Inputs& inputs, const Outputs& outputs,
                                 const ExecuteOptions& options = {}) const;

  /// Deprecated mutable-binding surface. Not thread-safe: bindings are
  /// stored on the PreparedScript itself. Prefer Execute(Inputs, Outputs).
  void BindMatrix(const std::string& name, MatrixBlock value);
  void BindFrame(const std::string& name, FrameBlock value);
  void BindDouble(const std::string& name, double value);
  void BindInt(const std::string& name, int64_t value);
  void BindBool(const std::string& name, bool value);
  void BindString(const std::string& name, std::string value);

  /// Deprecated: executes with the Bind*-accumulated bindings.
  StatusOr<ScriptResult> Execute(const std::vector<std::string>& outputs);

 private:
  friend class SystemDSContext;
  std::shared_ptr<Program> program_;
  std::shared_ptr<const DMLConfig> config_;
  std::shared_ptr<LineageCache> cache_;
  std::shared_ptr<BufferPool> pool_;
  std::map<std::string, DataPtr> bindings_;
};

/// The MLContext-like entry point: owns configuration, the buffer pool, and
/// the lineage reuse cache; compiles and executes DML scripts.
///
/// Construct through SystemDSContext::Builder, which fixes the
/// configuration at construction time:
///
///   auto ctx = SystemDSContext::Builder()
///                  .Reuse(ReusePolicy::kFull)
///                  .NumThreads(4)
///                  .EnableTracing("trace.json")
///                  .Build();
class SystemDSContext {
 public:
  /// Fluent constructor: every knob of DMLConfig plus the observability
  /// sinks, applied atomically at Build(). The built context's
  /// configuration should be treated as immutable; concurrent executions
  /// (PreparedScript / serve::ScoringService) rely on it not changing.
  class Builder {
   public:
    Builder() = default;

    /// Replaces the whole config (start from an existing DMLConfig).
    Builder& WithConfig(DMLConfig config);
    Builder& NumThreads(int n);
    Builder& CpMemoryBudget(int64_t bytes);
    Builder& BufferPoolLimit(int64_t bytes);
    /// Asynchronous buffer-pool behaviour (`dml_runner --no-write-behind`
    /// / `--no-prefetch` map to these). Both default to on; results are
    /// bit-identical either way — only stall time changes.
    Builder& BufferPoolWriteBehind(bool on = true);
    Builder& BufferPoolPrefetch(bool on = true);
    Builder& BlockSize(int64_t rows);
    Builder& LineageTracing(bool on = true);
    Builder& Reuse(ReusePolicy policy);
    Builder& LineageCacheLimit(int64_t bytes);
    Builder& LineageDedup(bool on = true);
    Builder& DynamicRecompilation(bool on);
    /// Operator fusion of elementwise(+aggregate) chains (`dml_runner
    /// --no-fusion` maps to Fusion(false)). Fused and unfused plans produce
    /// identical results; disable to debug or to benchmark the win.
    Builder& Fusion(bool on);
    /// Minimum dense-size estimate (bytes) an elided intermediate must
    /// reach before a region is considered worth fusing.
    Builder& FusionThreshold(int64_t bytes);
    /// Workload-aware compressed linear algebra (`dml_runner --compress`
    /// maps to Compression(true)). When on, a compiler rewrite injects
    /// compress() before loops for large read-only matrices and matrix
    /// instructions dispatch to compressed kernels transparently.
    Builder& Compression(bool on = true);
    /// Minimum estimated compression ratio before the planner compresses.
    Builder& CompressionMinRatio(double ratio);
    /// Matrices below this in-memory size are never compressed.
    Builder& CompressionMinSize(int64_t bytes);
    /// Threads for transformencode/transformapply/transformdecode (0 =
    /// the context's NumThreads). Fit/apply are chunked pipelines whose
    /// results are bit-identical at every thread count.
    Builder& TransformThreads(int n);
    /// Output representation of transformencode/transformapply
    /// (`dml_runner --transform-compressed` maps to
    /// TransformOutput(kCompressed)). kAuto prices bytes per column;
    /// compression enablement upgrades kDense to kAuto at compile time.
    Builder& TransformOutput(TransformOutputFormat format);
    Builder& Statistics(bool on = true);
    /// Folds SystemDSContext::EnableTracing into construction.
    Builder& EnableTracing(std::string path);
    /// Folds SystemDSContext::EnableMetricsExport into construction.
    Builder& EnableMetricsExport(std::string path);
    /// Chaos testing: the built context configures the process-wide
    /// FaultInjector with this FaultConfig at construction and disables it
    /// again at destruction (see common/faults.h).
    Builder& Chaos(FaultConfig faults);
    /// Shorthand: FaultProfile::Standard() under the given seed
    /// (`dml_runner --chaos-seed N` maps here).
    Builder& ChaosSeed(uint64_t seed);
    /// Checkpoint/restart (`dml_runner --checkpoint-dir DIR`): outermost
    /// loops snapshot loop-carried state into `dir` every `interval`
    /// completed iterations (interval <= 0 selects the adaptive cost
    /// gate). Crash-safe: every file is CRC-checksummed and committed by
    /// atomic rename.
    Builder& Checkpointing(std::string dir, int64_t interval = 1);
    /// Adaptive-gate cost factor (lost work >= factor x write cost).
    Builder& CheckpointCostFactor(double factor);
    /// Resume from the checkpoint directory (`dml_runner --resume`): the
    /// deterministic program prefix re-executes, then execution fast-
    /// forwards past the checkpointed iterations. The resumed run is
    /// bit-identical to an uninterrupted one.
    Builder& Resume(bool on = true);

    std::unique_ptr<SystemDSContext> Build() const;

   private:
    DMLConfig config_;
    std::string trace_path_;
    std::string metrics_path_;
  };

  SystemDSContext();
  explicit SystemDSContext(DMLConfig config);
  ~SystemDSContext();

  SystemDSContext(const SystemDSContext&) = delete;
  SystemDSContext& operator=(const SystemDSContext&) = delete;

  /// Read-only view of the configuration fixed at construction.
  const DMLConfig& config() const { return *config_; }

  /// Deprecated escape hatch: mutable config reference. Mutating it after
  /// construction is incompatible with concurrent execution; kept only so
  /// pre-Builder call sites compile. Use Builder instead.
  DMLConfig& Config() { return *config_; }

  LineageCache* Cache() { return cache_.get(); }
  BufferPool* Pool() { return pool_.get(); }

  /// Deprecated: prefer Builder::EnableTracing. Turns on the span tracer
  /// (src/obs/); the Chrome trace-event JSON is written to `path` by
  /// FlushObservability() or the destructor, whichever comes first.
  void EnableTracing(const std::string& path);

  /// Deprecated: prefer Builder::EnableMetricsExport. Writes the
  /// metrics-registry JSON export to `path` at flush/destruction time.
  void EnableMetricsExport(const std::string& path);

  /// Writes any configured trace/metrics outputs now and disables tracing.
  /// Idempotent; also invoked by the destructor.
  Status FlushObservability();

  /// One-shot execution: compile + run, returning requested outputs.
  StatusOr<ScriptResult> Execute(const std::string& script,
                                 const Inputs& inputs, const Outputs& outputs,
                                 const ExecuteOptions& options = {});

  /// Deprecated shim over the raw-map binding surface; prefer the
  /// Inputs/Outputs overload.
  StatusOr<ScriptResult> Execute(
      const std::string& script,
      const std::map<std::string, DataPtr>& inputs = {},
      const std::vector<std::string>& outputs = {});

  /// Precompiles a script for repeated low-latency execution (JMLC). The
  /// returned PreparedScript co-owns the context's cache/pool/config and
  /// may outlive the context.
  StatusOr<std::unique_ptr<PreparedScript>> Prepare(
      const std::string& script,
      const std::map<std::string, SymbolInfo>& input_infos);

  /// Compiles the script and renders the runtime plan — program blocks and
  /// their instruction sequences (the `explain` facility; SystemDS prints
  /// the analogous HOP/runtime plans).
  StatusOr<std::string> Explain(
      const std::string& script,
      const std::map<std::string, SymbolInfo>& input_infos = {});

  /// Convenience helpers to build raw input bindings (deprecated surface).
  static DataPtr Matrix(MatrixBlock m);
  static DataPtr Frame(FrameBlock f);
  static DataPtr Scalar(double v);
  static DataPtr ScalarInt(int64_t v);
  static DataPtr ScalarString(std::string v);
  static DataPtr ScalarBool(bool v);

 private:
  std::shared_ptr<DMLConfig> config_;
  std::shared_ptr<BufferPool> pool_;
  std::shared_ptr<LineageCache> cache_;
  std::string trace_path_;
  std::string metrics_path_;
  // True when this context enabled the process-wide FaultInjector (via
  // DMLConfig::faults); the destructor then disables it.
  bool owns_fault_injection_ = false;
};

}  // namespace sysds

#endif  // SYSDS_API_SYSTEMDS_CONTEXT_H_
