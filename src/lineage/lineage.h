#ifndef SYSDS_LINEAGE_LINEAGE_H_
#define SYSDS_LINEAGE_LINEAGE_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/config.h"
#include "common/status.h"
#include "runtime/controlprog/data.h"
#include "runtime/controlprog/instruction.h"

namespace sysds {

class ExecutionContext;

/// A node of the lineage DAG (paper §3.1): one logical operation with its
/// literal inputs and references to the lineage of its operand variables.
/// Items are immutable; the 64-bit hash is computed structurally on
/// construction and identifies the full sub-DAG (used as the reuse-cache
/// key).
class LineageItem {
 public:
  static std::shared_ptr<LineageItem> Leaf(const std::string& opcode,
                                           const std::string& data);
  static std::shared_ptr<LineageItem> Node(
      const std::string& opcode,
      std::vector<std::shared_ptr<LineageItem>> inputs);

  uint64_t hash() const { return hash_; }
  const std::string& opcode() const { return opcode_; }
  const std::string& data() const { return data_; }
  const std::vector<std::shared_ptr<LineageItem>>& inputs() const {
    return inputs_;
  }

  /// Structural equality (used to guard against hash collisions).
  bool Equals(const LineageItem& other) const;

  /// Serializes the DAG rooted here ("(id) opcode data (inputs...)" lines),
  /// the debugging/query surface over traces.
  std::string Serialize() const;

  /// Total number of distinct nodes in this DAG.
  int64_t NodeCount() const;

 private:
  LineageItem() = default;

  uint64_t hash_ = 0;
  std::string opcode_;
  std::string data_;
  std::vector<std::shared_ptr<LineageItem>> inputs_;
};

using LineageItemPtr = std::shared_ptr<LineageItem>;

/// Per-scope map of live variables to their lineage DAG roots.
class LineageMap {
 public:
  /// Lineage of a variable; creates an input leaf on first access (script
  /// inputs are traced by name, §3.1).
  LineageItemPtr GetOrCreate(const std::string& var);
  LineageItemPtr GetOrNull(const std::string& var) const;
  void Set(const std::string& var, LineageItemPtr item);
  void Remove(const std::string& var);

  /// Builds the output lineage item of an instruction: literals become
  /// leaves, variable operands resolve through this map. Non-determinism
  /// (datagen seeds) is captured because the seed is a literal operand.
  LineageItemPtr CreateItemForInstruction(const Instruction& instr);

  int64_t TotalNodeCount() const;

  const std::map<std::string, LineageItemPtr>& Items() const {
    return items_;
  }

 private:
  std::map<std::string, LineageItemPtr> items_;
};

/// Structural signature of `item`'s sub-DAG with the given boundary items
/// replaced by positional placeholders and literal *values* ignored: two
/// loop iterations that executed the same operations over the loop-carried
/// state produce the same patch hash — the "distinct control flow path"
/// identity used for lineage loop deduplication (§3.1).
uint64_t LineagePatchHash(
    const LineageItem& item,
    const std::map<const LineageItem*, int>& boundary);

/// Cache statistics for benchmarks and tests.
struct LineageCacheStats {
  int64_t probes = 0;
  int64_t full_hits = 0;
  int64_t partial_hits = 0;
  int64_t puts = 0;
  int64_t evictions = 0;
  int64_t bytes = 0;
};

/// The lineage-based reuse cache (paper §3.1): intermediates keyed by the
/// hash of their lineage DAG, with full reuse and compensation-plan based
/// partial reuse (column-augmented tsmm/tmm, the steplm pattern).
///
/// Thread-safe for concurrent scoring (src/serve/): entries are sharded by
/// lineage hash with one mutex per shard, so probes/puts for different
/// sub-DAGs proceed in parallel. The hot miss path takes no lock at all:
/// each shard maintains an atomic generation counter (number of inserts
/// ever) and a 64-bit resident-hash summary; a zero generation or a clear
/// summary bit proves the hash is not resident, and only summary false
/// positives fall through to the locked lookup. Eviction approximates a
/// global LRU: a logical clock orders hits across shards and the eviction
/// sweep removes the globally oldest entry until under the byte limit.
class LineageCache {
 public:
  static constexpr int kShardBits = 4;
  static constexpr int kNumShards = 1 << kShardBits;

  LineageCache(int64_t limit_bytes, ReusePolicy policy);

  ReusePolicy policy() const { return policy_; }

  /// Full reuse probe. Returns the cached value or nullptr.
  DataPtr Probe(const LineageItemPtr& item);

  /// Partial-reuse probe for instruction `instr` with output lineage
  /// `item`: recognizes tsmm/tmm over cbind(A, v) when the result for A is
  /// cached, and computes the output via a compensation plan over the
  /// cached block plus the new column. Returns nullptr if not applicable.
  /// The compensation plan itself runs outside any shard lock.
  StatusOr<DataPtr> ProbePartial(const Instruction& instr,
                                 const LineageItemPtr& item,
                                 ExecutionContext* ec);

  /// Inserts a computed value (matrices only; respects the byte limit with
  /// LRU eviction).
  void Put(const LineageItemPtr& item, const DataPtr& value);

  /// Aggregated snapshot over all shards (counters are exact; `bytes` is
  /// the current occupancy).
  LineageCacheStats Stats() const;
  void ResetStats();
  void Clear();

 private:
  struct Entry {
    LineageItemPtr item;
    DataPtr value;
    int64_t size = 0;
    int64_t last_use = 0;
  };

  // Sized and aligned to keep each shard's mutex and map on distinct cache
  // lines under concurrent executors.
  struct alignas(64) Shard {
    mutable std::mutex mutex;
    std::map<uint64_t, Entry> entries;
    // Guarded by `mutex`.
    int64_t puts = 0;
    int64_t evictions = 0;
    // Lock-free probe summaries: `generation` counts inserts ever made into
    // the shard (0 = provably empty); `summary` has a bit set for every
    // hash that may be resident (rebuilt under the mutex on eviction).
    std::atomic<uint64_t> generation{0};
    std::atomic<uint64_t> summary{0};
  };

  Shard& ShardFor(uint64_t hash) {
    return shards_[hash & static_cast<uint64_t>(kNumShards - 1)];
  }
  static uint64_t SummaryBit(uint64_t hash) {
    return 1ULL << ((hash >> kShardBits) & 63);
  }
  /// True if `hash` may be resident; lock-free, no false negatives.
  bool MayContain(uint64_t hash);
  /// Locks shards one at a time to evict the globally oldest entry until
  /// total occupancy is back under the limit.
  void EvictIfNeeded();
  /// Looks up `hash` in its shard and returns the value (bumping LRU) or
  /// nullptr; `expected` guards against hash collisions. Counting the hit
  /// is left to the caller (the partial path only counts after its
  /// compensation plan actually served the result).
  DataPtr LockedLookup(uint64_t hash, const LineageItem& expected);

  int64_t limit_bytes_;
  ReusePolicy policy_;
  std::atomic<int64_t> clock_{0};
  std::atomic<int64_t> bytes_{0};
  std::atomic<int64_t> probes_{0};
  std::atomic<int64_t> full_hits_{0};
  std::atomic<int64_t> partial_hits_{0};
  std::array<Shard, kNumShards> shards_;
};

}  // namespace sysds

#endif  // SYSDS_LINEAGE_LINEAGE_H_
