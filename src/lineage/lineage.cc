#include "lineage/lineage.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "common/util.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/controlprog/data.h"
#include "runtime/controlprog/execution_context.h"
#include "runtime/matrix/lib_matmult.h"
#include "runtime/matrix/lib_reorg.h"

namespace sysds {

namespace {
uint64_t ComputeHash(const std::string& opcode, const std::string& data,
                     const std::vector<LineageItemPtr>& inputs) {
  uint64_t h = HashCombine(HashString(opcode), HashString(data));
  for (const LineageItemPtr& in : inputs) h = HashCombine(h, in->hash());
  return h;
}
}  // namespace

LineageItemPtr LineageItem::Leaf(const std::string& opcode,
                                 const std::string& data) {
  auto item = std::shared_ptr<LineageItem>(new LineageItem());
  item->opcode_ = opcode;
  item->data_ = data;
  item->hash_ = ComputeHash(opcode, data, {});
  return item;
}

LineageItemPtr LineageItem::Node(const std::string& opcode,
                                 std::vector<LineageItemPtr> inputs) {
  auto item = std::shared_ptr<LineageItem>(new LineageItem());
  item->opcode_ = opcode;
  item->inputs_ = std::move(inputs);
  item->hash_ = ComputeHash(opcode, "", item->inputs_);
  return item;
}

bool LineageItem::Equals(const LineageItem& other) const {
  if (hash_ != other.hash_ || opcode_ != other.opcode_ ||
      data_ != other.data_ || inputs_.size() != other.inputs_.size()) {
    return false;
  }
  for (size_t i = 0; i < inputs_.size(); ++i) {
    if (inputs_[i].get() == other.inputs_[i].get()) continue;
    if (!inputs_[i]->Equals(*other.inputs_[i])) return false;
  }
  return true;
}

namespace {
void SerializeVisit(const LineageItem* item,
                    std::set<const LineageItem*>* seen, std::ostream& os) {
  if (!seen->insert(item).second) return;
  for (const LineageItemPtr& in : item->inputs()) {
    SerializeVisit(in.get(), seen, os);
  }
  os << "(" << std::hex << item->hash() << std::dec << ") "
     << item->opcode();
  if (!item->data().empty()) os << " " << item->data();
  if (!item->inputs().empty()) {
    os << " <-";
    for (const LineageItemPtr& in : item->inputs()) {
      os << " (" << std::hex << in->hash() << std::dec << ")";
    }
  }
  os << "\n";
}

void CountVisit(const LineageItem* item, std::set<const LineageItem*>* seen) {
  if (!seen->insert(item).second) return;
  for (const LineageItemPtr& in : item->inputs()) {
    CountVisit(in.get(), seen);
  }
}
}  // namespace

std::string LineageItem::Serialize() const {
  std::ostringstream os;
  std::set<const LineageItem*> seen;
  SerializeVisit(this, &seen, os);
  return os.str();
}

int64_t LineageItem::NodeCount() const {
  std::set<const LineageItem*> seen;
  CountVisit(this, &seen);
  return static_cast<int64_t>(seen.size());
}

LineageItemPtr LineageMap::GetOrCreate(const std::string& var) {
  auto it = items_.find(var);
  if (it != items_.end()) return it->second;
  LineageItemPtr leaf = LineageItem::Leaf("in", var);
  items_[var] = leaf;
  return leaf;
}

LineageItemPtr LineageMap::GetOrNull(const std::string& var) const {
  auto it = items_.find(var);
  return it == items_.end() ? nullptr : it->second;
}

void LineageMap::Set(const std::string& var, LineageItemPtr item) {
  items_[var] = std::move(item);
}

void LineageMap::Remove(const std::string& var) { items_.erase(var); }

LineageItemPtr LineageMap::CreateItemForInstruction(const Instruction& instr) {
  std::vector<LineageItemPtr> inputs;
  inputs.reserve(instr.inputs().size());
  for (const Operand& op : instr.inputs()) {
    if (op.is_literal) {
      inputs.push_back(LineageItem::Leaf("lit", op.lit.AsString()));
    } else {
      inputs.push_back(GetOrCreate(op.name));
    }
  }
  return LineageItem::Node(instr.opcode(), std::move(inputs));
}

int64_t LineageMap::TotalNodeCount() const {
  std::set<const LineageItem*> seen;
  for (const auto& [var, item] : items_) CountVisit(item.get(), &seen);
  return static_cast<int64_t>(seen.size());
}

namespace {
uint64_t PatchHashVisit(const LineageItem* item,
                        const std::map<const LineageItem*, int>& boundary,
                        std::map<const LineageItem*, uint64_t>* memo) {
  auto mit = memo->find(item);
  if (mit != memo->end()) return mit->second;
  uint64_t h;
  auto bit = boundary.find(item);
  if (bit != boundary.end()) {
    h = HashCombine(HashString("ph"), static_cast<uint64_t>(bit->second));
  } else if (item->opcode() == "lit") {
    h = HashString("lit");  // value-insensitive: paths unify over literals
  } else {
    h = HashString(item->opcode());
    for (const LineageItemPtr& in : item->inputs()) {
      h = HashCombine(h, PatchHashVisit(in.get(), boundary, memo));
    }
  }
  (*memo)[item] = h;
  return h;
}
}  // namespace

uint64_t LineagePatchHash(
    const LineageItem& item,
    const std::map<const LineageItem*, int>& boundary) {
  std::map<const LineageItem*, uint64_t> memo;
  return PatchHashVisit(&item, boundary, &memo);
}

LineageCache::LineageCache(int64_t limit_bytes, ReusePolicy policy)
    : limit_bytes_(limit_bytes), policy_(policy) {}

DataPtr LineageCache::Probe(const LineageItemPtr& item) {
  ++stats_.probes;
  obs::Tracer::Instant("lineage", "cache_probe");
  auto it = entries_.find(item->hash());
  if (it == entries_.end() || !it->second.item->Equals(*item)) {
    static obs::Counter* misses =
        obs::MetricsRegistry::Get().GetCounter("lineage.cache_misses");
    misses->Add(1);
    return nullptr;
  }
  it->second.last_use = ++clock_;
  ++stats_.full_hits;
  static obs::Counter* hits =
      obs::MetricsRegistry::Get().GetCounter("lineage.cache_hits");
  hits->Add(1);
  obs::Tracer::Instant("lineage", "cache_hit");
  return it->second.value;
}

void LineageCache::Put(const LineageItemPtr& item, const DataPtr& value) {
  auto* m = dynamic_cast<MatrixObject*>(value.get());
  if (m == nullptr) return;  // cache matrices only
  static obs::Counter* puts =
      obs::MetricsRegistry::Get().GetCounter("lineage.cache_puts");
  puts->Add(1);
  int64_t size = m->EstimateSizeInBytes();
  if (size > limit_bytes_) return;
  Entry e;
  e.item = item;
  e.value = value;
  e.size = size;
  e.last_use = ++clock_;
  auto [it, inserted] = entries_.emplace(item->hash(), std::move(e));
  if (!inserted) {
    it->second.last_use = clock_;
    return;
  }
  stats_.bytes += size;
  ++stats_.puts;
  EvictIfNeeded();
}

void LineageCache::EvictIfNeeded() {
  while (stats_.bytes > limit_bytes_ && !entries_.empty()) {
    auto victim = entries_.begin();
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (it->second.last_use < victim->second.last_use) victim = it;
    }
    stats_.bytes -= victim->second.size;
    ++stats_.evictions;
    entries_.erase(victim);
  }
}

void LineageCache::Clear() {
  entries_.clear();
  stats_.bytes = 0;
}

StatusOr<DataPtr> LineageCache::ProbePartial(const Instruction& instr,
                                             const LineageItemPtr& item,
                                             ExecutionContext* ec) {
  if (policy_ != ReusePolicy::kPartial) return DataPtr(nullptr);
  std::string op = instr.opcode();
  if (op.rfind("sp_", 0) == 0) op = op.substr(3);  // logical opcode
  // Pattern 1: tsmm(cbind(A, v)) with cached tsmm(A):
  //   t(X)%*%X = [[t(A)%*%A, t(A)%*%v], [t(v)%*%A, t(v)%*%v]].
  // Pattern 2: tmm(cbind(A, v), y) with cached tmm(A, y):
  //   t(X)%*%y = rbind(t(A)%*%y, t(v)%*%y).
  if (op != "tsmm" && op != "tmm") return DataPtr(nullptr);
  if (item->inputs().empty()) return DataPtr(nullptr);
  const LineageItemPtr& xi = item->inputs()[0];
  if (xi->opcode() != "cbind" || xi->inputs().size() != 2) {
    return DataPtr(nullptr);
  }
  // The appended part must be a single column; we verify via the runtime
  // value of X below (last column split).
  LineageItemPtr probe_item;
  if (op == "tsmm") {
    probe_item = LineageItem::Node("tsmm", {xi->inputs()[0]});
  } else {
    if (item->inputs().size() < 2) return DataPtr(nullptr);
    probe_item = LineageItem::Node("tmm", {xi->inputs()[0],
                                           item->inputs()[1]});
  }
  auto it = entries_.find(probe_item->hash());
  if (it == entries_.end() || !it->second.item->Equals(*probe_item)) {
    return DataPtr(nullptr);
  }
  auto* cached = dynamic_cast<MatrixObject*>(it->second.value.get());
  if (cached == nullptr) return DataPtr(nullptr);

  // Compensation plan over the current X (and y for tmm).
  SYSDS_ASSIGN_OR_RETURN(MatrixObject * xobj,
                         ec->GetMatrix(instr.inputs()[0]));
  const MatrixBlock& x = xobj->AcquireRead();
  int64_t n = x.Cols();
  const MatrixBlock& c = cached->AcquireRead();
  auto release = [&]() {
    xobj->Release();
    cached->Release();
  };
  // The cached block must match the prefix width of X minus the appended
  // column(s).
  int64_t appended = op == "tsmm" ? n - c.Rows() : n - c.Rows();
  if (appended < 1) {
    release();
    return DataPtr(nullptr);
  }
  auto prefix_or = SliceMatrix(x, 0, x.Rows() - 1, 0, n - appended - 1);
  auto suffix_or = SliceMatrix(x, 0, x.Rows() - 1, n - appended, n - 1);
  if (!prefix_or.ok() || !suffix_or.ok()) {
    release();
    return DataPtr(nullptr);
  }
  const MatrixBlock& a = *prefix_or;
  const MatrixBlock& v = *suffix_or;
  int threads = ec->NumThreads();

  if (op == "tsmm") {
    // w = t(A)%*%v (n-k x k), s = t(v)%*%v (k x k).
    auto w_or = TransposeLeftMatMult(a, v, threads);
    auto s_or = TransposeSelfMatMult(v, /*left=*/true, threads);
    if (!w_or.ok() || !s_or.ok()) {
      release();
      return DataPtr(nullptr);
    }
    int64_t m = n;
    MatrixBlock out = MatrixBlock::Dense(m, m);
    int64_t p = c.Rows();
    for (int64_t i = 0; i < p; ++i) {
      for (int64_t j = 0; j < p; ++j) out.DenseRow(i)[j] = c.Get(i, j);
      for (int64_t j = 0; j < appended; ++j) {
        out.DenseRow(i)[p + j] = w_or->Get(i, j);
        out.DenseRow(p + j)[i] = w_or->Get(i, j);
      }
    }
    for (int64_t i = 0; i < appended; ++i) {
      for (int64_t j = 0; j < appended; ++j) {
        out.DenseRow(p + i)[p + j] = s_or->Get(i, j);
      }
    }
    out.MarkNnzDirty();
    release();
    ++stats_.partial_hits;
    DataPtr result = std::make_shared<MatrixObject>(std::move(out));
    Put(item, result);
    return result;
  }

  // tmm: out = rbind(cached, t(v)%*%y).
  SYSDS_ASSIGN_OR_RETURN(MatrixObject * yobj,
                         ec->GetMatrix(instr.inputs()[1]));
  const MatrixBlock& y = yobj->AcquireRead();
  auto vty_or = TransposeLeftMatMult(v, y, threads);
  yobj->Release();
  if (!vty_or.ok()) {
    release();
    return DataPtr(nullptr);
  }
  std::vector<const MatrixBlock*> parts = {&c, &*vty_or};
  auto out_or = RBind(parts);
  release();
  if (!out_or.ok()) return DataPtr(nullptr);
  ++stats_.partial_hits;
  DataPtr result = std::make_shared<MatrixObject>(std::move(*out_or));
  Put(item, result);
  return result;
}

}  // namespace sysds
