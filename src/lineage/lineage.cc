#include "lineage/lineage.h"

#include <algorithm>
#include <limits>
#include <set>
#include <sstream>

#include "common/util.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runtime/controlprog/data.h"
#include "runtime/controlprog/execution_context.h"
#include "runtime/matrix/lib_matmult.h"
#include "runtime/matrix/lib_reorg.h"

namespace sysds {

namespace {
uint64_t ComputeHash(const std::string& opcode, const std::string& data,
                     const std::vector<LineageItemPtr>& inputs) {
  uint64_t h = HashCombine(HashString(opcode), HashString(data));
  for (const LineageItemPtr& in : inputs) h = HashCombine(h, in->hash());
  return h;
}
}  // namespace

LineageItemPtr LineageItem::Leaf(const std::string& opcode,
                                 const std::string& data) {
  auto item = std::shared_ptr<LineageItem>(new LineageItem());
  item->opcode_ = opcode;
  item->data_ = data;
  item->hash_ = ComputeHash(opcode, data, {});
  return item;
}

LineageItemPtr LineageItem::Node(const std::string& opcode,
                                 std::vector<LineageItemPtr> inputs) {
  auto item = std::shared_ptr<LineageItem>(new LineageItem());
  item->opcode_ = opcode;
  item->inputs_ = std::move(inputs);
  item->hash_ = ComputeHash(opcode, "", item->inputs_);
  return item;
}

bool LineageItem::Equals(const LineageItem& other) const {
  if (hash_ != other.hash_ || opcode_ != other.opcode_ ||
      data_ != other.data_ || inputs_.size() != other.inputs_.size()) {
    return false;
  }
  for (size_t i = 0; i < inputs_.size(); ++i) {
    if (inputs_[i].get() == other.inputs_[i].get()) continue;
    if (!inputs_[i]->Equals(*other.inputs_[i])) return false;
  }
  return true;
}

namespace {
void SerializeVisit(const LineageItem* item,
                    std::set<const LineageItem*>* seen, std::ostream& os) {
  if (!seen->insert(item).second) return;
  for (const LineageItemPtr& in : item->inputs()) {
    SerializeVisit(in.get(), seen, os);
  }
  os << "(" << std::hex << item->hash() << std::dec << ") "
     << item->opcode();
  if (!item->data().empty()) os << " " << item->data();
  if (!item->inputs().empty()) {
    os << " <-";
    for (const LineageItemPtr& in : item->inputs()) {
      os << " (" << std::hex << in->hash() << std::dec << ")";
    }
  }
  os << "\n";
}

void CountVisit(const LineageItem* item, std::set<const LineageItem*>* seen) {
  if (!seen->insert(item).second) return;
  for (const LineageItemPtr& in : item->inputs()) {
    CountVisit(in.get(), seen);
  }
}
}  // namespace

std::string LineageItem::Serialize() const {
  std::ostringstream os;
  std::set<const LineageItem*> seen;
  SerializeVisit(this, &seen, os);
  return os.str();
}

int64_t LineageItem::NodeCount() const {
  std::set<const LineageItem*> seen;
  CountVisit(this, &seen);
  return static_cast<int64_t>(seen.size());
}

LineageItemPtr LineageMap::GetOrCreate(const std::string& var) {
  auto it = items_.find(var);
  if (it != items_.end()) return it->second;
  LineageItemPtr leaf = LineageItem::Leaf("in", var);
  items_[var] = leaf;
  return leaf;
}

LineageItemPtr LineageMap::GetOrNull(const std::string& var) const {
  auto it = items_.find(var);
  return it == items_.end() ? nullptr : it->second;
}

void LineageMap::Set(const std::string& var, LineageItemPtr item) {
  items_[var] = std::move(item);
}

void LineageMap::Remove(const std::string& var) { items_.erase(var); }

LineageItemPtr LineageMap::CreateItemForInstruction(const Instruction& instr) {
  std::vector<LineageItemPtr> inputs;
  inputs.reserve(instr.inputs().size());
  for (const Operand& op : instr.inputs()) {
    if (op.is_literal) {
      inputs.push_back(LineageItem::Leaf("lit", op.lit.AsString()));
    } else {
      inputs.push_back(GetOrCreate(op.name));
    }
  }
  return LineageItem::Node(instr.opcode(), std::move(inputs));
}

int64_t LineageMap::TotalNodeCount() const {
  std::set<const LineageItem*> seen;
  for (const auto& [var, item] : items_) CountVisit(item.get(), &seen);
  return static_cast<int64_t>(seen.size());
}

namespace {
uint64_t PatchHashVisit(const LineageItem* item,
                        const std::map<const LineageItem*, int>& boundary,
                        std::map<const LineageItem*, uint64_t>* memo) {
  auto mit = memo->find(item);
  if (mit != memo->end()) return mit->second;
  uint64_t h;
  auto bit = boundary.find(item);
  if (bit != boundary.end()) {
    h = HashCombine(HashString("ph"), static_cast<uint64_t>(bit->second));
  } else if (item->opcode() == "lit") {
    h = HashString("lit");  // value-insensitive: paths unify over literals
  } else {
    h = HashString(item->opcode());
    for (const LineageItemPtr& in : item->inputs()) {
      h = HashCombine(h, PatchHashVisit(in.get(), boundary, memo));
    }
  }
  (*memo)[item] = h;
  return h;
}
}  // namespace

uint64_t LineagePatchHash(
    const LineageItem& item,
    const std::map<const LineageItem*, int>& boundary) {
  std::map<const LineageItem*, uint64_t> memo;
  return PatchHashVisit(&item, boundary, &memo);
}

LineageCache::LineageCache(int64_t limit_bytes, ReusePolicy policy)
    : limit_bytes_(limit_bytes), policy_(policy) {}

bool LineageCache::MayContain(uint64_t hash) {
  const Shard& s = ShardFor(hash);
  if (s.generation.load(std::memory_order_acquire) == 0) return false;
  return (s.summary.load(std::memory_order_acquire) & SummaryBit(hash)) != 0;
}

DataPtr LineageCache::LockedLookup(uint64_t hash,
                                   const LineageItem& expected) {
  Shard& s = ShardFor(hash);
  std::lock_guard<std::mutex> lock(s.mutex);
  auto it = s.entries.find(hash);
  if (it == s.entries.end() || !it->second.item->Equals(expected)) {
    return nullptr;
  }
  it->second.last_use = clock_.fetch_add(1, std::memory_order_relaxed) + 1;
  return it->second.value;
}

DataPtr LineageCache::Probe(const LineageItemPtr& item) {
  probes_.fetch_add(1, std::memory_order_relaxed);
  obs::Tracer::Instant("lineage", "cache_probe");
  static obs::Counter* misses =
      obs::MetricsRegistry::Get().GetCounter("lineage.cache_misses");
  // Hot miss path: the generation counter and resident-hash summary of the
  // shard prove absence without taking the shard mutex.
  if (!MayContain(item->hash())) {
    misses->Add(1);
    return nullptr;
  }
  DataPtr hit = LockedLookup(item->hash(), *item);
  if (hit == nullptr) {
    misses->Add(1);
    return nullptr;
  }
  full_hits_.fetch_add(1, std::memory_order_relaxed);
  static obs::Counter* hits =
      obs::MetricsRegistry::Get().GetCounter("lineage.cache_hits");
  hits->Add(1);
  obs::Tracer::Instant("lineage", "cache_hit");
  return hit;
}

void LineageCache::Put(const LineageItemPtr& item, const DataPtr& value) {
  auto* m = dynamic_cast<MatrixObject*>(value.get());
  if (m == nullptr) return;  // cache matrices only
  static obs::Counter* puts =
      obs::MetricsRegistry::Get().GetCounter("lineage.cache_puts");
  puts->Add(1);
  int64_t size = m->EstimateSizeInBytes();
  if (size > limit_bytes_) return;
  uint64_t hash = item->hash();
  Entry e;
  e.item = item;
  e.value = value;
  e.size = size;
  e.last_use = clock_.fetch_add(1, std::memory_order_relaxed) + 1;
  bool inserted = false;
  {
    Shard& s = ShardFor(hash);
    std::lock_guard<std::mutex> lock(s.mutex);
    auto [it, fresh] = s.entries.emplace(hash, std::move(e));
    if (!fresh) {
      // Concurrent executors may compute the same intermediate; keep the
      // first copy and just refresh its recency.
      it->second.last_use = clock_.load(std::memory_order_relaxed);
      return;
    }
    inserted = true;
    ++s.puts;
    s.summary.fetch_or(SummaryBit(hash), std::memory_order_release);
    s.generation.fetch_add(1, std::memory_order_release);
  }
  if (inserted) {
    bytes_.fetch_add(size, std::memory_order_relaxed);
    EvictIfNeeded();
  }
}

void LineageCache::EvictIfNeeded() {
  while (bytes_.load(std::memory_order_relaxed) > limit_bytes_) {
    // Pass 1: find the shard holding the globally oldest entry (each shard
    // is locked briefly; the snapshot may be slightly stale, which only
    // perturbs LRU order, never correctness).
    int victim_shard = -1;
    int64_t oldest = std::numeric_limits<int64_t>::max();
    for (int i = 0; i < kNumShards; ++i) {
      std::lock_guard<std::mutex> lock(shards_[static_cast<size_t>(i)].mutex);
      for (const auto& [hash, entry] :
           shards_[static_cast<size_t>(i)].entries) {
        if (entry.last_use < oldest) {
          oldest = entry.last_use;
          victim_shard = i;
        }
      }
    }
    if (victim_shard < 0) return;  // racing evictors emptied the cache
    // Pass 2: evict that shard's current oldest entry and rebuild the
    // resident-hash summary from the survivors.
    Shard& s = shards_[static_cast<size_t>(victim_shard)];
    std::lock_guard<std::mutex> lock(s.mutex);
    if (s.entries.empty()) continue;
    auto victim = s.entries.begin();
    for (auto it = s.entries.begin(); it != s.entries.end(); ++it) {
      if (it->second.last_use < victim->second.last_use) victim = it;
    }
    bytes_.fetch_sub(victim->second.size, std::memory_order_relaxed);
    ++s.evictions;
    s.entries.erase(victim);
    uint64_t summary = 0;
    for (const auto& [hash, entry] : s.entries) summary |= SummaryBit(hash);
    s.summary.store(summary, std::memory_order_release);
  }
}

LineageCacheStats LineageCache::Stats() const {
  LineageCacheStats stats;
  stats.probes = probes_.load(std::memory_order_relaxed);
  stats.bytes = bytes_.load(std::memory_order_relaxed);
  stats.full_hits = full_hits_.load(std::memory_order_relaxed);
  stats.partial_hits = partial_hits_.load(std::memory_order_relaxed);
  for (const Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mutex);
    stats.puts += s.puts;
    stats.evictions += s.evictions;
  }
  return stats;
}

void LineageCache::ResetStats() {
  probes_.store(0, std::memory_order_relaxed);
  full_hits_.store(0, std::memory_order_relaxed);
  partial_hits_.store(0, std::memory_order_relaxed);
  for (Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mutex);
    s.puts = s.evictions = 0;
  }
}

void LineageCache::Clear() {
  for (Shard& s : shards_) {
    std::lock_guard<std::mutex> lock(s.mutex);
    for (const auto& [hash, entry] : s.entries) {
      bytes_.fetch_sub(entry.size, std::memory_order_relaxed);
    }
    s.entries.clear();
    s.summary.store(0, std::memory_order_release);
    // generation stays nonzero: it counts inserts ever, and a cleared shard
    // is re-proven empty by the summary.
  }
}

StatusOr<DataPtr> LineageCache::ProbePartial(const Instruction& instr,
                                             const LineageItemPtr& item,
                                             ExecutionContext* ec) {
  if (policy_ != ReusePolicy::kPartial) return DataPtr(nullptr);
  std::string op = instr.opcode();
  if (op.rfind("sp_", 0) == 0) op = op.substr(3);  // logical opcode
  // Pattern 1: tsmm(cbind(A, v)) with cached tsmm(A):
  //   t(X)%*%X = [[t(A)%*%A, t(A)%*%v], [t(v)%*%A, t(v)%*%v]].
  // Pattern 2: tmm(cbind(A, v), y) with cached tmm(A, y):
  //   t(X)%*%y = rbind(t(A)%*%y, t(v)%*%y).
  if (op != "tsmm" && op != "tmm") return DataPtr(nullptr);
  if (item->inputs().empty()) return DataPtr(nullptr);
  const LineageItemPtr& xi = item->inputs()[0];
  if (xi->opcode() != "cbind" || xi->inputs().size() != 2) {
    return DataPtr(nullptr);
  }
  // The appended part must be a single column; we verify via the runtime
  // value of X below (last column split).
  LineageItemPtr probe_item;
  if (op == "tsmm") {
    probe_item = LineageItem::Node("tsmm", {xi->inputs()[0]});
  } else {
    if (item->inputs().size() < 2) return DataPtr(nullptr);
    probe_item = LineageItem::Node("tmm", {xi->inputs()[0],
                                           item->inputs()[1]});
  }
  if (!MayContain(probe_item->hash())) return DataPtr(nullptr);
  // Pin the cached value via shared_ptr and run the compensation plan
  // outside the shard lock (it may evict concurrently; the copy is safe).
  DataPtr cached_value = LockedLookup(probe_item->hash(), *probe_item);
  if (cached_value == nullptr) return DataPtr(nullptr);
  auto* cached = dynamic_cast<MatrixObject*>(cached_value.get());
  if (cached == nullptr) return DataPtr(nullptr);

  // Compensation plan over the current X (and y for tmm).
  SYSDS_ASSIGN_OR_RETURN(MatrixObject * xobj,
                         ec->GetMatrix(instr.inputs()[0]));
  // A pin failure here is a reuse miss, not a probe error: returning null
  // routes the instruction to normal execution, which surfaces the error.
  auto x_or = xobj->AcquireRead();
  if (!x_or.ok()) return DataPtr(nullptr);
  const MatrixBlock& x = **x_or;
  int64_t n = x.Cols();
  auto c_or = cached->AcquireRead();
  if (!c_or.ok()) {
    xobj->Release();
    return DataPtr(nullptr);
  }
  const MatrixBlock& c = **c_or;
  auto release = [&]() {
    xobj->Release();
    cached->Release();
  };
  // The cached block must match the prefix width of X minus the appended
  // column(s).
  int64_t appended = op == "tsmm" ? n - c.Rows() : n - c.Rows();
  if (appended < 1) {
    release();
    return DataPtr(nullptr);
  }
  auto prefix_or = SliceMatrix(x, 0, x.Rows() - 1, 0, n - appended - 1);
  auto suffix_or = SliceMatrix(x, 0, x.Rows() - 1, n - appended, n - 1);
  if (!prefix_or.ok() || !suffix_or.ok()) {
    release();
    return DataPtr(nullptr);
  }
  const MatrixBlock& a = *prefix_or;
  const MatrixBlock& v = *suffix_or;
  int threads = ec->NumThreads();

  if (op == "tsmm") {
    // w = t(A)%*%v (n-k x k), s = t(v)%*%v (k x k).
    auto w_or = TransposeLeftMatMult(a, v, threads);
    auto s_or = TransposeSelfMatMult(v, /*left=*/true, threads);
    if (!w_or.ok() || !s_or.ok()) {
      release();
      return DataPtr(nullptr);
    }
    int64_t m = n;
    MatrixBlock out = MatrixBlock::Dense(m, m);
    int64_t p = c.Rows();
    for (int64_t i = 0; i < p; ++i) {
      for (int64_t j = 0; j < p; ++j) out.DenseRow(i)[j] = c.Get(i, j);
      for (int64_t j = 0; j < appended; ++j) {
        out.DenseRow(i)[p + j] = w_or->Get(i, j);
        out.DenseRow(p + j)[i] = w_or->Get(i, j);
      }
    }
    for (int64_t i = 0; i < appended; ++i) {
      for (int64_t j = 0; j < appended; ++j) {
        out.DenseRow(p + i)[p + j] = s_or->Get(i, j);
      }
    }
    out.MarkNnzDirty();
    release();
    partial_hits_.fetch_add(1, std::memory_order_relaxed);
    DataPtr result = std::make_shared<MatrixObject>(std::move(out));
    Put(item, result);
    return result;
  }

  // tmm: out = rbind(cached, t(v)%*%y).
  SYSDS_ASSIGN_OR_RETURN(MatrixObject * yobj,
                         ec->GetMatrix(instr.inputs()[1]));
  auto y_or = yobj->AcquireRead();
  if (!y_or.ok()) {
    release();
    return DataPtr(nullptr);
  }
  const MatrixBlock& y = **y_or;
  auto vty_or = TransposeLeftMatMult(v, y, threads);
  yobj->Release();
  if (!vty_or.ok()) {
    release();
    return DataPtr(nullptr);
  }
  std::vector<const MatrixBlock*> parts = {&c, &*vty_or};
  auto out_or = RBind(parts);
  release();
  if (!out_or.ok()) return DataPtr(nullptr);
  partial_hits_.fetch_add(1, std::memory_order_relaxed);
  DataPtr result = std::make_shared<MatrixObject>(std::move(*out_or));
  Put(item, result);
  return result;
}

}  // namespace sysds
