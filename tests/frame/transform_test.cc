#include "runtime/frame/transform.h"

#include <gtest/gtest.h>

#include <cmath>

namespace sysds {
namespace {

FrameBlock PeopleFrame() {
  FrameBlock f(6, {ValueType::kString, ValueType::kFP64, ValueType::kFP64},
               {"city", "age", "income"});
  const char* cities[] = {"graz", "vienna", "graz", "linz", "vienna", "graz"};
  double ages[] = {25, 35, 45, 55, std::nan(""), 65};
  double incomes[] = {30, 40, 50, 60, 70, 80};
  for (int i = 0; i < 6; ++i) {
    f.SetString(i, 0, cities[i]);
    f.SetDouble(i, 1, ages[i]);
    f.SetDouble(i, 2, incomes[i]);
  }
  return f;
}

TEST(TransformSpecTest, ParsesAllSections) {
  FrameBlock f = PeopleFrame();
  auto spec = ParseTransformSpec(
      R"({"recode":["city"],"dummycode":["city"],
          "bin":[{"name":"age","method":"equi-width","numbins":4}],
          "impute":[{"name":"age","method":"mean"}]})",
      f);
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->recode_cols, (std::vector<int64_t>{0}));
  EXPECT_EQ(spec->dummycode_cols, (std::vector<int64_t>{0}));
  ASSERT_EQ(spec->bin_cols.size(), 1u);
  EXPECT_EQ(spec->bin_cols[0].col, 1);
  EXPECT_EQ(spec->bin_cols[0].num_bins, 4);
  ASSERT_EQ(spec->impute_cols.size(), 1u);
}

TEST(TransformSpecTest, ColumnByIndexAndErrors) {
  FrameBlock f = PeopleFrame();
  auto by_index = ParseTransformSpec(R"({"recode":[1]})", f);
  ASSERT_TRUE(by_index.ok());
  EXPECT_EQ(by_index->recode_cols, (std::vector<int64_t>{0}));
  EXPECT_FALSE(ParseTransformSpec(R"({"recode":["nope"]})", f).ok());
  EXPECT_FALSE(ParseTransformSpec(R"({"recode":[9]})", f).ok());
  EXPECT_FALSE(ParseTransformSpec("[]", f).ok());
}

TEST(TransformEncodeTest, RecodeAssignsDenseCodes) {
  FrameBlock f = PeopleFrame();
  auto spec = ParseTransformSpec(R"({"recode":["city"]})", f);
  auto enc = MultiColumnEncoder::Fit(f, *spec);
  ASSERT_TRUE(enc.ok());
  auto x = enc->Apply(f);
  ASSERT_TRUE(x.ok());
  EXPECT_EQ(x->Cols(), 3);
  // Same tokens get the same code; distinct tokens distinct codes 1..3.
  EXPECT_EQ(x->Get(0, 0), x->Get(2, 0));
  EXPECT_EQ(x->Get(1, 0), x->Get(4, 0));
  EXPECT_NE(x->Get(0, 0), x->Get(1, 0));
  EXPECT_GE(x->Get(3, 0), 1.0);
  EXPECT_LE(x->Get(3, 0), 3.0);
  // Pass-through columns unchanged.
  EXPECT_DOUBLE_EQ(x->Get(0, 2), 30.0);
}

TEST(TransformEncodeTest, DummycodeExpandsColumns) {
  FrameBlock f = PeopleFrame();
  auto spec =
      ParseTransformSpec(R"({"recode":["city"],"dummycode":["city"]})", f);
  auto enc = MultiColumnEncoder::Fit(f, *spec);
  ASSERT_TRUE(enc.ok());
  EXPECT_EQ(enc->NumOutputCols(), 3 + 2);  // 3 cities + age + income
  auto x = enc->Apply(f);
  ASSERT_TRUE(x.ok());
  // Each row has exactly one 1 among the first three columns.
  for (int64_t r = 0; r < 6; ++r) {
    double sum = x->Get(r, 0) + x->Get(r, 1) + x->Get(r, 2);
    EXPECT_DOUBLE_EQ(sum, 1.0);
  }
}

TEST(TransformEncodeTest, BinningEquiWidth) {
  FrameBlock f = PeopleFrame();
  auto spec = ParseTransformSpec(
      R"({"bin":[{"name":"income","method":"equi-width","numbins":5}]})", f);
  auto enc = MultiColumnEncoder::Fit(f, *spec);
  auto x = enc->Apply(f);
  ASSERT_TRUE(x.ok());
  EXPECT_DOUBLE_EQ(x->Get(0, 2), 1.0);  // income 30 -> first bin
  EXPECT_DOUBLE_EQ(x->Get(5, 2), 5.0);  // income 80 -> last bin
  for (int64_t r = 0; r < 6; ++r) {
    EXPECT_GE(x->Get(r, 2), 1.0);
    EXPECT_LE(x->Get(r, 2), 5.0);
  }
}

TEST(TransformEncodeTest, ImputeByMeanFillsNaN) {
  FrameBlock f = PeopleFrame();
  auto spec = ParseTransformSpec(
      R"({"impute":[{"name":"age","method":"mean"}]})", f);
  auto enc = MultiColumnEncoder::Fit(f, *spec);
  auto x = enc->Apply(f);
  ASSERT_TRUE(x.ok());
  // Mean of {25,35,45,55,65} = 45 fills row 4.
  EXPECT_DOUBLE_EQ(x->Get(4, 1), 45.0);
  EXPECT_DOUBLE_EQ(x->Get(0, 1), 25.0);
}

TEST(TransformApplyTest, MetaRoundtripMatchesEncode) {
  FrameBlock f = PeopleFrame();
  auto spec = ParseTransformSpec(
      R"({"recode":["city"],"dummycode":["city"],
          "bin":[{"name":"age","numbins":3}],
          "impute":[{"name":"age","method":"mean"}]})",
      f);
  auto enc = MultiColumnEncoder::Fit(f, *spec);
  ASSERT_TRUE(enc.ok());
  auto x1 = enc->Apply(f);
  FrameBlock meta = enc->MetaFrame();
  auto enc2 = MultiColumnEncoder::FromMeta(*spec, meta, f.Cols());
  ASSERT_TRUE(enc2.ok());
  auto x2 = enc2->Apply(f);
  ASSERT_TRUE(x1.ok() && x2.ok());
  EXPECT_TRUE(x1->EqualsApprox(*x2, 0));
}

TEST(TransformApplyTest, UnseenCategoryMapsToZero) {
  FrameBlock f = PeopleFrame();
  auto spec = ParseTransformSpec(R"({"recode":["city"]})", f);
  auto enc = MultiColumnEncoder::Fit(f, *spec);
  FrameBlock f2 = PeopleFrame();
  f2.SetString(0, 0, "salzburg");  // unseen
  auto x = enc->Apply(f2);
  ASSERT_TRUE(x.ok());
  EXPECT_DOUBLE_EQ(x->Get(0, 0), 0.0);
}

TEST(TransformDecodeTest, InvertsRecodeAndDummycode) {
  FrameBlock f = PeopleFrame();
  auto spec =
      ParseTransformSpec(R"({"recode":["city"],"dummycode":["city"]})", f);
  auto enc = MultiColumnEncoder::Fit(f, *spec);
  auto x = enc->Apply(f);
  auto decoded = enc->Decode(*x, f);
  ASSERT_TRUE(decoded.ok());
  for (int64_t r = 0; r < 6; ++r) {
    EXPECT_EQ(decoded->GetString(r, 0), f.GetString(r, 0));
    EXPECT_DOUBLE_EQ(decoded->GetDouble(r, 2), f.GetDouble(r, 2));
  }
}

TEST(TransformEncodeTest, RecodePlusBinOnSameColumnRejected) {
  FrameBlock f = PeopleFrame();
  auto spec = ParseTransformSpec(
      R"({"recode":["age"],"bin":[{"name":"age","numbins":3}]})", f);
  ASSERT_TRUE(spec.ok());
  EXPECT_FALSE(MultiColumnEncoder::Fit(f, *spec).ok());
}

}  // namespace
}  // namespace sysds
