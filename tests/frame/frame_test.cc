#include "runtime/frame/frame_block.h"

#include <gtest/gtest.h>

namespace sysds {
namespace {

FrameBlock SampleFrame() {
  FrameBlock f(3, {ValueType::kString, ValueType::kFP64, ValueType::kInt64},
               {"city", "score", "count"});
  f.SetString(0, 0, "graz");
  f.SetString(1, 0, "vienna");
  f.SetString(2, 0, "linz");
  f.SetDouble(0, 1, 1.5);
  f.SetDouble(1, 1, -2.25);
  f.SetDouble(2, 1, 0.0);
  f.SetDouble(0, 2, 10);
  f.SetDouble(1, 2, 20);
  f.SetDouble(2, 2, 30);
  return f;
}

TEST(FrameBlockTest, SchemaAndNames) {
  FrameBlock f = SampleFrame();
  EXPECT_EQ(f.Rows(), 3);
  EXPECT_EQ(f.Cols(), 3);
  EXPECT_EQ(f.Schema()[0], ValueType::kString);
  EXPECT_EQ(*f.ColumnIndex("score"), 1);
  EXPECT_FALSE(f.ColumnIndex("missing").ok());
}

TEST(FrameBlockTest, DefaultColumnNames) {
  FrameBlock f(2, {ValueType::kFP64, ValueType::kFP64});
  EXPECT_EQ(f.ColumnNames()[0], "C1");
  EXPECT_EQ(f.ColumnNames()[1], "C2");
}

TEST(FrameBlockTest, CellConversions) {
  FrameBlock f = SampleFrame();
  EXPECT_EQ(f.GetString(0, 0), "graz");
  EXPECT_EQ(f.GetString(1, 1), "-2.25");
  EXPECT_DOUBLE_EQ(f.GetDouble(1, 1), -2.25);
  // Setting a string into a numeric column parses it.
  f.SetString(0, 1, "9.5");
  EXPECT_DOUBLE_EQ(f.GetDouble(0, 1), 9.5);
  // Setting a double into a string column formats it.
  f.SetDouble(0, 0, 4.0);
  EXPECT_EQ(f.GetString(0, 0), "4");
}

TEST(FrameBlockTest, AppendRow) {
  FrameBlock f = SampleFrame();
  f.AppendRow();
  EXPECT_EQ(f.Rows(), 4);
  EXPECT_EQ(f.GetString(3, 0), "");
  EXPECT_DOUBLE_EQ(f.GetDouble(3, 1), 0.0);
}

TEST(FrameBlockTest, ToMatrixNumericOnly) {
  FrameBlock f(2, {ValueType::kFP64, ValueType::kInt64});
  f.SetDouble(0, 0, 1.5);
  f.SetDouble(1, 1, 4);
  auto m = f.ToMatrix();
  ASSERT_TRUE(m.ok());
  EXPECT_DOUBLE_EQ(m->Get(0, 0), 1.5);
  EXPECT_DOUBLE_EQ(m->Get(1, 1), 4.0);
  // Non-numeric strings fail.
  FrameBlock bad = SampleFrame();
  EXPECT_FALSE(bad.ToMatrix().ok());
}

TEST(FrameBlockTest, FromMatrixRoundtrip) {
  MatrixBlock m = MatrixBlock::FromValues(2, 2, {1, 2, 3, 4});
  FrameBlock f = FrameBlock::FromMatrix(m);
  EXPECT_EQ(f.Rows(), 2);
  auto back = f.ToMatrix();
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->EqualsApprox(m));
}

TEST(FrameBlockTest, SliceRows) {
  FrameBlock f = SampleFrame();
  auto s = f.SliceRows(1, 2);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->Rows(), 2);
  EXPECT_EQ(s->GetString(0, 0), "vienna");
  EXPECT_FALSE(f.SliceRows(2, 5).ok());
}

}  // namespace
}  // namespace sysds
