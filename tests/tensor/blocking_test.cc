#include "runtime/tensor/blocking.h"

#include <gtest/gtest.h>

namespace sysds {
namespace {

TEST(BlockingTest, BlockSidesDecreaseExponentially) {
  // Paper §2.4: 1024^2, 128^3, 32^4, 16^5, 8^6, 8^7.
  EXPECT_EQ(BlockSideForRank(2), 1024);
  EXPECT_EQ(BlockSideForRank(3), 128);
  EXPECT_EQ(BlockSideForRank(4), 32);
  EXPECT_EQ(BlockSideForRank(5), 16);
  EXPECT_EQ(BlockSideForRank(6), 8);
  EXPECT_EQ(BlockSideForRank(7), 8);
}

TensorBlock Iota(std::vector<int64_t> dims) {
  TensorBlock t(std::move(dims), ValueType::kFP64);
  for (int64_t i = 0; i < t.CellCount(); ++i) {
    t.SetDoubleLinear(i, static_cast<double>(i % 1009));
  }
  return t;
}

TEST(BlockingTest, RoundtripMatrix) {
  TensorBlock t = Iota({300, 170});
  auto blocked = BlockedTensor::FromTensor(t, 128);
  ASSERT_TRUE(blocked.ok());
  EXPECT_EQ(blocked->NumBlocks(), 3 * 2);  // ceil(300/128) x ceil(170/128)
  auto back = blocked->ToTensor();
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->EqualsApprox(t));
}

TEST(BlockingTest, Roundtrip3d) {
  TensorBlock t = Iota({40, 33, 17});
  auto blocked = BlockedTensor::FromTensor(t, 16);
  ASSERT_TRUE(blocked.ok());
  EXPECT_EQ(blocked->NumBlocks(), 3 * 3 * 2);
  auto back = blocked->ToTensor();
  EXPECT_TRUE(back->EqualsApprox(t));
}

TEST(BlockingTest, ReblockSplitAndMerge) {
  TensorBlock t = Iota({100, 100});
  auto big = BlockedTensor::FromTensor(t, 64);
  auto small = big->Reblock(32);
  ASSERT_TRUE(small.ok());
  EXPECT_EQ(small->BlockSide(), 32);
  EXPECT_TRUE(small->ToTensor()->EqualsApprox(t));
  auto merged = small->Reblock(64);
  ASSERT_TRUE(merged.ok());
  EXPECT_TRUE(merged->ToTensor()->EqualsApprox(t));
}

TEST(BlockingTest, ReblockRejectsNonIntegerRatio) {
  TensorBlock t = Iota({50, 50});
  auto blocked = BlockedTensor::FromTensor(t, 32);
  EXPECT_FALSE(blocked->Reblock(24).ok());
  EXPECT_FALSE(blocked->Reblock(0).ok());
}

TEST(BlockingTest, DefaultSideFollowsRank) {
  TensorBlock t2 = Iota({10, 10});
  EXPECT_EQ(BlockedTensor::FromTensor(t2)->BlockSide(), 1024);
  TensorBlock t4 = Iota({4, 4, 4, 4});
  EXPECT_EQ(BlockedTensor::FromTensor(t4)->BlockSide(), 32);
}

TEST(BlockingTest, MatrixTo3dConversionScenario) {
  // The paper's example: on a 3D-tensor/matrix operation, 1024^2 matrix
  // blocks split into 128-sided blocks for the join. We emulate with a
  // small 2D tensor reblocked from the rank-2 to the rank-3 side length.
  TensorBlock t = Iota({256, 256});
  auto as2d = BlockedTensor::FromTensor(t, 256);
  EXPECT_EQ(as2d->NumBlocks(), 1);
  auto for3d = as2d->Reblock(128);
  ASSERT_TRUE(for3d.ok());
  EXPECT_EQ(for3d->NumBlocks(), 4);  // 2x2 aligned tiles, locally converted
  EXPECT_TRUE(for3d->ToTensor()->EqualsApprox(t));
}

}  // namespace
}  // namespace sysds
