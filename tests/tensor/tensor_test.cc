#include "runtime/tensor/tensor_block.h"

#include <gtest/gtest.h>

#include "runtime/tensor/data_tensor.h"

namespace sysds {
namespace {

TEST(TensorBlockTest, ConstructionAndLinearIndex) {
  TensorBlock t({2, 3, 4}, ValueType::kFP64);
  EXPECT_EQ(t.NumDims(), 3);
  EXPECT_EQ(t.CellCount(), 24);
  EXPECT_EQ(t.LinearIndex({0, 0, 0}), 0);
  EXPECT_EQ(t.LinearIndex({1, 2, 3}), 23);
  EXPECT_EQ(t.LinearIndex({0, 1, 2}), 6);
}

class TensorValueTypeTest : public ::testing::TestWithParam<ValueType> {};

TEST_P(TensorValueTypeTest, SetGetRoundtrip) {
  ValueType vt = GetParam();
  TensorBlock t({3, 3}, vt);
  t.SetDouble({1, 2}, 7.0);
  t.SetDouble({2, 0}, -2.0);
  if (vt == ValueType::kBoolean) {
    // Booleans store truthiness.
    EXPECT_DOUBLE_EQ(t.GetDouble({1, 2}), 1.0);
    EXPECT_DOUBLE_EQ(t.GetDouble({2, 0}), 1.0);
  } else {
    EXPECT_DOUBLE_EQ(t.GetDouble({1, 2}), 7.0);
    EXPECT_DOUBLE_EQ(t.GetDouble({2, 0}), -2.0);
  }
  EXPECT_DOUBLE_EQ(t.GetDouble({0, 0}), 0.0);
}

INSTANTIATE_TEST_SUITE_P(AllTypes, TensorValueTypeTest,
                         ::testing::Values(ValueType::kFP64, ValueType::kFP32,
                                           ValueType::kInt64,
                                           ValueType::kInt32,
                                           ValueType::kBoolean,
                                           ValueType::kString));

TEST(TensorBlockTest, StringCells) {
  TensorBlock t({2, 2}, ValueType::kString);
  t.SetString({0, 1}, "hello");
  EXPECT_EQ(t.GetString({0, 1}), "hello");
  EXPECT_EQ(t.GetString({1, 1}), "");
  t.SetString({1, 0}, "2.5");
  EXPECT_DOUBLE_EQ(t.GetDouble({1, 0}), 2.5);
}

TEST(TensorBlockTest, ElementwiseWithTypePromotion) {
  TensorBlock a({2, 2}, ValueType::kInt32);
  TensorBlock b({2, 2}, ValueType::kFP64);
  a.SetDouble({0, 0}, 3);
  b.SetDouble({0, 0}, 1.5);
  auto c = a.ElementwiseBinary(b, '+');
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->GetValueType(), ValueType::kFP64);
  EXPECT_DOUBLE_EQ(c->GetDouble({0, 0}), 4.5);
  // Int / int promotes to FP64.
  auto d = a.ElementwiseBinary(a, '/');
  EXPECT_EQ(d->GetValueType(), ValueType::kFP64);
}

TEST(TensorBlockTest, ElementwiseShapeMismatch) {
  TensorBlock a({2, 2}, ValueType::kFP64);
  TensorBlock b({2, 3}, ValueType::kFP64);
  EXPECT_FALSE(a.ElementwiseBinary(b, '+').ok());
}

TEST(TensorBlockTest, SumAndSlice3d) {
  TensorBlock t({2, 3, 2}, ValueType::kFP64);
  for (int64_t i = 0; i < t.CellCount(); ++i) {
    t.SetDoubleLinear(i, static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(*t.Sum(), 66.0);  // 0+..+11
  auto s = t.Slice({0, 1, 0}, {1, 2, 1});
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->Dims(), (std::vector<int64_t>{2, 2, 2}));
  EXPECT_DOUBLE_EQ(s->GetDouble({0, 0, 0}), t.GetDouble({0, 1, 0}));
  EXPECT_DOUBLE_EQ(s->GetDouble({1, 1, 1}), t.GetDouble({1, 2, 1}));
  EXPECT_FALSE(t.Slice({0, 0, 0}, {2, 2, 1}).ok());  // out of bounds
}

TEST(TensorBlockTest, Reshape) {
  auto t = TensorBlock::FromDoubles({2, 6}, {0, 1, 2, 3, 4, 5,
                                             6, 7, 8, 9, 10, 11});
  auto r = t->Reshape({3, 2, 2});
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->GetDouble({0, 0, 0}), 0.0);
  EXPECT_DOUBLE_EQ(r->GetDouble({2, 1, 1}), 11.0);
  EXPECT_FALSE(t->Reshape({5, 2}).ok());
}

TEST(DataTensorTest, SchemaOnSecondDimension) {
  // Fig 4(a): appliances x features x time with a schema on features.
  auto t = DataTensorBlock::Create(
      {4, 3, 5},
      {ValueType::kFP64, ValueType::kInt64, ValueType::kString});
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->Schema().size(), 3u);
  t->SetDouble({1, 0, 2}, 3.14);
  t->SetDouble({1, 1, 2}, 42.7);  // int column truncates
  t->SetString({1, 2, 2}, "sensor-a");
  EXPECT_DOUBLE_EQ(t->GetDouble({1, 0, 2}), 3.14);
  EXPECT_DOUBLE_EQ(t->GetDouble({1, 1, 2}), 42.0);
  EXPECT_EQ(t->GetString({1, 2, 2}), "sensor-a");
  // Column accessor exposes the composing basic tensors.
  EXPECT_EQ(t->Column(0).GetValueType(), ValueType::kFP64);
  EXPECT_EQ(t->Column(2).GetValueType(), ValueType::kString);
  EXPECT_EQ(t->Column(0).Dims(), (std::vector<int64_t>{4, 5}));
}

TEST(DataTensorTest, SchemaSizeMustMatchDim2) {
  auto bad = DataTensorBlock::Create({4, 3, 5}, {ValueType::kFP64});
  EXPECT_FALSE(bad.ok());
  auto too_few_dims = DataTensorBlock::Create({4}, {ValueType::kFP64});
  EXPECT_FALSE(too_few_dims.ok());
}

}  // namespace
}  // namespace sysds
