#include "runtime/controlprog/data.h"

#include <gtest/gtest.h>

#include "common/statistics.h"
#include "runtime/matrix/op_codes.h"

namespace sysds {
namespace {

TEST(ScalarObjectTest, TypeConversions) {
  auto d = ScalarObject::MakeDouble(2.7);
  auto* ds = dynamic_cast<ScalarObject*>(d.get());
  EXPECT_DOUBLE_EQ(ds->AsDouble(), 2.7);
  EXPECT_EQ(ds->AsInt(), 2);
  EXPECT_TRUE(ds->AsBool());

  auto i = ScalarObject::MakeInt(-3);
  auto* is = dynamic_cast<ScalarObject*>(i.get());
  EXPECT_EQ(is->AsInt(), -3);
  EXPECT_DOUBLE_EQ(is->AsDouble(), -3.0);
  EXPECT_EQ(is->AsString(), "-3");

  auto b = ScalarObject::MakeBool(true);
  auto* bs = dynamic_cast<ScalarObject*>(b.get());
  EXPECT_EQ(bs->AsString(), "TRUE");
  EXPECT_DOUBLE_EQ(bs->AsDouble(), 1.0);

  auto s = ScalarObject::MakeString("4.25");
  auto* ss = dynamic_cast<ScalarObject*>(s.get());
  EXPECT_DOUBLE_EQ(ss->AsDouble(), 4.25);
  EXPECT_FALSE(ss->AsBool());
  auto t = ScalarObject::MakeString("TRUE");
  EXPECT_TRUE(dynamic_cast<ScalarObject*>(t.get())->AsBool());
}

TEST(DataCastTest, HelpfulErrors) {
  DataPtr m = std::make_shared<MatrixObject>(MatrixBlock::Dense(2, 2));
  EXPECT_TRUE(AsMatrix(m, "x").ok());
  auto as_scalar = AsScalar(m, "x");
  ASSERT_FALSE(as_scalar.ok());
  EXPECT_NE(as_scalar.status().message().find("expected scalar"),
            std::string::npos);
  EXPECT_FALSE(AsFrame(m, "x").ok());
  EXPECT_FALSE(AsMatrix(nullptr, "y").ok());
}

TEST(ListObjectTest, AppendAndLookup) {
  ListObject list;
  list.Append(ScalarObject::MakeInt(1), "a");
  list.Append(ScalarObject::MakeInt(2));
  list.Append(ScalarObject::MakeInt(3), "c");
  EXPECT_EQ(list.Size(), 3);
  EXPECT_EQ(dynamic_cast<ScalarObject*>(list.Get(1).get())->AsInt(), 2);
  auto by_name = list.GetByName("c");
  ASSERT_TRUE(by_name.ok());
  EXPECT_EQ(dynamic_cast<ScalarObject*>(by_name->get())->AsInt(), 3);
  EXPECT_FALSE(list.GetByName("missing").ok());
}

TEST(OpCodesTest, NamesRoundTrip) {
  EXPECT_STREQ(BinaryOpName(BinaryOpCode::kIntDiv), "%/%");
  EXPECT_STREQ(UnaryOpName(UnaryOpCode::kNegate), "uminus");
  EXPECT_EQ(AggOpName(AggOpCode::kSum, AggDirection::kAll), "uasum");
  EXPECT_EQ(AggOpName(AggOpCode::kIndexMax, AggDirection::kRow), "uarimax");
  EXPECT_EQ(AggOpName(AggOpCode::kMean, AggDirection::kCol), "uacmean");
}

TEST(OpCodesTest, SparseSafety) {
  EXPECT_TRUE(IsSparseSafeBinary(BinaryOpCode::kMul));
  EXPECT_FALSE(IsSparseSafeBinary(BinaryOpCode::kAdd));
  EXPECT_TRUE(IsSparseSafeUnary(UnaryOpCode::kSqrt));
  EXPECT_FALSE(IsSparseSafeUnary(UnaryOpCode::kExp));
  EXPECT_FALSE(IsSparseSafeUnary(UnaryOpCode::kCos));
}

TEST(OpCodesTest, RModuloSemantics) {
  EXPECT_DOUBLE_EQ(ApplyBinary(BinaryOpCode::kMod, 7, 3), 1.0);
  EXPECT_DOUBLE_EQ(ApplyBinary(BinaryOpCode::kMod, -7, 3), 2.0);
  EXPECT_DOUBLE_EQ(ApplyBinary(BinaryOpCode::kMod, 7, -3), -2.0);
  EXPECT_TRUE(std::isnan(ApplyBinary(BinaryOpCode::kMod, 7, 0)));
}

TEST(StatisticsTest, CountersAndReport) {
  Statistics::Get().Reset();
  Statistics::Get().IncCounter("test.counter", 5);
  Statistics::Get().IncCounter("test.counter");
  EXPECT_EQ(Statistics::Get().GetCounter("test.counter"), 6);
  EXPECT_EQ(Statistics::Get().GetCounter("missing"), 0);
  Statistics::Get().IncInstruction("ba+*", 0.5);
  Statistics::Get().IncInstruction("ba+*", 0.25);
  Statistics::Get().IncInstruction("rand", 0.1);
  std::string report = Statistics::Get().Report(1);
  // Top-1 by time is ba+*; counters always shown.
  EXPECT_NE(report.find("ba+*"), std::string::npos);
  EXPECT_EQ(report.find("rand\t"), std::string::npos);
  EXPECT_NE(report.find("test.counter"), std::string::npos);
  Statistics::Get().Reset();
  EXPECT_EQ(Statistics::Get().GetCounter("test.counter"), 0);
}

}  // namespace
}  // namespace sysds
