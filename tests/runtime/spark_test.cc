#include <gtest/gtest.h>

#include "api/systemds_context.h"
#include "common/statistics.h"
#include "runtime/dist/blocked_matrix.h"
#include "runtime/matrix/lib_datagen.h"
#include "runtime/matrix/lib_elementwise.h"
#include "runtime/matrix/lib_matmult.h"

namespace sysds {
namespace {

MatrixBlock Random(int64_t rows, int64_t cols, double sp, uint64_t seed) {
  return *RandMatrix(rows, cols, -1, 1, sp, seed, RandPdf::kUniform, 1);
}

TEST(BlockedMatrixTest, RoundtripAndZeroBlockSuppression) {
  MatrixBlock m = MatrixBlock::Dense(300, 200);
  m.Set(10, 10, 1.0);
  m.Set(250, 150, 2.0);
  m.MarkNnzDirty();
  BlockedMatrix bm = BlockedMatrix::FromMatrix(m, 128);
  // Only blocks containing nonzeros are materialized.
  EXPECT_EQ(bm.Blocks().size(), 2u);
  EXPECT_EQ(bm.RowBlocks(), 3);
  EXPECT_EQ(bm.ColBlocks(), 2);
  MatrixBlock back = bm.ToMatrix();
  EXPECT_TRUE(back.EqualsApprox(m, 0));
}

TEST(BlockedMatrixTest, DistMatMultMatchesLocal) {
  MatrixBlock a = Random(130, 90, 1.0, 1);
  MatrixBlock b = Random(90, 110, 1.0, 2);
  auto local = MatMult(a, b, 1);
  BlockedMatrix ba = BlockedMatrix::FromMatrix(a, 64);
  BlockedMatrix bb = BlockedMatrix::FromMatrix(b, 64);
  auto dist = DistMatMult(ba, bb);
  ASSERT_TRUE(dist.ok());
  EXPECT_TRUE(dist->ToMatrix().EqualsApprox(*local, 1e-9));
}

TEST(BlockedMatrixTest, DistMatMultSparse) {
  MatrixBlock a = Random(100, 100, 0.05, 3);
  a.ToSparse();
  MatrixBlock b = Random(100, 100, 0.05, 4);
  auto local = MatMult(a, b, 1);
  auto dist = DistMatMult(BlockedMatrix::FromMatrix(a, 32),
                          BlockedMatrix::FromMatrix(b, 32));
  ASSERT_TRUE(dist.ok());
  EXPECT_TRUE(dist->ToMatrix().EqualsApprox(*local, 1e-9));
}

TEST(BlockedMatrixTest, DistTsmmMatchesLocal) {
  MatrixBlock x = Random(200, 60, 1.0, 5);
  auto local = TransposeSelfMatMult(x, true, 1);
  auto dist = DistTsmmLeft(BlockedMatrix::FromMatrix(x, 64));
  ASSERT_TRUE(dist.ok());
  EXPECT_TRUE(dist->ToMatrix().EqualsApprox(*local, 1e-8));
}

TEST(BlockedMatrixTest, DistBinaryAlignedJoin) {
  MatrixBlock a = Random(90, 90, 1.0, 6);
  MatrixBlock b = Random(90, 90, 1.0, 7);
  auto local = BinaryMatrixMatrix(BinaryOpCode::kMul, a, b, 1);
  auto dist = DistBinary(BlockedMatrix::FromMatrix(a, 32),
                         BlockedMatrix::FromMatrix(b, 32), "*");
  ASSERT_TRUE(dist.ok());
  EXPECT_TRUE(dist->ToMatrix().EqualsApprox(*local, 1e-12));
  // Misaligned block sizes rejected.
  auto bad = DistBinary(BlockedMatrix::FromMatrix(a, 32),
                        BlockedMatrix::FromMatrix(b, 64), "+");
  EXPECT_FALSE(bad.ok());
}

TEST(BlockedMatrixTest, DistAggSumMatchesLocal) {
  MatrixBlock a = Random(77, 33, 0.5, 8);
  auto dist = DistAggSum(BlockedMatrix::FromMatrix(a, 32));
  ASSERT_TRUE(dist.ok());
  double local = 0;
  for (int64_t i = 0; i < a.Rows(); ++i) {
    for (int64_t j = 0; j < a.Cols(); ++j) local += a.Get(i, j);
  }
  EXPECT_NEAR(dist->Get(0, 0), local, 1e-9);
}

// End-to-end: force the compiler to select SPARK operators and check that
// script results match CP execution exactly.
TEST(SparkExecutionTest, ForcedSparkMatchesCp) {
  const char* script =
      "X = rand(rows=150, cols=40, seed=9)\n"
      "y = rand(rows=150, cols=1, seed=10)\n"
      "A = t(X) %*% X\n"
      "s = sum(A)\n"
      "Z = X * 2 + 1\n"
      "z = sum(Z)\n";
  DMLConfig cp_config;
  SystemDSContext cp(cp_config);
  auto r1 = cp.Execute(script, {}, {"s", "z"});
  ASSERT_TRUE(r1.ok()) << r1.status();

  DMLConfig spark_config;
  spark_config.force_spark = true;
  spark_config.block_size = 64;
  SystemDSContext spark(spark_config);
  Statistics::Get().Reset();
  auto r2 = spark.Execute(script, {}, {"s", "z"});
  ASSERT_TRUE(r2.ok()) << r2.status();

  EXPECT_NEAR(*r1->GetDouble("s"), *r2->GetDouble("s"), 1e-6);
  EXPECT_NEAR(*r1->GetDouble("z"), *r2->GetDouble("z"), 1e-6);
  // Spark path actually ran (reblocks recorded).
  EXPECT_GT(Statistics::Get().GetCounter("spark.reblocks"), 0);
}

TEST(SparkExecutionTest, MemoryBudgetTriggersSparkSelection) {
  // A tiny CP budget forces large operations to the distributed backend.
  DMLConfig config;
  config.cp_memory_budget = 1024;  // 1KB: everything big goes SPARK
  config.block_size = 64;
  SystemDSContext ctx(config);
  Statistics::Get().Reset();
  auto r = ctx.Execute(
      "X = rand(rows=200, cols=50, seed=1)\n"
      "A = t(X) %*% X\n"
      "s = sum(A)\n",
      {}, {"s"});
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_GT(Statistics::Get().GetCounter("spark.reblocks"), 0);
}

}  // namespace
}  // namespace sysds
