#include "runtime/bufferpool/buffer_pool.h"

#include <gtest/gtest.h>

#include "runtime/controlprog/data.h"

namespace sysds {
namespace {

class BufferPoolTest : public ::testing::Test {
 protected:
  void TearDown() override { MatrixObject::SetBufferPool(nullptr); }
};

TEST_F(BufferPoolTest, TracksRegisteredBytes) {
  BufferPool pool(1 << 30);
  MatrixObject::SetBufferPool(&pool);
  auto m = std::make_shared<MatrixObject>(MatrixBlock::Dense(100, 100, 1.0));
  EXPECT_GE(pool.CachedBytes(), 100 * 100 * 8);
  m.reset();
  EXPECT_EQ(pool.CachedBytes(), 0);
}

TEST_F(BufferPoolTest, EvictsLruAndRestoresTransparently) {
  // Pool fits ~2 of the 80KB blocks.
  BufferPool pool(200 * 1024);
  MatrixObject::SetBufferPool(&pool);
  std::vector<std::shared_ptr<MatrixObject>> objs;
  for (int i = 0; i < 5; ++i) {
    objs.push_back(std::make_shared<MatrixObject>(
        MatrixBlock::Dense(100, 100, static_cast<double>(i + 1))));
  }
  EXPECT_GT(pool.EvictionCount(), 0);
  EXPECT_LE(pool.CachedBytes(), 200 * 1024);
  // The first object was evicted; acquiring restores the exact contents.
  EXPECT_FALSE(objs[0]->IsCached());
  const MatrixBlock& restored = objs[0]->AcquireRead();
  EXPECT_DOUBLE_EQ(restored.Get(50, 50), 1.0);
  EXPECT_EQ(restored.NonZeros(), 100 * 100);
  objs[0]->Release();
}

TEST_F(BufferPoolTest, PinnedObjectsAreNotEvicted) {
  BufferPool pool(1 << 30);
  MatrixObject::SetBufferPool(&pool);
  auto pinned =
      std::make_shared<MatrixObject>(MatrixBlock::Dense(100, 100, 7.0));
  const MatrixBlock& block = pinned->AcquireRead();  // pin
  (void)block;
  pool.SetLimit(1024);  // force eviction pressure
  // Allocate more to trigger eviction attempts.
  auto other =
      std::make_shared<MatrixObject>(MatrixBlock::Dense(100, 100, 8.0));
  EXPECT_TRUE(pinned->IsCached());  // survived because pinned
  pinned->Release();
}

TEST_F(BufferPoolTest, SparseBlocksSurviveEviction) {
  BufferPool pool(64 * 1024);
  MatrixObject::SetBufferPool(&pool);
  MatrixBlock sparse = MatrixBlock::Sparse(500, 500);
  sparse.Set(3, 7, 1.5);
  sparse.Set(400, 499, -2.5);
  auto obj = std::make_shared<MatrixObject>(std::move(sparse));
  // Push it out with dense blocks.
  std::vector<std::shared_ptr<MatrixObject>> filler;
  for (int i = 0; i < 4; ++i) {
    filler.push_back(
        std::make_shared<MatrixObject>(MatrixBlock::Dense(100, 100, 1.0)));
  }
  const MatrixBlock& restored = obj->AcquireRead();
  EXPECT_DOUBLE_EQ(restored.Get(3, 7), 1.5);
  EXPECT_DOUBLE_EQ(restored.Get(400, 499), -2.5);
  EXPECT_EQ(restored.NonZeros(), 2);
  obj->Release();
}

TEST_F(BufferPoolTest, MetadataAvailableWhileEvicted) {
  BufferPool pool(1024);  // everything evicts
  MatrixObject::SetBufferPool(&pool);
  auto a = std::make_shared<MatrixObject>(MatrixBlock::Dense(64, 32, 1.0));
  auto b = std::make_shared<MatrixObject>(MatrixBlock::Dense(16, 8, 1.0));
  EXPECT_EQ(a->Rows(), 64);
  EXPECT_EQ(a->Cols(), 32);
  EXPECT_EQ(a->NonZeros(), 64 * 32);
}

}  // namespace
}  // namespace sysds
