#include "runtime/dist/task_runner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <vector>

#include "common/thread_pool.h"

namespace sysds {
namespace {

TEST(TaskRunnerTest, CommitsEveryTaskExactlyOnce) {
  const int64_t n = 64;
  std::vector<int> commits(static_cast<size_t>(n), 0);
  Status s = RunRetryableTasks(
      n, [](int64_t t) -> StatusOr<int64_t> { return t * 2; },
      [&](int64_t t, int64_t v) {
        EXPECT_EQ(v, t * 2);
        ++commits[static_cast<size_t>(t)];
      });
  ASSERT_TRUE(s.ok());
  for (int c : commits) EXPECT_EQ(c, 1);
}

TEST(TaskRunnerTest, PermanentFailureSurfaces) {
  Status s = RunRetryableTasks(
      8,
      [](int64_t t) -> StatusOr<int64_t> {
        if (t == 5) return RuntimeError("task 5 is broken");
        return t;
      },
      [](int64_t, int64_t) {});
  ASSERT_FALSE(s.ok());
  EXPECT_NE(s.message().find("task 5"), std::string::npos);
}

TEST(TaskRunnerTest, NestedOnPoolWorkerRunsInlineWithoutDeadlock) {
  // parfor bodies execute dist instructions on pool workers; saturate every
  // worker with a caller blocked in its own stage. Before the inline guard
  // this deadlocked: each worker waited on subtasks that no free worker
  // could ever pick up.
  ThreadPool& pool = ThreadPool::Global();
  const size_t workers = pool.num_threads();
  std::atomic<int64_t> committed{0};
  std::vector<std::promise<Status>> results(workers);
  std::vector<std::future<Status>> stages;
  for (size_t w = 0; w < workers; ++w) {
    stages.push_back(results[w].get_future());
    pool.Submit([&results, &committed, w] {
      EXPECT_TRUE(ThreadPool::InCurrentWorker());
      Status s = RunRetryableTasks(
          16, [](int64_t t) -> StatusOr<int64_t> { return t; },
          [&committed](int64_t, int64_t) {
            committed.fetch_add(1, std::memory_order_relaxed);
          });
      results[w].set_value(s);
    });
  }
  for (auto& f : stages) {
    ASSERT_EQ(f.wait_for(std::chrono::seconds(60)), std::future_status::ready)
        << "nested RunRetryableTasks deadlocked on the saturated pool";
    EXPECT_TRUE(f.get().ok());
  }
  EXPECT_EQ(committed.load(), static_cast<int64_t>(workers) * 16);
}

}  // namespace
}  // namespace sysds
