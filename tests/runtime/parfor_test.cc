#include <gtest/gtest.h>

#include "api/systemds_context.h"

namespace sysds {
namespace {

ScriptResult RunScript(const std::string& script,
                       const std::vector<std::string>& outputs,
                       int num_threads = 4) {
  DMLConfig config;
  config.num_threads = num_threads;
  SystemDSContext ctx(config);
  auto r = ctx.Execute(script, {}, outputs);
  EXPECT_TRUE(r.ok()) << r.status();
  return r.ok() ? *r : ScriptResult();
}

TEST(ParForTest, DisjointLeftIndexingMerges) {
  ScriptResult r = RunScript(
      "R = matrix(0, 16, 2)\n"
      "parfor (i in 1:16) {\n"
      "  R[i, 1] = i\n"
      "  R[i, 2] = i * i\n"
      "}\n",
      {"R"});
  MatrixBlock m = *r.GetMatrix("R");
  for (int64_t i = 0; i < 16; ++i) {
    EXPECT_DOUBLE_EQ(m.Get(i, 0), static_cast<double>(i + 1));
    EXPECT_DOUBLE_EQ(m.Get(i, 1), static_cast<double>((i + 1) * (i + 1)));
  }
}

TEST(ParForTest, MatchesSequentialFor) {
  const char* body =
      " (i in 1:10) {\n"
      "  X = rand(rows=20, cols=5, seed=i)\n"
      "  R[i, 1] = sum(t(X) %*% X)\n"
      "}\n";
  ScriptResult seq =
      RunScript(std::string("R = matrix(0, 10, 1)\nfor") + body, {"R"});
  ScriptResult par =
      RunScript(std::string("R = matrix(0, 10, 1)\nparfor") + body, {"R"});
  EXPECT_TRUE(seq.GetMatrix("R")->EqualsApprox(*par.GetMatrix("R"), 1e-9));
}

TEST(ParForTest, ColumnBlockUpdates) {
  ScriptResult r = RunScript(
      "X = rand(rows=30, cols=8, seed=1)\n"
      "Y = matrix(0, 30, 8)\n"
      "parfor (j in 1:8) {\n"
      "  c = X[, j]\n"
      "  Y[, j] = c / max(sum(c), 0.000001)\n"
      "}\n"
      "s = sum(colSums(Y))\n",
      {"s"});
  EXPECT_NEAR(*r.GetDouble("s"), 8.0, 1e-9);
}

TEST(ParForTest, ReadOnlySharedInputs) {
  ScriptResult r = RunScript(
      "X = matrix(3, 10, 10)\n"
      "R = matrix(0, 1, 4)\n"
      "parfor (i in 1:4) {\n"
      "  R[1, i] = sum(X) * i\n"
      "}\n",
      {"R"});
  MatrixBlock m = *r.GetMatrix("R");
  EXPECT_DOUBLE_EQ(m.Get(0, 0), 300.0);
  EXPECT_DOUBLE_EQ(m.Get(0, 3), 1200.0);
}

TEST(ParForTest, NestedControlFlowInBody) {
  ScriptResult r = RunScript(
      "R = matrix(0, 1, 12)\n"
      "parfor (i in 1:12) {\n"
      "  if (i %% 2 == 0) {\n"
      "    R[1, i] = i\n"
      "  } else {\n"
      "    acc = 0\n"
      "    for (j in 1:i) {\n"
      "      acc = acc + j\n"
      "    }\n"
      "    R[1, i] = acc\n"
      "  }\n"
      "}\n"
      "s = sum(R)\n",
      {"s"});
  // Even i: i; odd i: i*(i+1)/2.
  double expect = 0;
  for (int i = 1; i <= 12; ++i) {
    expect += (i % 2 == 0) ? i : i * (i + 1) / 2;
  }
  EXPECT_DOUBLE_EQ(*r.GetDouble("s"), expect);
}

TEST(ParForTest, FunctionCallsInBody) {
  ScriptResult r = RunScript(
      "sq = function(Double x) return (Double y) { y = x * x }\n"
      "R = matrix(0, 6, 1)\n"
      "parfor (i in 1:6) {\n"
      "  R[i, 1] = sq(i)\n"
      "}\n"
      "s = sum(R)\n",
      {"s"});
  EXPECT_DOUBLE_EQ(*r.GetDouble("s"), 1 + 4 + 9 + 16 + 25 + 36);
}

TEST(ParForTest, ScalarResultLastWriterWins) {
  // Scalars are merged last-writer-wins in worker order; with a single
  // worker the result is simply the last iteration.
  ScriptResult r = RunScript(
      "last = 0\n"
      "parfor (i in 1:5) {\n"
      "  last = i\n"
      "}\n",
      {"last"}, /*num_threads=*/1);
  EXPECT_DOUBLE_EQ(*r.GetDouble("last"), 5.0);
}

TEST(ParForTest, EmptyRange) {
  ScriptResult r = RunScript(
      "x = 1\n"
      "parfor (i in 2:1) {\n"
      "  x = 99\n"
      "}\n",
      {"x"});
  EXPECT_DOUBLE_EQ(*r.GetDouble("x"), 1.0);
}

TEST(ParForTest, ErrorInWorkerPropagates) {
  DMLConfig config;
  config.num_threads = 4;
  SystemDSContext ctx(config);
  auto r = ctx.Execute(
      "parfor (i in 1:4) {\n"
      "  if (i == 3) {\n"
      "    stop('worker failure')\n"
      "  }\n"
      "}\n",
      {}, {});
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("worker failure"), std::string::npos);
}

}  // namespace
}  // namespace sysds
