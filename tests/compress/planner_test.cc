#include "runtime/compress/planner.h"

#include <gtest/gtest.h>

#include <cmath>
#include <random>

#include "runtime/matrix/matrix_block.h"

namespace sysds {
namespace {

MatrixBlock FromFn(int64_t rows, int64_t cols, double (*fn)(int64_t, int64_t)) {
  MatrixBlock m = MatrixBlock::Dense(rows, cols);
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) m.DenseRow(r)[c] = fn(r, c);
  }
  m.MarkNnzDirty();
  return m;
}

TEST(CompressionPlannerTest, LongRunsChooseRle) {
  // 20 runs of 500 identical values each: RLE prices far below DDC-1.
  MatrixBlock m = FromFn(10000, 1, [](int64_t r, int64_t) {
    return static_cast<double>(r / 500);
  });
  CompressionPlan plan = CompressionPlanner::Plan(m, CompressionSettings());
  ASSERT_EQ(plan.groups.size(), 1u);
  EXPECT_EQ(plan.groups[0].encoding, ColEncoding::kRLE);
  EXPECT_TRUE(plan.worthwhile);
}

TEST(CompressionPlannerTest, SkewedColumnChoosesSdc) {
  // 95% one default value, 5% exceptions over ~100 distinct values in
  // random positions (so RLE sees many runs and loses to SDC).
  MatrixBlock m = MatrixBlock::Dense(10000, 1);
  std::mt19937 gen(42);
  std::uniform_real_distribution<double> u(0, 1);
  for (int64_t r = 0; r < 10000; ++r) {
    m.DenseRow(r)[0] = u(gen) < 0.95
                           ? 7.0
                           : 1000.0 + static_cast<double>(gen() % 100);
  }
  m.MarkNnzDirty();
  CompressionPlan plan = CompressionPlanner::Plan(m, CompressionSettings());
  ASSERT_EQ(plan.groups.size(), 1u);
  EXPECT_EQ(plan.groups[0].encoding, ColEncoding::kSDC);
  EXPECT_TRUE(plan.worthwhile);
}

TEST(CompressionPlannerTest, MediumCardinalityChoosesDdc2) {
  // ~300 distinct values: over the DDC-1 code domain (255), within DDC-2.
  MatrixBlock m = FromFn(10000, 1, [](int64_t r, int64_t) {
    return static_cast<double>((r * 7919) % 300);
  });
  CompressionPlan plan = CompressionPlanner::Plan(m, CompressionSettings());
  ASSERT_EQ(plan.groups.size(), 1u);
  EXPECT_EQ(plan.groups[0].encoding, ColEncoding::kDDC2);
  EXPECT_GT(plan.groups[0].est_distinct, 255);
}

TEST(CompressionPlannerTest, HighCardinalityStaysUncompressed) {
  // Every value distinct: the dictionary alone would exceed the raw data.
  MatrixBlock m = FromFn(10000, 1, [](int64_t r, int64_t) {
    return static_cast<double>(r) * 1.000001;
  });
  CompressionPlan plan = CompressionPlanner::Plan(m, CompressionSettings());
  ASSERT_EQ(plan.groups.size(), 1u);
  EXPECT_EQ(plan.groups[0].encoding, ColEncoding::kUncompressed);
  EXPECT_FALSE(plan.worthwhile);
}

TEST(CompressionPlannerTest, NanColumnStaysUncompressed) {
  // NaN breaks dictionary ordering (NaN != NaN): the planner must route
  // the column to the uncompressed fallback, never into a dictionary.
  MatrixBlock m = FromFn(1000, 1, [](int64_t r, int64_t) {
    return r == 17 ? std::nan("") : static_cast<double>(r % 5);
  });
  CompressionPlan plan = CompressionPlanner::Plan(m, CompressionSettings());
  ASSERT_EQ(plan.groups.size(), 1u);
  EXPECT_EQ(plan.groups[0].encoding, ColEncoding::kUncompressed);
}

TEST(CompressionPlannerTest, MinRatioGates) {
  MatrixBlock m = FromFn(5000, 4, [](int64_t r, int64_t c) {
    return static_cast<double>((r * (c + 3)) % 5);
  });
  CompressionSettings loose;
  EXPECT_TRUE(CompressionPlanner::Plan(m, loose).worthwhile);
  CompressionSettings strict;
  strict.min_ratio = 1000.0;
  EXPECT_FALSE(CompressionPlanner::Plan(m, strict).worthwhile);
}

TEST(CompressionPlannerTest, CocodeMergesCorrelatedColumns) {
  // Perfectly correlated adjacent columns: the joint dictionary has the
  // same cardinality as either column alone, so one co-coded group with a
  // shared code array beats two separate groups.
  MatrixBlock m = FromFn(10000, 2, [](int64_t r, int64_t c) {
    return static_cast<double>((r % 5) * (c + 1));
  });
  CompressionPlan plan = CompressionPlanner::Plan(m, CompressionSettings());
  ASSERT_EQ(plan.groups.size(), 1u);
  EXPECT_EQ(plan.groups[0].cols.size(), 2u);
  EXPECT_NE(plan.groups[0].encoding, ColEncoding::kUncompressed);
}

TEST(CompressionPlannerTest, CocodeRespectsMaxGroupCols) {
  MatrixBlock m = FromFn(10000, 6, [](int64_t r, int64_t) {
    return static_cast<double>(r % 4);
  });
  CompressionSettings settings;
  settings.max_group_cols = 2;
  CompressionPlan plan = CompressionPlanner::Plan(m, settings);
  for (const PlannedGroup& g : plan.groups) {
    EXPECT_LE(g.cols.size(), 2u);
  }
}

TEST(CompressionPlannerTest, EmptyMatrixNotWorthwhile) {
  MatrixBlock m = MatrixBlock::Dense(0, 3);
  CompressionPlan plan = CompressionPlanner::Plan(m, CompressionSettings());
  EXPECT_FALSE(plan.worthwhile);
  EXPECT_TRUE(plan.groups.empty());
}

TEST(CompressionPlannerTest, PlanIsDeterministic) {
  MatrixBlock m = FromFn(3000, 3, [](int64_t r, int64_t c) {
    return static_cast<double>((r + c) % 11);
  });
  CompressionPlan a = CompressionPlanner::Plan(m, CompressionSettings());
  CompressionPlan b = CompressionPlanner::Plan(m, CompressionSettings());
  ASSERT_EQ(a.groups.size(), b.groups.size());
  for (size_t i = 0; i < a.groups.size(); ++i) {
    EXPECT_EQ(a.groups[i].cols, b.groups[i].cols);
    EXPECT_EQ(a.groups[i].encoding, b.groups[i].encoding);
  }
  EXPECT_EQ(a.est_compressed_bytes, b.est_compressed_bytes);
}

}  // namespace
}  // namespace sysds
