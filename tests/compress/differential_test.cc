// Differential suite for the compressed runtime: every supported operation
// is compared against the uncompressed kernel across seeds, shapes,
// sparsities, and cardinalities. Per-row kernels (Decompress, Get,
// RightMatMult) must match *bit-for-bit* (zero tolerance, NaN-aware);
// aggregated kernels (LeftMatMult, TsmmLeft, Sum) reassociate adds and are
// held to a tight tolerance instead — see DESIGN.md "Compressed linear
// algebra: determinism".

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <random>
#include <vector>

#include "runtime/compress/compressed_block.h"
#include "runtime/compress/planner.h"
#include "runtime/matrix/lib_datagen.h"
#include "runtime/matrix/lib_matmult.h"

namespace sysds {
namespace {

// Deterministic test matrix: each column categorical with `card` distinct
// nonzero values, zeroed with probability (1 - sparsity).
MatrixBlock MakeData(int64_t rows, int64_t cols, int card, double sparsity,
                     uint64_t seed) {
  std::mt19937_64 gen(seed);
  std::uniform_real_distribution<double> u(0, 1);
  MatrixBlock m = MatrixBlock::Dense(rows, cols);
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) {
      double v = u(gen) < sparsity
                     ? 1.0 + static_cast<double>(gen() % card) * 0.5
                     : 0.0;
      m.DenseRow(r)[c] = v;
    }
  }
  m.MarkNnzDirty();
  m.ExamSparsity();
  return m;
}

// Bit-exact comparison that treats NaN cells as equal (EqualsApprox cannot:
// NaN != NaN).
void ExpectBitIdentical(const MatrixBlock& got, const MatrixBlock& want,
                        const std::string& what) {
  ASSERT_EQ(got.Rows(), want.Rows()) << what;
  ASSERT_EQ(got.Cols(), want.Cols()) << what;
  for (int64_t r = 0; r < want.Rows(); ++r) {
    for (int64_t c = 0; c < want.Cols(); ++c) {
      double g = got.Get(r, c), w = want.Get(r, c);
      if (std::isnan(w)) {
        EXPECT_TRUE(std::isnan(g)) << what << " at (" << r << "," << c << ")";
      } else {
        EXPECT_DOUBLE_EQ(g, w) << what << " at (" << r << "," << c << ")";
      }
    }
  }
}

// Tolerance comparison for reassociating kernels; non-finite cells must
// still match exactly (NaN vs NaN, same-signed Inf).
void ExpectClose(const MatrixBlock& got, const MatrixBlock& want, double tol,
                 const std::string& what) {
  ASSERT_EQ(got.Rows(), want.Rows()) << what;
  ASSERT_EQ(got.Cols(), want.Cols()) << what;
  for (int64_t r = 0; r < want.Rows(); ++r) {
    for (int64_t c = 0; c < want.Cols(); ++c) {
      double g = got.Get(r, c), w = want.Get(r, c);
      if (std::isnan(w)) {
        EXPECT_TRUE(std::isnan(g)) << what << " at (" << r << "," << c << ")";
      } else if (std::isinf(w)) {
        EXPECT_EQ(g, w) << what << " at (" << r << "," << c << ")";
      } else {
        EXPECT_NEAR(g, w, tol * (1.0 + std::fabs(w)))
            << what << " at (" << r << "," << c << ")";
      }
    }
  }
}

void ExpectScalarClose(double got, double want, double tol,
                       const std::string& what) {
  if (std::isnan(want)) {
    EXPECT_TRUE(std::isnan(got)) << what;
  } else if (std::isinf(want)) {
    EXPECT_EQ(got, want) << what;
  } else {
    EXPECT_NEAR(got, want, tol * (1.0 + std::fabs(want))) << what;
  }
}

void CheckAllOps(const MatrixBlock& m, uint64_t seed) {
  CompressedMatrixBlock c = CompressedMatrixBlock::Compress(m);

  // Exact per-row kernels.
  ExpectBitIdentical(c.Decompress(), m, "Decompress");
  ExpectBitIdentical(c.Decompress(4), m, "Decompress(4)");
  for (int64_t r = 0; r < m.Rows(); r += 7) {
    for (int64_t col = 0; col < m.Cols(); ++col) {
      double w = m.Get(r, col);
      if (std::isnan(w)) {
        EXPECT_TRUE(std::isnan(c.Get(r, col)));
      } else {
        EXPECT_DOUBLE_EQ(c.Get(r, col), w);
      }
    }
  }

  auto v = RandMatrix(m.Cols(), 1, -1, 1, 1.0, seed + 100, RandPdf::kUniform,
                      1);
  auto got_mv = c.RightMatMult(*v, 2);
  auto want_mv = MatMult(m, *v, 1);
  ASSERT_TRUE(got_mv.ok()) << got_mv.status();
  ASSERT_TRUE(want_mv.ok()) << want_mv.status();
  ExpectBitIdentical(*got_mv, *want_mv, "RightMatMult vec");

  auto b = RandMatrix(m.Cols(), 3, -2, 2, 1.0, seed + 101, RandPdf::kUniform,
                      1);
  auto got_mm = c.RightMatMult(*b, 2);
  auto want_mm = MatMult(m, *b, 1);
  ASSERT_TRUE(got_mm.ok()) << got_mm.status();
  ASSERT_TRUE(want_mm.ok()) << want_mm.status();
  ExpectBitIdentical(*got_mm, *want_mm, "RightMatMult mat");

  // Reassociating kernels: tight tolerance.
  auto y = RandMatrix(m.Rows(), 1, -1, 1, 1.0, seed + 102, RandPdf::kUniform,
                      1);
  auto got_vm = c.LeftMatMult(*y, 2);
  auto want_vm = TransposeLeftMatMult(m, *y, 1);
  ASSERT_TRUE(got_vm.ok()) << got_vm.status();
  ASSERT_TRUE(want_vm.ok()) << want_vm.status();
  ExpectClose(*got_vm, *want_vm, 1e-9, "LeftMatMult");

  auto got_tsmm = c.TsmmLeft(2);
  auto want_tsmm = TransposeSelfMatMult(m, true, 1);
  ASSERT_TRUE(want_tsmm.ok()) << want_tsmm.status();
  if (got_tsmm.ok()) {
    ExpectClose(*got_tsmm, *want_tsmm, 1e-9, "TsmmLeft");
  }

  // Aggregates.
  double want_sum = 0, want_min = m.Rows() > 0 ? m.Get(0, 0) : 0,
         want_max = want_min;
  for (int64_t r = 0; r < m.Rows(); ++r) {
    for (int64_t col = 0; col < m.Cols(); ++col) {
      double val = m.Get(r, col);
      want_sum += val;
      want_min = std::fmin(want_min, val);
      want_max = std::fmax(want_max, val);
    }
  }
  ExpectScalarClose(c.Sum(2), want_sum, 1e-9, "Sum");
  auto agg_min = c.Aggregate(AggOpCode::kMin);
  auto agg_max = c.Aggregate(AggOpCode::kMax);
  if (m.Rows() > 0) {
    ASSERT_TRUE(agg_min.ok()) << agg_min.status();
    ASSERT_TRUE(agg_max.ok()) << agg_max.status();
    EXPECT_DOUBLE_EQ(*agg_min, want_min);
    EXPECT_DOUBLE_EQ(*agg_max, want_max);
  }
  auto cs = c.AggregateCols(AggOpCode::kSum);
  ASSERT_TRUE(cs.ok()) << cs.status();
  for (int64_t col = 0; col < m.Cols(); ++col) {
    double want_col = 0;
    for (int64_t r = 0; r < m.Rows(); ++r) want_col += m.Get(r, col);
    ExpectScalarClose(cs->Get(0, col), want_col, 1e-9, "ColSum");
  }
}

TEST(CompressDifferentialTest, SweepSeedsShapesSparsitiesCardinalities) {
  const int64_t shapes[][2] = {{64, 3}, {500, 8}, {1000, 1}};
  for (uint64_t seed : {11u, 12u}) {
    for (const auto& shape : shapes) {
      for (double sparsity : {1.0, 0.2}) {
        for (int card : {2, 7, 40}) {
          SCOPED_TRACE(testing::Message()
                       << "seed=" << seed << " shape=" << shape[0] << "x"
                       << shape[1] << " sparsity=" << sparsity
                       << " card=" << card);
          CheckAllOps(MakeData(shape[0], shape[1], card, sparsity, seed),
                      seed);
        }
      }
    }
  }
}

TEST(CompressDifferentialTest, SingleRowMatrix) {
  CheckAllOps(MakeData(1, 4, 3, 1.0, 21), 21);
}

TEST(CompressDifferentialTest, AllConstantMatrix) {
  MatrixBlock m = MatrixBlock::Dense(400, 3);
  for (int64_t r = 0; r < 400; ++r) {
    for (int64_t c = 0; c < 3; ++c) m.DenseRow(r)[c] = 3.14;
  }
  m.MarkNnzDirty();
  CheckAllOps(m, 22);
  CompressedMatrixBlock c = CompressedMatrixBlock::Compress(m);
  EXPECT_GT(c.CompressionRatio(), 4.0);
}

TEST(CompressDifferentialTest, AllZeroMatrix) {
  MatrixBlock m = MatrixBlock::Dense(256, 4);
  m.MarkNnzDirty();
  m.ExamSparsity();
  CheckAllOps(m, 23);
}

// Satellite regression: NaN values must never enter a dictionary (NaN !=
// NaN breaks map ordering and would silently drop or duplicate tuples).
// Columns containing NaN fall back to uncompressed storage and still
// roundtrip losslessly.
TEST(CompressDifferentialTest, NanColumnRoundtripsLossless) {
  MatrixBlock m = MakeData(300, 4, 5, 1.0, 31);
  m.DenseRow(13)[1] = std::nan("");
  m.DenseRow(250)[1] = std::nan("");
  m.MarkNnzDirty();
  CheckAllOps(m, 31);
  CompressedMatrixBlock c = CompressedMatrixBlock::Compress(m);
  EXPECT_TRUE(std::isnan(c.Get(13, 1)));
  EXPECT_TRUE(std::isnan(c.Get(250, 1)));
  // The other columns still compress.
  EXPECT_GT(c.NumCompressedColumns(), 0);
}

TEST(CompressDifferentialTest, InfValuesRoundtrip) {
  MatrixBlock m = MakeData(200, 3, 4, 1.0, 32);
  m.DenseRow(7)[0] = std::numeric_limits<double>::infinity();
  m.DenseRow(8)[0] = -std::numeric_limits<double>::infinity();
  m.MarkNnzDirty();
  CheckAllOps(m, 32);
}

// Satellite regression: zero-skip divergence. A compressed kernel may only
// skip a column whose multiplier is zero when the column holds no
// non-finite values — finite * 0 is exactly +-0 and never changes the
// accumulator, but Inf * 0 must produce NaN exactly like the uncompressed
// kernel does.
TEST(CompressDifferentialTest, ZeroVectorTimesInfColumnMatchesUncompressed) {
  MatrixBlock m = MakeData(100, 3, 4, 1.0, 33);
  m.DenseRow(40)[2] = std::numeric_limits<double>::infinity();
  m.MarkNnzDirty();
  CompressedMatrixBlock c = CompressedMatrixBlock::Compress(m);
  MatrixBlock v = MatrixBlock::Dense(3, 1);
  v.DenseRow(0)[0] = 1.0;
  v.DenseRow(1)[0] = 0.5;
  v.DenseRow(2)[0] = 0.0;  // zero multiplier against the Inf column
  v.MarkNnzDirty();
  auto got = c.RightMatMult(v, 2);
  auto want = MatMult(m, v, 1);
  ASSERT_TRUE(got.ok()) << got.status();
  ASSERT_TRUE(want.ok()) << want.status();
  EXPECT_TRUE(std::isnan(want->Get(40, 0)));  // Inf * 0 in the reference
  ExpectBitIdentical(*got, *want, "zero-vector x Inf-column");
}

// Parallel compression and parallel kernels must be deterministic.
TEST(CompressDifferentialTest, ParallelCompressionDeterministic) {
  MatrixBlock m = MakeData(2000, 6, 9, 0.7, 41);
  CompressionPlan plan = CompressionPlanner::Plan(m, CompressionSettings());
  CompressedMatrixBlock c1 = CompressedMatrixBlock::Compress(m, plan, 1);
  CompressedMatrixBlock c4 = CompressedMatrixBlock::Compress(m, plan, 4);
  ExpectBitIdentical(c1.Decompress(), c4.Decompress(), "parallel compress");
  auto t1 = c4.TsmmLeft(1);
  auto t4 = c4.TsmmLeft(4);
  ASSERT_TRUE(t1.ok()) << t1.status();
  ASSERT_TRUE(t4.ok()) << t4.status();
  ExpectBitIdentical(*t4, *t1, "parallel tsmm");
}

TEST(CompressDifferentialTest, ShapeMismatchRejected) {
  MatrixBlock m = MakeData(50, 4, 3, 1.0, 51);
  CompressedMatrixBlock c = CompressedMatrixBlock::Compress(m);
  MatrixBlock bad = MatrixBlock::Dense(3, 1);
  EXPECT_FALSE(c.RightMatMult(bad, 1).ok());
  MatrixBlock bad_left = MatrixBlock::Dense(49, 1);
  EXPECT_FALSE(c.LeftMatMult(bad_left, 1).ok());
}

}  // namespace
}  // namespace sysds
