#include "runtime/compress/compressed_block.h"

#include <gtest/gtest.h>

#include "runtime/matrix/lib_datagen.h"
#include "runtime/matrix/lib_matmult.h"

namespace sysds {
namespace {

// Low-cardinality matrix: each column has `card` distinct values.
MatrixBlock Categorical(int64_t rows, int64_t cols, int card,
                        uint64_t seed) {
  auto m = RandMatrix(rows, cols, 0, 1, 1.0, seed, RandPdf::kUniform, 1);
  MatrixBlock out = MatrixBlock::Dense(rows, cols);
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) {
      int bucket = static_cast<int>(m->Get(r, c) * card);
      out.DenseRow(r)[c] = static_cast<double>(bucket % card);
    }
  }
  out.MarkNnzDirty();
  return out;
}

TEST(CompressedBlockTest, RoundtripExact) {
  MatrixBlock m = Categorical(200, 10, 7, 1);
  CompressedMatrixBlock c = CompressedMatrixBlock::Compress(m);
  EXPECT_EQ(c.NumCompressedColumns(), 10);
  EXPECT_TRUE(c.Decompress().EqualsApprox(m, 0));
  for (int64_t r = 0; r < m.Rows(); r += 17) {
    for (int64_t col = 0; col < m.Cols(); ++col) {
      EXPECT_DOUBLE_EQ(c.Get(r, col), m.Get(r, col));
    }
  }
}

TEST(CompressedBlockTest, CompressionRatioOnCategoricalData) {
  MatrixBlock m = Categorical(5000, 8, 5, 2);
  CompressedMatrixBlock c = CompressedMatrixBlock::Compress(m);
  // 8 bytes/cell dense vs ~1 byte/cell DDC-1: ratio close to 8.
  EXPECT_GT(c.CompressionRatio(), 6.0);
}

TEST(CompressedBlockTest, HighCardinalityFallsBack) {
  auto m = RandMatrix(400, 3, 0, 1, 1.0, 3, RandPdf::kUniform, 1);
  CompressedMatrixBlock c = CompressedMatrixBlock::Compress(*m);
  EXPECT_EQ(c.NumCompressedColumns(), 0);  // all values distinct
  EXPECT_LE(c.CompressionRatio(), 1.05);
  EXPECT_TRUE(c.Decompress().EqualsApprox(*m, 0));
}

TEST(CompressedBlockTest, MixedColumns) {
  MatrixBlock m = MatrixBlock::Dense(300, 2);
  for (int64_t r = 0; r < 300; ++r) {
    m.DenseRow(r)[0] = static_cast<double>(r % 3);        // compressible
    m.DenseRow(r)[1] = 0.001 * static_cast<double>(r);    // 300 distinct
  }
  m.MarkNnzDirty();
  CompressedMatrixBlock c = CompressedMatrixBlock::Compress(m);
  EXPECT_EQ(c.NumCompressedColumns(), 1);
  EXPECT_TRUE(c.Decompress().EqualsApprox(m, 0));
}

TEST(CompressedBlockTest, SumAndColSumsMatchUncompressed) {
  MatrixBlock m = Categorical(500, 6, 9, 4);
  CompressedMatrixBlock c = CompressedMatrixBlock::Compress(m);
  double expect = 0;
  for (int64_t r = 0; r < m.Rows(); ++r) {
    for (int64_t col = 0; col < m.Cols(); ++col) expect += m.Get(r, col);
  }
  EXPECT_NEAR(c.Sum(), expect, 1e-9);
  MatrixBlock cs = c.ColSums();
  for (int64_t col = 0; col < m.Cols(); ++col) {
    double col_expect = 0;
    for (int64_t r = 0; r < m.Rows(); ++r) col_expect += m.Get(r, col);
    EXPECT_NEAR(cs.Get(0, col), col_expect, 1e-9);
  }
}

TEST(CompressedBlockTest, MatVecRightMatchesUncompressed) {
  MatrixBlock m = Categorical(300, 5, 4, 5);
  auto v = RandMatrix(5, 1, -1, 1, 1.0, 6, RandPdf::kUniform, 1);
  CompressedMatrixBlock c = CompressedMatrixBlock::Compress(m);
  auto compressed = c.MatVecRight(*v);
  ASSERT_TRUE(compressed.ok());
  auto plain = MatMult(m, *v, 1);
  EXPECT_TRUE(compressed->EqualsApprox(*plain, 1e-9));
  MatrixBlock bad = MatrixBlock::Dense(4, 1);
  EXPECT_FALSE(c.MatVecRight(bad).ok());
}

TEST(CompressedBlockTest, VecMatLeftMatchesUncompressed) {
  MatrixBlock m = Categorical(300, 5, 4, 7);
  auto y = RandMatrix(300, 1, -1, 1, 1.0, 8, RandPdf::kUniform, 1);
  CompressedMatrixBlock c = CompressedMatrixBlock::Compress(m);
  auto compressed = c.VecMatLeft(*y);
  ASSERT_TRUE(compressed.ok());
  auto plain = TransposeLeftMatMult(m, *y, 1);
  EXPECT_TRUE(compressed->EqualsApprox(*plain, 1e-9));
}

TEST(CompressedBlockTest, ScaleOperatesOnDictionaries) {
  MatrixBlock m = Categorical(100, 4, 6, 9);
  CompressedMatrixBlock c = CompressedMatrixBlock::Compress(m);
  CompressedMatrixBlock scaled = c.ScaleByScalar(2.5);
  MatrixBlock expect = m;
  for (int64_t r = 0; r < m.Rows(); ++r) {
    for (int64_t col = 0; col < m.Cols(); ++col) {
      expect.Set(r, col, m.Get(r, col) * 2.5);
    }
  }
  EXPECT_TRUE(scaled.Decompress().EqualsApprox(expect, 1e-12));
  // Still compressed (codes untouched).
  EXPECT_EQ(scaled.NumCompressedColumns(), 4);
}

}  // namespace
}  // namespace sysds
