// End-to-end integration of compressed linear algebra: the compiler rewrite
// injects compress() before loops, instructions dispatch to compressed
// kernels, and the buffer pool spills/restores the compressed form. Every
// script runs in a compression-enabled and a compression-disabled context
// and the outputs must agree (identical where the compressed kernel is
// bit-exact, tight tolerance where it reassociates).

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <memory>
#include <string>

#include "api/systemds_context.h"
#include "obs/metrics.h"
#include "runtime/compress/compressed_block.h"
#include "runtime/controlprog/data.h"

namespace sysds {
namespace {

class CompressIntegrationTest : public ::testing::Test {
 protected:
  void TearDown() override { MatrixObject::SetBufferPool(nullptr); }
};

// Low-cardinality input: the planner should always find this worthwhile.
MatrixBlock Categorical(int64_t rows, int64_t cols, int card, uint64_t seed) {
  MatrixBlock m = MatrixBlock::Dense(rows, cols);
  uint64_t state = seed * 6364136223846793005ULL + 1442695040888963407ULL;
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t c = 0; c < cols; ++c) {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      m.DenseRow(r)[c] = static_cast<double>((state >> 33) % card);
    }
  }
  m.MarkNnzDirty();
  return m;
}

std::unique_ptr<SystemDSContext> MakeCtx(bool compression) {
  return SystemDSContext::Builder()
      .Compression(compression)
      .CompressionMinSize(1024)  // test matrices are small
      .Build();
}

int64_t Counter(const std::string& name) {
  return obs::MetricsRegistry::Get().GetCounter(name)->Value();
}

// The lmDS-style pattern from the paper: a sweep loop re-using one
// read-only dataset. X %*% w is bit-exact under compression, so the
// accumulated scalar must be *identical*, not just close.
TEST_F(CompressIntegrationTest, ForLoopSweepMatchesUncompressedExactly) {
  const std::string script =
      "acc = 0\n"
      "for (i in 1:6) {\n"
      "  p = X %*% w\n"
      "  acc = acc + sum(p) * i\n"
      "}\n";
  MatrixBlock x = Categorical(600, 8, 5, 7);
  MatrixBlock w = Categorical(8, 1, 9, 8);
  Inputs inputs;
  inputs.Matrix("X", x).Matrix("w", w);
  Outputs outs("acc");

  int64_t blocks_before = Counter("compress.compressed_blocks");
  int64_t hits_before = Counter("compress.dispatch_hits");
  auto rc = MakeCtx(true)->Execute(script, inputs, outs);
  int64_t blocks_after = Counter("compress.compressed_blocks");
  int64_t hits_after = Counter("compress.dispatch_hits");
  auto ru = MakeCtx(false)->Execute(script, inputs, outs);
  ASSERT_TRUE(rc.ok()) << rc.status();
  ASSERT_TRUE(ru.ok()) << ru.status();

  auto vc = rc->GetDouble("acc");
  auto vu = ru->GetDouble("acc");
  ASSERT_TRUE(vc.ok()) << vc.status();
  ASSERT_TRUE(vu.ok()) << vu.status();
  EXPECT_EQ(*vc, *vu);
  // The rewrite must have compressed X and dispatched the multiplies
  // through the compressed kernel — otherwise this test is vacuous.
  EXPECT_GT(blocks_after, blocks_before);
  EXPECT_GT(hits_after, hits_before);
}

TEST_F(CompressIntegrationTest, WhileLoopSweepMatchesUncompressedExactly) {
  const std::string script =
      "acc = 0\n"
      "i = 0\n"
      "while (i < 4) {\n"
      "  p = X %*% w\n"
      "  acc = acc + sum(p)\n"
      "  i = i + 1\n"
      "}\n";
  MatrixBlock x = Categorical(500, 6, 4, 9);
  MatrixBlock w = Categorical(6, 1, 7, 10);
  Inputs inputs;
  inputs.Matrix("X", x).Matrix("w", w);
  Outputs outs("acc");

  int64_t hits_before = Counter("compress.dispatch_hits");
  auto rc = MakeCtx(true)->Execute(script, inputs, outs);
  int64_t hits_after = Counter("compress.dispatch_hits");
  auto ru = MakeCtx(false)->Execute(script, inputs, outs);
  ASSERT_TRUE(rc.ok()) << rc.status();
  ASSERT_TRUE(ru.ok()) << ru.status();
  EXPECT_EQ(*rc->GetDouble("acc"), *ru->GetDouble("acc"));
  EXPECT_GT(hits_after, hits_before);
}

// t(X) %*% X and sum(X) reassociate adds in the compressed kernels: the
// sweep must still agree to tight tolerance and actually hit the
// compressed tsmm/aggregate paths.
TEST_F(CompressIntegrationTest, TsmmAndAggregateSweepWithinTolerance) {
  const std::string script =
      "acc = 0\n"
      "for (i in 1:4) {\n"
      "  G = t(X) %*% X\n"
      "  acc = acc + sum(G) + sum(X)\n"
      "}\n"
      "R = G\n";
  MatrixBlock x = Categorical(800, 6, 5, 11);
  Inputs inputs;
  inputs.Matrix("X", x);
  Outputs outs = Outputs::FromVector({"acc", "R"});

  int64_t hits_before = Counter("compress.dispatch_hits");
  auto rc = MakeCtx(true)->Execute(script, inputs, outs);
  int64_t hits_after = Counter("compress.dispatch_hits");
  auto ru = MakeCtx(false)->Execute(script, inputs, outs);
  ASSERT_TRUE(rc.ok()) << rc.status();
  ASSERT_TRUE(ru.ok()) << ru.status();
  double vc = *rc->GetDouble("acc"), vu = *ru->GetDouble("acc");
  EXPECT_NEAR(vc, vu, 1e-9 * (1.0 + std::fabs(vu)));
  auto mc = rc->GetMatrix("R");
  auto mu = ru->GetMatrix("R");
  ASSERT_TRUE(mc.ok()) << mc.status();
  ASSERT_TRUE(mu.ok()) << mu.status();
  EXPECT_TRUE(mc->EqualsApprox(*mu, 1e-9));
  EXPECT_GT(hits_after, hits_before);
}

// High-cardinality input: the planner's min-ratio gate rejects it, the
// injected compress() passes through, and the script still runs correctly.
TEST_F(CompressIntegrationTest, NotWorthwhileInputPassesThrough) {
  const std::string script =
      "acc = 0\n"
      "for (i in 1:3) {\n"
      "  acc = acc + sum(X %*% w)\n"
      "}\n";
  MatrixBlock x = MatrixBlock::Dense(400, 4);
  for (int64_t r = 0; r < 400; ++r) {
    for (int64_t c = 0; c < 4; ++c) {
      x.DenseRow(r)[c] = static_cast<double>(r * 4 + c) * 1.0000001;
    }
  }
  x.MarkNnzDirty();
  MatrixBlock w = Categorical(4, 1, 5, 12);
  Inputs inputs;
  inputs.Matrix("X", x).Matrix("w", w);
  Outputs outs("acc");

  int64_t skipped_before = Counter("compress.skipped_not_worthwhile");
  auto rc = MakeCtx(true)->Execute(script, inputs, outs);
  int64_t skipped_after = Counter("compress.skipped_not_worthwhile");
  auto ru = MakeCtx(false)->Execute(script, inputs, outs);
  ASSERT_TRUE(rc.ok()) << rc.status();
  ASSERT_TRUE(ru.ok()) << ru.status();
  EXPECT_EQ(*rc->GetDouble("acc"), *ru->GetDouble("acc"));
  EXPECT_GT(skipped_after, skipped_before);
}

// Satellite regression: a NaN column routes to the uncompressed fallback
// group and flows through the compressed dispatch losslessly.
TEST_F(CompressIntegrationTest, NanColumnSurvivesCompressedSweep) {
  const std::string script =
      "for (i in 1:3) {\n"
      "  P = X %*% w\n"
      "}\n";
  MatrixBlock x = Categorical(300, 4, 5, 13);
  x.DenseRow(42)[2] = std::nan("");
  x.MarkNnzDirty();
  MatrixBlock w = Categorical(4, 1, 6, 14);
  Inputs inputs;
  inputs.Matrix("X", x).Matrix("w", w);
  Outputs outs("P");

  auto rc = MakeCtx(true)->Execute(script, inputs, outs);
  auto ru = MakeCtx(false)->Execute(script, inputs, outs);
  ASSERT_TRUE(rc.ok()) << rc.status();
  ASSERT_TRUE(ru.ok()) << ru.status();
  auto mc = rc->GetMatrix("P");
  auto mu = ru->GetMatrix("P");
  ASSERT_TRUE(mc.ok()) << mc.status();
  ASSERT_TRUE(mu.ok()) << mu.status();
  ASSERT_EQ(mc->Rows(), mu->Rows());
  for (int64_t r = 0; r < mu->Rows(); ++r) {
    double g = mc->Get(r, 0), want = mu->Get(r, 0);
    if (std::isnan(want)) {
      EXPECT_TRUE(std::isnan(g)) << "row " << r;
    } else {
      EXPECT_DOUBLE_EQ(g, want) << "row " << r;
    }
  }
}

// Buffer-pool integration: a compressed MatrixObject spills in compressed
// form and restores losslessly, both through AcquireCompressed and through
// the decompress-on-read path.
TEST_F(CompressIntegrationTest, CompressedSpillAndRestore) {
  MatrixBlock m = Categorical(500, 5, 6, 15);
  CompressedMatrixBlock c = CompressedMatrixBlock::Compress(m);
  ASSERT_GT(c.NumCompressedColumns(), 0);
  int64_t compressed_size = c.EstimateSizeInBytes();
  MatrixObject obj(std::move(c));
  EXPECT_TRUE(obj.HasCompressed());
  // Accounted at compressed size, far below the dense size.
  EXPECT_LT(obj.EstimateSizeInBytes(), m.EstimateSizeInBytes());
  EXPECT_EQ(obj.EstimateSizeInBytes(), compressed_size);

  std::string path = ::testing::TempDir() + "sysds_compress_spill_test.bin";
  auto evicted = obj.EvictTo(path);
  ASSERT_TRUE(evicted.ok()) << evicted.status();
  EXPECT_TRUE(*evicted);
  EXPECT_TRUE(obj.HasCompressed());  // spilled compressed form

  // Restore the compressed representation directly.
  auto comp = obj.AcquireCompressed();
  ASSERT_TRUE(comp.ok()) << comp.status();
  EXPECT_TRUE((*comp)->Decompress().EqualsApprox(m, 0));
  obj.Release();

  // Decompress-on-read also reproduces the original block.
  auto read = obj.AcquireRead();
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_TRUE((*read)->EqualsApprox(m, 0));
  obj.Release();
  std::remove(path.c_str());
}

}  // namespace
}  // namespace sysds
