// Chaos suite (ctest -L chaos): runs the federated, distributed, and
// parameter-server integration paths under deterministic fault injection —
// message drops, delays, payload corruption, executor crashes, and one
// permanently dead component per scenario — across three fixed seeds.
// Federated and distributed results must be BIT-IDENTICAL to the
// fault-free run: every retry re-executes the same deterministic kernel,
// local fallbacks use the same parallelism-1 kernels as the sites, and
// per-task commits merge in a fixed serial order. The parameter server is
// asserted with convergence tolerances instead, because concurrent
// gradient pushes reorder floating-point accumulation even without faults.

#include <gtest/gtest.h>

#include <cmath>
#include <string>

#include "common/faults.h"
#include "fed/federated.h"
#include "obs/metrics.h"
#include "runtime/dist/blocked_matrix.h"
#include "runtime/matrix/lib_datagen.h"
#include "runtime/matrix/lib_matmult.h"
#include "runtime/ps/param_server.h"

namespace sysds {
namespace {

int64_t Counter(const std::string& name) {
  return obs::MetricsRegistry::Get().CounterValue(name);
}

MatrixBlock Random(int64_t rows, int64_t cols, uint64_t seed) {
  return *RandMatrix(rows, cols, -1, 1, 1.0, seed, RandPdf::kUniform, 1);
}

class ChaosTest : public ::testing::TestWithParam<uint64_t> {
 protected:
  void TearDown() override { FaultInjector::Get().Disable(); }

  // The acceptance profile: 10% message drop plus occasional delays,
  // corrupted payloads, and crashes. Dead targets are added per scenario.
  static FaultConfig ChaosConfig(uint64_t seed) {
    FaultConfig c;
    c.enabled = true;
    c.seed = seed;
    c.profile = FaultProfile::Standard();
    return c;
  }
};

TEST_P(ChaosTest, FederatedOpsBitIdenticalWithDeadSite) {
  MatrixBlock x = Random(120, 10, 3);
  MatrixBlock y = Random(120, 2, 4);
  MatrixBlock v = Random(10, 1, 5);

  // Fault-free reference run.
  MatrixBlock tsmm_ref, tmm_ref, mv_ref, cs_ref;
  {
    FederatedRegistry clean(3);
    auto fx = FederatedMatrix::Distribute(&clean, x, "X");
    auto fy = FederatedMatrix::Distribute(&clean, y, "Y");
    ASSERT_TRUE(fx.ok() && fy.ok());
    tsmm_ref = *fx->TsmmLeft();
    tmm_ref = *fx->Tmm(*fy);
    mv_ref = *fx->MatVec(v);
    cs_ref = *fx->ColSums();
  }

  int64_t retries_before = Counter("fault.fed.retries");
  int64_t fallbacks_before = Counter("fault.fed.local_fallbacks");

  // Chaos run: standard fault rates plus site 2 permanently dead.
  FaultConfig config = ChaosConfig(GetParam());
  config.profile.dead_targets.push_back({FaultLayer::kFederated, 2});
  ScopedFaultInjection chaos(config);

  FederatedRegistry registry(3);
  auto fx = FederatedMatrix::Distribute(&registry, x, "X");
  auto fy = FederatedMatrix::Distribute(&registry, y, "Y");
  ASSERT_TRUE(fx.ok() && fy.ok());

  auto tsmm = fx->TsmmLeft();
  ASSERT_TRUE(tsmm.ok()) << tsmm.status();
  EXPECT_TRUE(tsmm->EqualsApprox(tsmm_ref, 0));

  auto tmm = fx->Tmm(*fy);
  ASSERT_TRUE(tmm.ok()) << tmm.status();
  EXPECT_TRUE(tmm->EqualsApprox(tmm_ref, 0));

  auto mv = fx->MatVec(v);
  ASSERT_TRUE(mv.ok()) << mv.status();
  EXPECT_TRUE(mv->EqualsApprox(mv_ref, 0));

  auto cs = fx->ColSums();
  ASSERT_TRUE(cs.ok()) << cs.status();
  EXPECT_TRUE(cs->EqualsApprox(cs_ref, 0));

  auto collected = fx->Collect();
  ASSERT_TRUE(collected.ok()) << collected.status();
  EXPECT_TRUE(collected->EqualsApprox(x, 0));

  // The dead site forces retries and then the local-CP fallback.
  EXPECT_GT(Counter("fault.fed.retries"), retries_before);
  EXPECT_GT(Counter("fault.fed.local_fallbacks"), fallbacks_before);
}

TEST_P(ChaosTest, FederatedLmSurvivesChaos) {
  MatrixBlock x = Random(200, 12, 6);
  MatrixBlock w = Random(12, 1, 7);
  auto y = MatMult(x, w, 1);

  FaultConfig config = ChaosConfig(GetParam());
  config.profile.dead_targets.push_back({FaultLayer::kFederated, 1});
  ScopedFaultInjection chaos(config);

  FederatedRegistry registry(4);
  auto fx = FederatedMatrix::Distribute(&registry, x, "X");
  auto fy = FederatedMatrix::Distribute(&registry, *y, "y");
  ASSERT_TRUE(fx.ok() && fy.ok());
  auto b = FederatedLmDS(*fx, *fy, 1e-10);
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_TRUE(b->EqualsApprox(w, 1e-6));
}

TEST_P(ChaosTest, DistMatMultBitIdenticalUnderExecutorCrashes) {
  MatrixBlock a = Random(256, 64, 11);
  MatrixBlock b = Random(64, 256, 12);
  BlockedMatrix ba = BlockedMatrix::FromMatrix(a, 32);
  BlockedMatrix bb = BlockedMatrix::FromMatrix(b, 32);

  auto reference = DistMatMult(ba, bb);
  ASSERT_TRUE(reference.ok());

  int64_t crashes_before = Counter("fault.injected.crash");
  int64_t retries_before = Counter("fault.dist.retries");

  // Crash-heavy profile: every task risks losing its attempt and being
  // re-executed; with 8x8 output blocks each seed injects several crashes.
  FaultConfig config = ChaosConfig(GetParam());
  config.profile.crash_prob = 0.08;
  config.profile.delay_prob = 0.05;
  ScopedFaultInjection chaos(config);

  auto chaotic = DistMatMult(ba, bb);
  ASSERT_TRUE(chaotic.ok()) << chaotic.status();
  EXPECT_TRUE(chaotic->ToMatrix().EqualsApprox(reference->ToMatrix(), 0));

  EXPECT_GT(Counter("fault.injected.crash"), crashes_before);
  EXPECT_GT(Counter("fault.dist.retries"), retries_before);
}

TEST_P(ChaosTest, DistTsmmBitIdenticalUnderChaos) {
  MatrixBlock x = Random(240, 48, 13);
  BlockedMatrix bx = BlockedMatrix::FromMatrix(x, 32);
  auto reference = DistTsmmLeft(bx);
  ASSERT_TRUE(reference.ok());

  FaultConfig config = ChaosConfig(GetParam());
  config.profile.crash_prob = 0.08;
  ScopedFaultInjection chaos(config);
  auto chaotic = DistTsmmLeft(bx);
  ASSERT_TRUE(chaotic.ok()) << chaotic.status();
  EXPECT_TRUE(chaotic->ToMatrix().EqualsApprox(reference->ToMatrix(), 0));
}

TEST_P(ChaosTest, PsTrainingConvergesThroughMessageDrops) {
  MatrixBlock x = Random(600, 8, 21);
  MatrixBlock w = Random(8, 1, 22);
  auto y = MatMult(x, w, 1);

  int64_t retries_before = Counter("fault.ps.retries");

  // A PS crash is a permanent worker loss (not a retried attempt), so the
  // per-batch crash probability is scaled to roughly one crash per job —
  // the Standard() 2% rate would eventually take out all four workers over
  // a 300-round run.
  FaultConfig config = ChaosConfig(GetParam());
  config.profile.crash_prob = 0.001;
  ScopedFaultInjection chaos(config);

  PsConfig ps;
  ps.num_workers = 4;
  ps.epochs = 60;
  ps.batch_size = 32;
  ps.learning_rate = 0.3;
  ps.mode = PsUpdateMode::kBSP;
  auto result = PsTrain(x, *y, ps);
  ASSERT_TRUE(result.ok()) << result.status();
  // The model is noiseless and realizable, so even if a worker was
  // excluded mid-run the survivors still fit it.
  EXPECT_TRUE(std::isfinite(result->final_loss));
  EXPECT_LT(result->final_loss, 0.1);
  EXPECT_GT(Counter("fault.ps.retries"), retries_before);
}

TEST_P(ChaosTest, PsDeadWorkerExcludedWithoutWedgingBarrier) {
  MatrixBlock x = Random(400, 6, 31);
  MatrixBlock w = Random(6, 1, 32);
  auto y = MatMult(x, w, 1);

  int64_t excluded_before = Counter("fault.ps.excluded_workers");

  FaultConfig config = ChaosConfig(GetParam());
  config.profile.drop_prob = 0;  // isolate the dead-worker path
  config.profile.delay_prob = 0;
  config.profile.corrupt_prob = 0;
  config.profile.crash_prob = 0;
  config.profile.dead_targets.push_back({FaultLayer::kPs, 1});
  ScopedFaultInjection chaos(config);

  PsConfig ps;
  ps.num_workers = 4;
  ps.epochs = 40;
  ps.batch_size = 32;
  ps.learning_rate = 0.3;
  ps.mode = PsUpdateMode::kBSP;
  auto result = PsTrain(x, *y, ps);
  // The BSP barrier must shrink around the dead worker instead of hanging.
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->excluded_workers, 1);
  EXPECT_TRUE(std::isfinite(result->final_loss));
  EXPECT_LT(result->final_loss, 0.1);
  EXPECT_GT(Counter("fault.ps.excluded_workers"), excluded_before);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ChaosTest,
                         ::testing::Values(uint64_t{1}, uint64_t{2},
                                           uint64_t{3}));

}  // namespace
}  // namespace sysds
