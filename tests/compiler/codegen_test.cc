#include "compiler/codegen.h"

#include <gtest/gtest.h>

#include "compiler/compiler.h"
#include "compiler/rewrites.h"
#include "runtime/controlprog/program.h"

namespace sysds {
namespace {

HopPtr Tread(const std::string& name, int64_t d1, int64_t d2) {
  return MakeTransientRead(name, DataType::kMatrix, ValueType::kFP64, d1, d2,
                           -1);
}

std::vector<InstructionPtr> Gen(std::vector<HopPtr> roots,
                                const DMLConfig& config) {
  SelectExecTypes(roots, config);
  auto lops = BuildLops(roots, config);
  EXPECT_TRUE(lops.ok()) << lops.status();
  auto instrs = LopsToInstructions(*lops);
  EXPECT_TRUE(instrs.ok()) << instrs.status();
  return instrs.ok() ? std::move(*instrs) : std::vector<InstructionPtr>{};
}

TEST(CodegenTest, LiteralAndTreadProduceNoInstructions) {
  DMLConfig config;
  auto lit = MakeLiteralHop(LitValue::Double(5));
  auto x = Tread("X", 10, 10);
  auto mul = std::make_shared<Hop>(HopOp::kBinary, "*", DataType::kMatrix,
                                   ValueType::kFP64);
  mul->AddInput(x);
  mul->AddInput(lit);
  mul->RefreshSizeInformation();
  std::vector<HopPtr> roots = {MakeTransientWrite("Y", mul)};
  auto instrs = Gen(std::move(roots), config);
  // binary, cpvar(Y), rmvar(temp) — literals/treads are pure operands.
  ASSERT_EQ(instrs.size(), 3u);
  EXPECT_EQ(instrs[0]->opcode(), "*");
  EXPECT_EQ(instrs[1]->opcode(), "cpvar");
  EXPECT_EQ(instrs[2]->opcode(), "rmvar");
}

TEST(CodegenTest, TransientWriteOfSameNameElided) {
  DMLConfig config;
  auto x = Tread("X", 5, 5);
  std::vector<HopPtr> roots = {MakeTransientWrite("X", x)};
  auto instrs = Gen(std::move(roots), config);
  EXPECT_TRUE(instrs.empty());  // X = X is a no-op
}

TEST(CodegenTest, ExecTypeSelectionByMemoryBudget) {
  auto x = Tread("X", 2000, 2000);
  x->set_nnz(2000 * 2000);
  auto tsmm = std::make_shared<Hop>(HopOp::kTsmm, "left", DataType::kMatrix,
                                    ValueType::kFP64);
  tsmm->AddInput(x);
  tsmm->RefreshSizeInformation();
  std::vector<HopPtr> roots = {MakeTransientWrite("A", tsmm)};

  DMLConfig big;
  big.cp_memory_budget = 1LL << 40;
  SelectExecTypes(roots, big);
  EXPECT_EQ(tsmm->exec_type(), ExecType::kCP);

  DMLConfig tiny;
  tiny.cp_memory_budget = 1024;
  SelectExecTypes(roots, tiny);
  EXPECT_EQ(tsmm->exec_type(), ExecType::kSpark);
}

TEST(CodegenTest, ForceSparkOverridesBudget) {
  auto x = Tread("X", 10, 10);
  auto y = Tread("Y", 10, 10);
  auto mm = std::make_shared<Hop>(HopOp::kMatMult, "ba+*", DataType::kMatrix,
                                  ValueType::kFP64);
  mm->AddInput(x);
  mm->AddInput(y);
  mm->RefreshSizeInformation();
  std::vector<HopPtr> roots = {MakeTransientWrite("Z", mm)};
  DMLConfig config;
  config.force_spark = true;
  auto instrs = Gen(std::move(roots), config);
  ASSERT_FALSE(instrs.empty());
  EXPECT_EQ(instrs[0]->opcode(), "sp_ba+*");
  EXPECT_EQ(instrs[0]->exec_type(), ExecType::kSpark);
}

TEST(CodegenTest, OpsWithoutSparkSupportStayCp) {
  auto x = Tread("X", 50000, 50000);  // enormous
  auto sol = std::make_shared<Hop>(HopOp::kSolve, "solve", DataType::kMatrix,
                                   ValueType::kFP64);
  sol->AddInput(x);
  sol->AddInput(Tread("b", 50000, 1));
  sol->RefreshSizeInformation();
  std::vector<HopPtr> roots = {MakeTransientWrite("B", sol)};
  DMLConfig tiny;
  tiny.cp_memory_budget = 1024;
  SelectExecTypes(roots, tiny);
  EXPECT_EQ(sol->exec_type(), ExecType::kCP);  // no distributed solve
}

TEST(CodegenTest, InstructionTextFormat) {
  DMLConfig config;
  auto x = Tread("X", 3, 3);
  auto t = std::make_shared<Hop>(HopOp::kReorg, "t", DataType::kMatrix,
                                 ValueType::kFP64);
  t->AddInput(x);
  t->RefreshSizeInformation();
  std::vector<HopPtr> roots = {MakeTransientWrite("Y", t)};
  auto instrs = Gen(std::move(roots), config);
  ASSERT_GE(instrs.size(), 2u);
  std::string text = instrs[0]->ToString();
  EXPECT_NE(text.find("CP"), std::string::npos);
  EXPECT_NE(text.find("X"), std::string::npos);
  EXPECT_NE(text.find("MATRIX"), std::string::npos);
}

TEST(CompileApiTest, CompileTimeShapeErrorDetected) {
  DMLConfig config;
  SymbolInfoMap inputs;
  inputs["A"] = SymbolInfo{DataType::kMatrix, ValueType::kFP64, 3, 4, -1};
  inputs["B"] = SymbolInfo{DataType::kMatrix, ValueType::kFP64, 3, 4, -1};
  auto prog = CompileDML("C = A %*% B\n", config, inputs);
  EXPECT_FALSE(prog.ok());
  EXPECT_EQ(prog.status().code(), StatusCode::kValidateError);
}

TEST(CompileApiTest, BranchRemovalForConstantPredicates) {
  // if (FALSE) branches are removed at compile time (paper Example 1:
  // "removing unnecessary branches"): the plan contains no IF block.
  DMLConfig config;
  auto prog = CompileDML(
      "x = 1\n"
      "if (2 > 3) {\n"
      "  x = 99\n"
      "}\n"
      "y = x + 1\n",
      config, {});
  ASSERT_TRUE(prog.ok()) << prog.status();
  std::string plan = (*prog)->Explain();
  EXPECT_EQ(plan.find("IF block"), std::string::npos);
}

TEST(CompileApiTest, NonConstantPredicatesKeepBranches) {
  DMLConfig config;
  SymbolInfoMap inputs;
  inputs["c"] = SymbolInfo{DataType::kScalar, ValueType::kFP64, 0, 0, -1};
  auto prog = CompileDML("x = 1\nif (c > 0) {\n  x = 2\n}\n", config, inputs);
  ASSERT_TRUE(prog.ok()) << prog.status();
  EXPECT_NE((*prog)->Explain().find("IF block"), std::string::npos);
}

}  // namespace
}  // namespace sysds
