#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "api/systemds_context.h"
#include "compiler/fusion.h"
#include "runtime/matrix/lib_fused.h"

namespace sysds {
namespace {

// ---------------------------------------------------------------------------
// Micro-plan (de)serialization.

TEST(FusedPlanTest, SerializeParseRoundTrip) {
  const std::string text =
      "in1;sc2;kF;b-:i0,s0;b/:t0,s1;b^:t1,s1;out:t2;agg:uarsum";
  auto plan = FusedPlan::Parse(text);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_EQ(plan->num_inputs, 1);
  EXPECT_EQ(plan->num_scalars, 2);
  ASSERT_EQ(plan->input_kinds.size(), 1u);
  EXPECT_EQ(plan->input_kinds[0], FusedInputKind::kFull);
  ASSERT_EQ(plan->steps.size(), 3u);
  EXPECT_TRUE(plan->steps[0].is_binary);
  EXPECT_EQ(plan->steps[0].bop, BinaryOpCode::kSub);
  EXPECT_EQ(plan->root, 2);
  EXPECT_TRUE(plan->has_agg);
  EXPECT_EQ(plan->agg, AggOpCode::kSum);
  EXPECT_EQ(plan->agg_dir, AggDirection::kRow);
  EXPECT_EQ(plan->Serialize(), text);
  EXPECT_EQ(plan->IntermediatesElided(), 3);
}

TEST(FusedPlanTest, UnaryStepsAndElementwiseRoot) {
  const std::string text = "in2;sc0;kFC;b*:i0,i1;uexp:t0;out:t1";
  auto plan = FusedPlan::Parse(text);
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_FALSE(plan->has_agg);
  EXPECT_FALSE(plan->steps[1].is_binary);
  EXPECT_EQ(plan->steps[1].uop, UnaryOpCode::kExp);
  EXPECT_EQ(plan->input_kinds[1], FusedInputKind::kColVec);
  EXPECT_EQ(plan->Serialize(), text);
  EXPECT_EQ(plan->IntermediatesElided(), 1);
}

TEST(FusedPlanTest, RejectsMalformedPlans) {
  // Forward (non-topological) step reference.
  EXPECT_FALSE(FusedPlan::Parse("in1;sc0;kF;b+:i0,t5;uexp:t0;out:t1").ok());
  // Missing output segment.
  EXPECT_FALSE(FusedPlan::Parse("in1;sc0;kF;uexp:i0").ok());
  // Input index out of range.
  EXPECT_FALSE(FusedPlan::Parse("in1;sc0;kF;b+:i0,i3;out:t0").ok());
  // Scalar index out of range.
  EXPECT_FALSE(FusedPlan::Parse("in1;sc1;kF;b+:i0,s4;out:t0").ok());
  // Kind string length mismatch.
  EXPECT_FALSE(FusedPlan::Parse("in2;sc0;kF;b+:i0,i1;out:t0").ok());
  // Unknown opcode.
  EXPECT_FALSE(FusedPlan::Parse("in1;sc0;kF;bqq:i0,i0;out:t0").ok());
  // Unsupported aggregates (argument-tracking / diagonal reads).
  EXPECT_FALSE(
      FusedPlan::Parse("in1;sc0;kF;uexp:i0;out:t0;agg:uatrace").ok());
  EXPECT_FALSE(
      FusedPlan::Parse("in1;sc0;kF;uexp:i0;out:t0;agg:uarimax").ok());
}

// ---------------------------------------------------------------------------
// Planner behavior on hand-built HOP DAGs.

HopPtr MakeMatrixRead(const std::string& name, int64_t rows, int64_t cols) {
  return MakeTransientRead(name, DataType::kMatrix, ValueType::kFP64, rows,
                           cols, rows * cols);
}

HopPtr MakeBinary(const std::string& opcode, HopPtr a, HopPtr b,
                  int64_t rows, int64_t cols) {
  auto h = std::make_shared<Hop>(HopOp::kBinary, opcode, DataType::kMatrix,
                                 ValueType::kFP64);
  h->AddInput(std::move(a));
  h->AddInput(std::move(b));
  h->set_dims(rows, cols);
  return h;
}

HopPtr MakeAgg(const std::string& opcode, HopPtr in, int64_t rows,
               int64_t cols) {
  DataType dt =
      rows == 0 && cols == 0 ? DataType::kScalar : DataType::kMatrix;
  auto h =
      std::make_shared<Hop>(HopOp::kAggUnary, opcode, dt, ValueType::kFP64);
  h->AddInput(std::move(in));
  if (dt == DataType::kMatrix) h->set_dims(rows, cols);
  return h;
}

TEST(FusionPlannerTest, FusesElementwiseChainIntoAggregate) {
  HopPtr x = MakeMatrixRead("X", 100, 50);
  HopPtr sub = MakeBinary("-", x, MakeLiteralHop(LitValue::Double(0.5)),
                          100, 50);
  HopPtr div = MakeBinary("/", sub, MakeLiteralHop(LitValue::Double(0.29)),
                          100, 50);
  HopPtr agg = MakeAgg("uarsum", div, 100, 1);
  std::vector<HopPtr> roots = {MakeTransientWrite("R", agg)};

  DMLConfig config;
  std::vector<HopPtr> planned = PlanFusion(roots, config);
  ASSERT_EQ(planned.size(), 1u);
  // Original DAG untouched (the recompiler depends on this).
  EXPECT_EQ(roots[0]->inputs()[0]->op(), HopOp::kAggUnary);
  const HopPtr& fused = planned[0]->inputs()[0];
  ASSERT_EQ(fused->op(), HopOp::kFusedOp);
  // Row aggregate: the fused hop takes the aggregate's output shape.
  EXPECT_EQ(fused->dim1(), 100);
  EXPECT_EQ(fused->dim2(), 1);
  // Inputs: X, two scalar literals, trailing plan literal.
  ASSERT_EQ(fused->inputs().size(), 4u);
  EXPECT_EQ(fused->inputs()[0]->name(), "X");
  ASSERT_EQ(fused->inputs().back()->op(), HopOp::kLiteral);
  auto plan = FusedPlan::Parse(fused->inputs().back()->literal().AsString());
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_TRUE(plan->has_agg);
  EXPECT_EQ(plan->agg_dir, AggDirection::kRow);
  EXPECT_EQ(plan->steps.size(), 2u);
  EXPECT_EQ(plan->num_inputs, 1);
  EXPECT_EQ(plan->num_scalars, 2);
}

TEST(FusionPlannerTest, MultiConsumerIntermediateStaysMaterialized) {
  HopPtr x = MakeMatrixRead("X", 100, 50);
  HopPtr shared = MakeBinary("-", x, MakeLiteralHop(LitValue::Double(1.0)),
                             100, 50);
  HopPtr sq = MakeBinary("^", shared, MakeLiteralHop(LitValue::Double(2.0)),
                         100, 50);
  HopPtr agg = MakeAgg("uasum", sq, 0, 0);
  std::vector<HopPtr> roots = {MakeTransientWrite("s", agg),
                               MakeTransientWrite("T", shared)};

  DMLConfig config;
  std::vector<HopPtr> planned = PlanFusion(roots, config);
  const HopPtr& fused = planned[0]->inputs()[0];
  ASSERT_EQ(fused->op(), HopOp::kFusedOp);
  // `shared` has two consumers, so the region stops at it: it stays a
  // materialized input of the fused op rather than a step.
  EXPECT_EQ(fused->inputs()[0].get(), shared.get());
  auto plan = FusedPlan::Parse(fused->inputs().back()->literal().AsString());
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->steps.size(), 1u);
  // The second root still writes the original chain.
  EXPECT_EQ(planned[1]->inputs()[0].get(), shared.get());
}

TEST(FusionPlannerTest, ThresholdGateBlocksSmallRegions) {
  HopPtr x = MakeMatrixRead("X", 100, 50);
  HopPtr sub = MakeBinary("-", x, MakeLiteralHop(LitValue::Double(0.5)),
                          100, 50);
  HopPtr agg = MakeAgg("uarsum", sub, 100, 1);
  std::vector<HopPtr> roots = {MakeTransientWrite("R", agg)};

  DMLConfig config;
  config.fusion_min_intermediate_bytes = 1LL << 40;
  std::vector<HopPtr> planned = PlanFusion(roots, config);
  // No region committed: the planner returns the original roots.
  EXPECT_EQ(planned[0].get(), roots[0].get());
}

TEST(FusionPlannerTest, ElementwiseOnlyRegionNeedsTwoSteps) {
  HopPtr x = MakeMatrixRead("X", 100, 50);
  HopPtr y = MakeMatrixRead("Y", 100, 50);
  HopPtr add = MakeBinary("+", x, y, 100, 50);
  HopPtr mul = MakeBinary("*", add, x, 100, 50);
  std::vector<HopPtr> roots = {MakeTransientWrite("Z", mul)};

  DMLConfig config;
  std::vector<HopPtr> planned = PlanFusion(roots, config);
  const HopPtr& fused = planned[0]->inputs()[0];
  ASSERT_EQ(fused->op(), HopOp::kFusedOp);
  auto plan = FusedPlan::Parse(fused->inputs().back()->literal().AsString());
  ASSERT_TRUE(plan.ok());
  EXPECT_FALSE(plan->has_agg);
  EXPECT_EQ(plan->steps.size(), 2u);
  EXPECT_EQ(plan->num_inputs, 2);
  // Elementwise root elides steps-1 intermediates.
  EXPECT_EQ(plan->IntermediatesElided(), 1);

  // A single lone op never fuses.
  std::vector<HopPtr> lone = {MakeTransientWrite("W", add)};
  std::vector<HopPtr> planned2 = PlanFusion(lone, config);
  EXPECT_EQ(planned2[0].get(), lone[0].get());
}

// ---------------------------------------------------------------------------
// End-to-end plan rendering.

TEST(FusionExplainTest, FusedOpcodeAppearsOnlyWhenEnabled) {
  const std::string script =
      "X = rand(rows=100, cols=50, seed=1)\n"
      "R = rowSums(((X - 0.5) / 0.29)^2)\n"
      "s = sum(R)\n"
      "print(s)\n";

  SystemDSContext on;  // fusion defaults to enabled
  auto plan_on = on.Explain(script);
  ASSERT_TRUE(plan_on.ok()) << plan_on.status();
  EXPECT_NE(plan_on->find("fused"), std::string::npos);

  DMLConfig config;
  config.fusion_enabled = false;
  SystemDSContext off(config);
  auto plan_off = off.Explain(script);
  ASSERT_TRUE(plan_off.ok()) << plan_off.status();
  EXPECT_EQ(plan_off->find("fused"), std::string::npos);
}

}  // namespace
}  // namespace sysds
