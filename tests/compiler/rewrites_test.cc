#include "compiler/rewrites.h"

#include <gtest/gtest.h>

#include "compiler/hop.h"

namespace sysds {
namespace {

HopPtr Tread(const std::string& name, int64_t d1, int64_t d2) {
  return MakeTransientRead(name, DataType::kMatrix, ValueType::kFP64, d1, d2,
                           -1);
}

HopPtr Binary(const std::string& op, HopPtr a, HopPtr b) {
  auto h = std::make_shared<Hop>(HopOp::kBinary, op, DataType::kMatrix,
                                 ValueType::kFP64);
  h->AddInput(std::move(a));
  h->AddInput(std::move(b));
  h->RefreshSizeInformation();
  return h;
}

HopPtr T(HopPtr x) {
  auto h = std::make_shared<Hop>(HopOp::kReorg, "t", DataType::kMatrix,
                                 ValueType::kFP64);
  h->AddInput(std::move(x));
  h->RefreshSizeInformation();
  return h;
}

HopPtr MatMult(HopPtr a, HopPtr b) {
  auto h = std::make_shared<Hop>(HopOp::kMatMult, "ba+*", DataType::kMatrix,
                                 ValueType::kFP64);
  h->AddInput(std::move(a));
  h->AddInput(std::move(b));
  h->RefreshSizeInformation();
  return h;
}

TEST(RewriteTest, ConstantFoldingScalars) {
  auto add = std::make_shared<Hop>(HopOp::kBinary, "+", DataType::kScalar,
                                   ValueType::kInt64);
  add->AddInput(MakeLiteralHop(LitValue::Int(2)));
  add->AddInput(MakeLiteralHop(LitValue::Int(3)));
  std::vector<HopPtr> roots = {MakeTransientWrite("x", add)};
  RewriteConstantFolding(&roots);
  ASSERT_EQ(roots[0]->inputs()[0]->op(), HopOp::kLiteral);
  EXPECT_EQ(roots[0]->inputs()[0]->literal().AsInt(), 5);
}

TEST(RewriteTest, ConstantFoldingComparisonGivesBool) {
  auto lt = std::make_shared<Hop>(HopOp::kBinary, "<", DataType::kScalar,
                                  ValueType::kBoolean);
  lt->AddInput(MakeLiteralHop(LitValue::Int(2)));
  lt->AddInput(MakeLiteralHop(LitValue::Int(3)));
  std::vector<HopPtr> roots = {MakeTransientWrite("x", lt)};
  RewriteConstantFolding(&roots);
  EXPECT_EQ(roots[0]->inputs()[0]->literal().vt, ValueType::kBoolean);
  EXPECT_TRUE(roots[0]->inputs()[0]->literal().AsBool());
}

TEST(RewriteTest, AlgebraicSimplificationMulOne) {
  HopPtr x = Tread("X", 10, 10);
  HopPtr expr = Binary("*", x, MakeLiteralHop(LitValue::Double(1.0)));
  std::vector<HopPtr> roots = {MakeTransientWrite("y", expr)};
  RewriteAlgebraicSimplification(&roots);
  EXPECT_EQ(roots[0]->inputs()[0].get(), x.get());
}

TEST(RewriteTest, DoubleTransposeEliminated) {
  HopPtr x = Tread("X", 5, 8);
  std::vector<HopPtr> roots = {MakeTransientWrite("y", T(T(x)))};
  RewriteAlgebraicSimplification(&roots);
  EXPECT_EQ(roots[0]->inputs()[0].get(), x.get());
}

TEST(RewriteTest, TsmmFusion) {
  HopPtr x = Tread("X", 100, 10);
  std::vector<HopPtr> roots = {MakeTransientWrite("y", MatMult(T(x), x))};
  RewriteFusedOps(&roots);
  const HopPtr& fused = roots[0]->inputs()[0];
  EXPECT_EQ(fused->op(), HopOp::kTsmm);
  EXPECT_EQ(fused->opcode(), "left");
  EXPECT_EQ(fused->inputs()[0].get(), x.get());
  EXPECT_EQ(fused->dim1(), 10);
  EXPECT_EQ(fused->dim2(), 10);
}

TEST(RewriteTest, TsmmRightFusion) {
  HopPtr x = Tread("X", 100, 10);
  std::vector<HopPtr> roots = {MakeTransientWrite("y", MatMult(x, T(x)))};
  RewriteFusedOps(&roots);
  const HopPtr& fused = roots[0]->inputs()[0];
  EXPECT_EQ(fused->op(), HopOp::kTsmm);
  EXPECT_EQ(fused->opcode(), "right");
  EXPECT_EQ(fused->dim1(), 100);
}

TEST(RewriteTest, TmmFusionForDifferentOperands) {
  HopPtr x = Tread("X", 100, 10);
  HopPtr y = Tread("y", 100, 1);
  std::vector<HopPtr> roots = {MakeTransientWrite("b", MatMult(T(x), y))};
  RewriteFusedOps(&roots);
  const HopPtr& fused = roots[0]->inputs()[0];
  EXPECT_EQ(fused->op(), HopOp::kTmm);
  EXPECT_EQ(fused->inputs()[0].get(), x.get());
  EXPECT_EQ(fused->inputs()[1].get(), y.get());
}

TEST(RewriteTest, CseMergesIdenticalSubtrees) {
  HopPtr x = Tread("X", 50, 50);
  // Two structurally identical tsmm expressions.
  auto tsmm1 = std::make_shared<Hop>(HopOp::kTsmm, "left", DataType::kMatrix,
                                     ValueType::kFP64);
  tsmm1->AddInput(x);
  auto tsmm2 = std::make_shared<Hop>(HopOp::kTsmm, "left", DataType::kMatrix,
                                     ValueType::kFP64);
  tsmm2->AddInput(x);
  std::vector<HopPtr> roots = {MakeTransientWrite("a", tsmm1),
                               MakeTransientWrite("b", tsmm2)};
  RewriteCommonSubexpressionElimination(&roots);
  EXPECT_EQ(roots[0]->inputs()[0].get(), roots[1]->inputs()[0].get());
}

TEST(RewriteTest, CseKeepsNondeterministicRandDistinct) {
  auto make_rand = [&]() {
    auto h = std::make_shared<Hop>(HopOp::kDataGen, "rand",
                                   DataType::kMatrix, ValueType::kFP64);
    h->AddInput(MakeLiteralHop(LitValue::Int(10)));
    h->AddInput(MakeLiteralHop(LitValue::Int(10)));
    h->AddInput(MakeLiteralHop(LitValue::Double(0)));
    h->AddInput(MakeLiteralHop(LitValue::Double(1)));
    h->AddInput(MakeLiteralHop(LitValue::Double(1)));
    h->AddInput(MakeLiteralHop(LitValue::Int(-1)));  // seed -1 = nondet
    h->AddInput(MakeLiteralHop(LitValue::String("uniform")));
    return h;
  };
  std::vector<HopPtr> roots = {MakeTransientWrite("a", make_rand()),
                               MakeTransientWrite("b", make_rand())};
  RewriteCommonSubexpressionElimination(&roots);
  EXPECT_NE(roots[0]->inputs()[0].get(), roots[1]->inputs()[0].get());
}

TEST(RewriteTest, MatMultChainReordered) {
  // (A %*% B) %*% v with A 10x1000, B 1000x1000, v 1000x1: optimal order
  // is A %*% (B %*% v).
  HopPtr a = Tread("A", 10, 1000);
  HopPtr b = Tread("B", 1000, 1000);
  HopPtr v = Tread("v", 1000, 1);
  std::vector<HopPtr> roots = {
      MakeTransientWrite("out", MatMult(MatMult(a, b), v))};
  RewriteMatMultChains(&roots);
  const HopPtr& top = roots[0]->inputs()[0];
  ASSERT_EQ(top->op(), HopOp::kMatMult);
  EXPECT_EQ(top->inputs()[0].get(), a.get());
  EXPECT_EQ(top->inputs()[1]->op(), HopOp::kMatMult);
  EXPECT_EQ(top->inputs()[1]->inputs()[0].get(), b.get());
}

TEST(SizePropagationTest, MatMultAndAggregates) {
  HopPtr x = Tread("X", 100, 20);
  HopPtr y = Tread("Y", 20, 5);
  HopPtr mm = MatMult(x, y);
  EXPECT_EQ(mm->dim1(), 100);
  EXPECT_EQ(mm->dim2(), 5);
  auto colsum = std::make_shared<Hop>(HopOp::kAggUnary, "uacsum",
                                      DataType::kMatrix, ValueType::kFP64);
  colsum->AddInput(mm);
  colsum->RefreshSizeInformation();
  EXPECT_EQ(colsum->dim1(), 1);
  EXPECT_EQ(colsum->dim2(), 5);
  auto rowsum = std::make_shared<Hop>(HopOp::kAggUnary, "uarsum",
                                      DataType::kMatrix, ValueType::kFP64);
  rowsum->AddInput(mm);
  rowsum->RefreshSizeInformation();
  EXPECT_EQ(rowsum->dim1(), 100);
  EXPECT_EQ(rowsum->dim2(), 1);
}

TEST(SizePropagationTest, UnknownsPropagate) {
  HopPtr x = Tread("X", -1, 20);
  HopPtr y = Tread("Y", 20, 5);
  HopPtr mm = MatMult(x, y);
  EXPECT_EQ(mm->dim1(), -1);
  EXPECT_EQ(mm->dim2(), 5);
  EXPECT_FALSE(mm->DimsKnown());
  // Unknown-size matrices get a pessimistic (large) memory estimate.
  EXPECT_GT(mm->OutputMemEstimate(), 1LL << 30);
}

TEST(SizePropagationTest, CbindAddsColumns) {
  HopPtr a = Tread("A", 10, 3);
  HopPtr b = Tread("B", 10, 4);
  auto nary = std::make_shared<Hop>(HopOp::kNary, "cbind", DataType::kMatrix,
                                    ValueType::kFP64);
  nary->AddInput(a);
  nary->AddInput(b);
  nary->RefreshSizeInformation();
  EXPECT_EQ(nary->dim1(), 10);
  EXPECT_EQ(nary->dim2(), 7);
}

TEST(SizePropagationTest, SparsityThroughMul) {
  HopPtr a = Tread("A", 100, 100);
  a->set_nnz(500);
  HopPtr b = Tread("B", 100, 100);
  b->set_nnz(10000);
  HopPtr mul = Binary("*", a, b);
  EXPECT_EQ(mul->nnz(), 500);  // min of the two
}

}  // namespace
}  // namespace sysds
