#include <gtest/gtest.h>

#include "api/systemds_context.h"
#include "common/statistics.h"

namespace sysds {
namespace {

TEST(RecompileTest, UnknownSizesFromReadAreResolved) {
  // Sizes of read() results are unknown at compile time; downstream blocks
  // recompile against live metadata (§2.3(3)).
  SystemDSContext gen;
  auto g = gen.Execute(
      "X = rand(rows=80, cols=12, seed=1)\nwrite(X, 'recomp_x.csv')\n", {},
      {});
  ASSERT_TRUE(g.ok()) << g.status();

  DMLConfig config;
  config.statistics = true;
  SystemDSContext ctx(config);
  Statistics::Get().Reset();
  auto r = ctx.Execute(
      "X = read('recomp_x.csv')\n"
      "A = t(X) %*% X\n"
      "n = nrow(X)\n"
      "s = sum(A)\n",
      {}, {"n", "s"});
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_DOUBLE_EQ(*r->GetDouble("n"), 80.0);
  EXPECT_GT(Statistics::Get().GetCounter("compiler.recompilations"), 0);
  std::remove("recomp_x.csv");
}

TEST(RecompileTest, DisabledRecompilationStillCorrect) {
  // Instructions are size-dynamic, so turning recompilation off changes
  // only plan choices, never results.
  SystemDSContext gen;
  auto g = gen.Execute(
      "X = rand(rows=40, cols=6, seed=2)\nwrite(X, 'recomp_y.csv')\n", {},
      {});
  ASSERT_TRUE(g.ok());
  DMLConfig config;
  config.dynamic_recompilation = false;
  SystemDSContext ctx(config);
  auto r = ctx.Execute(
      "X = read('recomp_y.csv')\n"
      "s = sum(t(X) %*% X)\n",
      {}, {"s"});
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_GT(*r->GetDouble("s"), 0.0);
  std::remove("recomp_y.csv");
}

TEST(RecompileTest, LoopWithGrowingMatrix) {
  // Xg grows every iteration (the steplm pattern): compile-time sizes are
  // invalidated, runtime recompilation keeps plans consistent.
  SystemDSContext ctx;
  auto r = ctx.Execute(
      "X = rand(rows=30, cols=5, seed=3)\n"
      "Xg = matrix(1, 30, 1)\n"
      "for (i in 1:5) {\n"
      "  Xg = cbind(Xg, X[, i])\n"
      "}\n"
      "c = ncol(Xg)\n"
      "A = t(Xg) %*% Xg\n"
      "n = nrow(A)\n",
      {}, {"c", "n"});
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_DOUBLE_EQ(*r->GetDouble("c"), 6.0);
  EXPECT_DOUBLE_EQ(*r->GetDouble("n"), 6.0);
}

TEST(ParamServTest, DmlLevelParamservBuiltin) {
  SystemDSContext ctx;
  auto r = ctx.Execute(
      "X = rand(rows=400, cols=6, seed=4)\n"
      "wtrue = rand(rows=6, cols=1, seed=5)\n"
      "y = X %*% wtrue\n"
      "w = paramserv(features=X, labels=y, workers=2, epochs=40,\n"
      "              batchsize=32, lr=0.3, mode='BSP')\n"
      "err = sum((w - wtrue)^2)\n",
      {}, {"err"});
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_LT(*r->GetDouble("err"), 1e-2);
}

TEST(ParamServTest, AspModeAndLogisticObjective) {
  SystemDSContext ctx;
  auto r = ctx.Execute(
      "X = rand(rows=300, cols=4, min=-1, max=1, seed=6)\n"
      "wtrue = matrix(\"2 -2 1 -1\", 4, 1)\n"
      "y = (X %*% wtrue) > 0\n"
      "w = paramserv(features=X, labels=y, workers=2, epochs=60,\n"
      "              batchsize=32, lr=0.5, mode='ASP',\n"
      "              objective='logistic')\n"
      "pred = (X %*% w) > 0\n"
      "acc = sum(pred == y) / 300\n",
      {}, {"acc"});
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_GT(*r->GetDouble("acc"), 0.9);
}

}  // namespace
}  // namespace sysds
