// Property-style sweeps over the end-to-end engine: algebraic identities
// that must hold for random inputs across shapes, sparsities, and
// configurations.

#include <gtest/gtest.h>

#include "api/systemds_context.h"

namespace sysds {
namespace {

struct ShapeCase {
  int64_t rows;
  int64_t cols;
  double sparsity;
};

class AlgebraPropertyTest : public ::testing::TestWithParam<ShapeCase> {};

// (A + B)^T == A^T + B^T and t(A %*% B) == t(B) %*% t(A).
TEST_P(AlgebraPropertyTest, TransposeIdentities) {
  const ShapeCase& c = GetParam();
  SystemDSContext ctx;
  std::string script =
      "A = rand(rows=" + std::to_string(c.rows) +
      ", cols=" + std::to_string(c.cols) +
      ", sparsity=" + std::to_string(c.sparsity) + ", seed=1)\n"
      "B = rand(rows=" + std::to_string(c.rows) +
      ", cols=" + std::to_string(c.cols) +
      ", sparsity=" + std::to_string(c.sparsity) + ", seed=2)\n"
      "d1 = sum((t(A + B) - (t(A) + t(B)))^2)\n"
      "C = rand(rows=" + std::to_string(c.cols) +
      ", cols=" + std::to_string(c.rows) + ", seed=3)\n"
      "d2 = sum((t(A %*% C) - t(C) %*% t(A))^2)\n";
  auto r = ctx.Execute(script, {}, {"d1", "d2"});
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_NEAR(*r->GetDouble("d1"), 0.0, 1e-18);
  EXPECT_NEAR(*r->GetDouble("d2"), 0.0, 1e-12);
}

// sum(A) == sum(rowSums(A)) == sum(colSums(A)); trace(t(A) %*% A) ==
// sum(A^2).
TEST_P(AlgebraPropertyTest, AggregationIdentities) {
  const ShapeCase& c = GetParam();
  SystemDSContext ctx;
  std::string script =
      "A = rand(rows=" + std::to_string(c.rows) +
      ", cols=" + std::to_string(c.cols) +
      ", sparsity=" + std::to_string(c.sparsity) + ", seed=4, min=-1)\n"
      "d1 = abs(sum(A) - sum(rowSums(A)))\n"
      "d2 = abs(sum(A) - sum(colSums(A)))\n"
      "d3 = abs(trace(t(A) %*% A) - sum(A^2))\n";
  auto r = ctx.Execute(script, {}, {"d1", "d2", "d3"});
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_NEAR(*r->GetDouble("d1"), 0.0, 1e-9);
  EXPECT_NEAR(*r->GetDouble("d2"), 0.0, 1e-9);
  EXPECT_NEAR(*r->GetDouble("d3"), 0.0, 1e-8);
}

// lmDS and lmCG solve the same regularized normal equations.
TEST_P(AlgebraPropertyTest, LmDsCgEquivalence) {
  const ShapeCase& c = GetParam();
  if (c.cols < 2) return;
  SystemDSContext ctx;
  std::string script =
      "X = rand(rows=" + std::to_string(c.rows) +
      ", cols=" + std::to_string(c.cols) +
      ", sparsity=" + std::to_string(c.sparsity) + ", seed=5)\n"
      "y = rand(rows=" + std::to_string(c.rows) + ", cols=1, seed=6)\n"
      "B1 = lmDS(X, y, 0, 0.01)\n"
      "B2 = lmCG(X, y, 0, 0.01, 1e-14, 500)\n"
      "d = sum((B1 - B2)^2) / max(sum(B1^2), 1e-300)\n";
  auto r = ctx.Execute(script, {}, {"d"});
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_NEAR(*r->GetDouble("d"), 0.0, 1e-8);
}

// Indexing partition property: slicing a matrix into row halves and
// rbinding them reconstructs it.
TEST_P(AlgebraPropertyTest, SliceAndRebindRoundtrip) {
  const ShapeCase& c = GetParam();
  if (c.rows < 2) return;
  SystemDSContext ctx;
  std::string script =
      "A = rand(rows=" + std::to_string(c.rows) +
      ", cols=" + std::to_string(c.cols) +
      ", sparsity=" + std::to_string(c.sparsity) + ", seed=7)\n"
      "h = nrow(A) %/% 2\n"
      "B = rbind(A[1:h, ], A[(h+1):nrow(A), ])\n"
      "C = cbind(A[, 1], A[, 2:ncol(A)])\n"
      "d = sum((A - B)^2) + sum((A - C)^2)\n";
  auto r = ctx.Execute(script, {}, {"d"});
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_DOUBLE_EQ(*r->GetDouble("d"), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AlgebraPropertyTest,
    ::testing::Values(ShapeCase{4, 3, 1.0}, ShapeCase{64, 64, 1.0},
                      ShapeCase{100, 17, 0.1}, ShapeCase{200, 5, 0.05},
                      ShapeCase{33, 40, 0.5}));

// Reuse never changes results: the same sweep under all three policies.
class ReusePolicyPropertyTest
    : public ::testing::TestWithParam<ReusePolicy> {};

TEST_P(ReusePolicyPropertyTest, SteplmInvariantUnderPolicy) {
  const char* script =
      "X = rand(rows=120, cols=7, seed=11)\n"
      "y = 2*X[,3] - X[,6]\n"
      "[B, S] = steplm(X, y, 0, 1e-9)\n"
      "sig = sum(S * t(seq(1, 7, 1)))\n";
  auto run = [&](ReusePolicy policy) {
    DMLConfig config;
    config.reuse_policy = policy;
    SystemDSContext ctx(config);
    auto r = ctx.Execute(script, {}, {"sig"});
    EXPECT_TRUE(r.ok()) << r.status();
    return r.ok() ? *r->GetDouble("sig") : -1.0;
  };
  double baseline = run(ReusePolicy::kNone);
  EXPECT_DOUBLE_EQ(run(GetParam()), baseline);
}

INSTANTIATE_TEST_SUITE_P(Policies, ReusePolicyPropertyTest,
                         ::testing::Values(ReusePolicy::kNone,
                                           ReusePolicy::kFull,
                                           ReusePolicy::kPartial));

}  // namespace
}  // namespace sysds
