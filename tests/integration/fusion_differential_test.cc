// Differential suite for the operator-fusion engine: every script runs in a
// fusion-enabled and a fusion-disabled context and must produce *identical*
// results (EXPECT_EQ on scalars, zero-epsilon compare on matrices). The
// fused runtime shares aggregation primitives, chunking policy, and
// zero-handling rules with the unfused kernels precisely so this holds —
// see DESIGN.md "Operator fusion: determinism".

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <vector>

#include "api/systemds_context.h"
#include "common/statistics.h"
#include "obs/metrics.h"

namespace sysds {
namespace {

std::unique_ptr<SystemDSContext> MakeCtx(bool fusion) {
  return SystemDSContext::Builder().Fusion(fusion).Build();
}

// Runs `script` with and without fusion and asserts the named outputs are
// identical. Also asserts the fused run actually planned at least one
// region, so the comparison is never vacuous.
void ExpectIdentical(const std::string& script,
                     const std::vector<std::string>& scalar_outs,
                     const std::vector<std::string>& matrix_outs,
                     bool expect_fused = true) {
  std::vector<std::string> all = scalar_outs;
  all.insert(all.end(), matrix_outs.begin(), matrix_outs.end());
  Outputs outs = Outputs::FromVector(all);

  auto fused_ctx = MakeCtx(true);
  auto unfused_ctx = MakeCtx(false);
  int64_t regions_before =
      obs::MetricsRegistry::Get().GetCounter("fusion.regions")->Value();
  auto rf = fused_ctx->Execute(script, Inputs(), outs);
  int64_t regions_after =
      obs::MetricsRegistry::Get().GetCounter("fusion.regions")->Value();
  auto ru = unfused_ctx->Execute(script, Inputs(), outs);
  ASSERT_TRUE(rf.ok()) << rf.status();
  ASSERT_TRUE(ru.ok()) << ru.status();
  if (expect_fused) {
    EXPECT_GT(regions_after, regions_before)
        << "expected the fused context to plan at least one region";
  }

  for (const std::string& name : scalar_outs) {
    auto vf = rf->GetDouble(name);
    auto vu = ru->GetDouble(name);
    ASSERT_TRUE(vf.ok()) << vf.status();
    ASSERT_TRUE(vu.ok()) << vu.status();
    EXPECT_EQ(*vf, *vu) << "scalar output '" << name << "' diverged";
  }
  for (const std::string& name : matrix_outs) {
    auto mf = rf->GetMatrix(name);
    auto mu = ru->GetMatrix(name);
    ASSERT_TRUE(mf.ok()) << mf.status();
    ASSERT_TRUE(mu.ok()) << mu.status();
    ASSERT_EQ(mf->Rows(), mu->Rows());
    ASSERT_EQ(mf->Cols(), mu->Cols());
    EXPECT_TRUE(mf->EqualsApprox(*mu, 0.0))
        << "matrix output '" << name << "' diverged";
  }
}

TEST(FusionDifferentialTest, DenseChainRowAggregate) {
  ExpectIdentical(
      "X = rand(rows=200, cols=37, seed=1)\n"
      "R = rowSums(((X - 0.5) / 0.29)^2)\n"
      "s = sum(R)\n",
      {"s"}, {"R"});
}

TEST(FusionDifferentialTest, DenseChainFullAggregate) {
  ExpectIdentical(
      "X = rand(rows=150, cols=64, min=-2, max=2, seed=2)\n"
      "s = sum(1 / (1 + exp(-X)))\n",
      {"s"}, {});
}

TEST(FusionDifferentialTest, DenseChainColAggregate) {
  ExpectIdentical(
      "X = rand(rows=128, cols=45, seed=3)\n"
      "C = colSums((X * X) + X)\n",
      {}, {"C"});
}

TEST(FusionDifferentialTest, MinMeanVarAggregates) {
  ExpectIdentical(
      "X = rand(rows=90, cols=31, min=-1, max=1, seed=4)\n"
      "a = min((X + 1) * 2)\n"
      "b = mean((X - 0.3)^2)\n"
      "c = max(abs(X) * 3)\n",
      {"a", "b", "c"}, {});
}

TEST(FusionDifferentialTest, VectorBroadcastInputs) {
  ExpectIdentical(
      "X = rand(rows=64, cols=33, seed=5)\n"
      "v = rand(rows=64, cols=1, seed=6)\n"
      "w = rand(rows=1, cols=33, min=0.5, max=1.5, seed=7)\n"
      "R = rowSums(((X - v) * w) + X^2)\n"
      "C = colSums((X / w) - v)\n",
      {}, {"R", "C"});
}

TEST(FusionDifferentialTest, SparseDriverFullAggregate) {
  // Sparse input and a zero-preserving pipeline: the fused kernel takes the
  // sparse-driver fast path; the unfused chain stays sparse throughout.
  ExpectIdentical(
      "X = rand(rows=300, cols=80, sparsity=0.1, seed=8)\n"
      "s = sum((X * 2)^2)\n"
      "r = sum((X * 3) * X)\n",
      {"s", "r"}, {});
}

TEST(FusionDifferentialTest, SparseDriverRowColAggregates) {
  ExpectIdentical(
      "X = rand(rows=250, cols=60, sparsity=0.08, seed=9)\n"
      "R = rowSums((X * X) * 0.5)\n"
      "C = colSums(abs(X) * 2)\n",
      {}, {"R", "C"});
}

TEST(FusionDifferentialTest, ElementwiseOnlyRegion) {
  ExpectIdentical(
      "X = rand(rows=120, cols=40, seed=10)\n"
      "Y = rand(rows=120, cols=40, seed=11)\n"
      "Z = ((X + Y) * X) - Y\n",
      {}, {"Z"});
}

TEST(FusionDifferentialTest, NnzAndSumSqAggregates) {
  ExpectIdentical(
      "X = rand(rows=100, cols=50, sparsity=0.3, seed=12)\n"
      "n = sum((X * 2) != 0)\n"
      "q = sum((X * X) * (X * X))\n",
      {"n", "q"}, {});
}

TEST(FusionDifferentialTest, RecompileTriggersRefusion) {
  // Sizes of read() results are unknown at compile time; fusion must kick
  // in during dynamic recompilation once real dimensions are known.
  SystemDSContext gen;
  auto g = gen.Execute(
      "X = rand(rows=80, cols=12, seed=13)\nwrite(X, 'fusion_rc.csv')\n", {},
      {});
  ASSERT_TRUE(g.ok()) << g.status();

  // The chain sits in a loop body — its own basic block — so by the time
  // that block recompiles at entry, X is live with known dimensions.
  const std::string script =
      "X = read('fusion_rc.csv')\n"
      "s = 0\n"
      "for (i in 1:2) {\n"
      "  R = rowSums(((X - 0.5) / 0.29)^2)\n"
      "  s = s + sum(R)\n"
      "}\n";

  DMLConfig stats_config;
  stats_config.statistics = true;
  SystemDSContext fused_ctx(stats_config);
  Statistics::Get().Reset();
  int64_t regions_before =
      obs::MetricsRegistry::Get().GetCounter("fusion.regions")->Value();
  auto rf = fused_ctx.Execute(script, {}, {"s"});
  int64_t regions_after =
      obs::MetricsRegistry::Get().GetCounter("fusion.regions")->Value();
  ASSERT_TRUE(rf.ok()) << rf.status();
  EXPECT_GT(Statistics::Get().GetCounter("compiler.recompilations"), 0);
  EXPECT_GT(regions_after, regions_before)
      << "recompilation should have re-planned fusion with known sizes";

  auto unfused_ctx = MakeCtx(false);
  auto ru = unfused_ctx->Execute(script, Inputs(), Outputs("s"));
  ASSERT_TRUE(ru.ok()) << ru.status();
  EXPECT_EQ(*rf->GetDouble("s"), *ru->GetDouble("s"));
  std::remove("fusion_rc.csv");
}

TEST(FusionDifferentialTest, MetricsReportElidedIntermediates) {
  auto ctx = MakeCtx(true);
  int64_t elided_before = obs::MetricsRegistry::Get()
                              .GetCounter("fusion.intermediates_elided")
                              ->Value();
  auto r = ctx->Execute(
      "X = rand(rows=100, cols=20, seed=14)\n"
      "s = sum(((X - 0.1) * 2)^2)\n",
      Inputs(), Outputs("s"));
  ASSERT_TRUE(r.ok()) << r.status();
  int64_t elided_after = obs::MetricsRegistry::Get()
                             .GetCounter("fusion.intermediates_elided")
                             ->Value();
  EXPECT_GE(elided_after - elided_before, 3)
      << "three interior intermediates should have been elided";
}

}  // namespace
}  // namespace sysds
