// End-to-end coverage of the DML builtin operation surface: every operation
// is exercised through the full compile+execute stack and checked against
// closed-form expectations.

#include <gtest/gtest.h>

#include <cmath>

#include "api/systemds_context.h"

namespace sysds {
namespace {

double Eval(const std::string& expr_script, const std::string& out = "v") {
  SystemDSContext ctx;
  auto r = ctx.Execute(expr_script, {}, {out});
  EXPECT_TRUE(r.ok()) << r.status() << "\nscript:\n" << expr_script;
  if (!r.ok()) return std::nan("");
  auto d = r->GetDouble(out);
  EXPECT_TRUE(d.ok()) << d.status();
  return d.ok() ? *d : std::nan("");
}

TEST(DmlOpsTest, ScalarOperators) {
  EXPECT_DOUBLE_EQ(Eval("v = 7 %% 3\n"), 1.0);
  EXPECT_DOUBLE_EQ(Eval("v = -7 %% 3\n"), 2.0);  // R semantics
  EXPECT_DOUBLE_EQ(Eval("v = 7 %/% 2\n"), 3.0);
  EXPECT_DOUBLE_EQ(Eval("v = 2 ^ 10\n"), 1024.0);
  EXPECT_DOUBLE_EQ(Eval("v = -2 ^ 2\n"), -4.0);  // unary minus after power
  EXPECT_DOUBLE_EQ(Eval("v = 2 ^ -1\n"), 0.5);
  EXPECT_DOUBLE_EQ(Eval("a = TRUE\nb = FALSE\nv = a & !b\n"), 1.0);
  EXPECT_DOUBLE_EQ(Eval("v = ifelse(3 > 2, 10, 20)\n"), 10.0);
  EXPECT_DOUBLE_EQ(Eval("v = min(3, 1, 2)\n"), 1.0);
  EXPECT_DOUBLE_EQ(Eval("v = max(3, 1, 2)\n"), 3.0);
}

TEST(DmlOpsTest, ScalarMathFunctions) {
  EXPECT_NEAR(Eval("v = exp(1)\n"), std::exp(1.0), 1e-12);
  EXPECT_NEAR(Eval("v = log(exp(2))\n"), 2.0, 1e-12);
  EXPECT_NEAR(Eval("v = log(8, 2)\n"), 3.0, 1e-12);  // log with base
  EXPECT_NEAR(Eval("v = sqrt(16)\n"), 4.0, 1e-12);
  EXPECT_DOUBLE_EQ(Eval("v = abs(-3.5)\n"), 3.5);
  EXPECT_DOUBLE_EQ(Eval("v = round(2.6)\n"), 3.0);
  EXPECT_DOUBLE_EQ(Eval("v = floor(2.9)\n"), 2.0);
  EXPECT_DOUBLE_EQ(Eval("v = ceil(2.1)\n"), 3.0);
  EXPECT_DOUBLE_EQ(Eval("v = sign(-9)\n"), -1.0);
  EXPECT_NEAR(Eval("v = sin(0) + cos(0)\n"), 1.0, 1e-12);
}

TEST(DmlOpsTest, MatrixAggregates) {
  const char* mk = "X = matrix(\"1 2 3 4 5 6\", 2, 3)\n";
  EXPECT_DOUBLE_EQ(Eval(std::string(mk) + "v = sum(X)\n"), 21.0);
  EXPECT_DOUBLE_EQ(Eval(std::string(mk) + "v = mean(X)\n"), 3.5);
  EXPECT_DOUBLE_EQ(Eval(std::string(mk) + "v = min(X)\n"), 1.0);
  EXPECT_DOUBLE_EQ(Eval(std::string(mk) + "v = max(X)\n"), 6.0);
  EXPECT_NEAR(Eval(std::string(mk) + "v = var(X)\n"), 3.5, 1e-12);
  EXPECT_NEAR(Eval(std::string(mk) + "v = sd(X)\n"), std::sqrt(3.5), 1e-12);
  EXPECT_DOUBLE_EQ(
      Eval("X = matrix(\"1 2 3 4\", 2, 2)\nv = as.scalar(trace(X) + 0)\n"),
      5.0);
  EXPECT_DOUBLE_EQ(
      Eval(std::string(mk) + "v = as.scalar(colSums(X)[1, 2])\n"), 7.0);
  EXPECT_DOUBLE_EQ(
      Eval(std::string(mk) + "v = as.scalar(rowMeans(X)[2, 1])\n"), 5.0);
  EXPECT_DOUBLE_EQ(
      Eval(std::string(mk) + "v = as.scalar(colMaxs(X)[1, 1])\n"), 4.0);
  EXPECT_DOUBLE_EQ(
      Eval(std::string(mk) + "v = as.scalar(rowMins(X)[1, 1])\n"), 1.0);
  EXPECT_DOUBLE_EQ(
      Eval(std::string(mk) + "v = as.scalar(rowIndexMax(X)[1, 1])\n"), 3.0);
}

TEST(DmlOpsTest, MatrixManipulation) {
  EXPECT_DOUBLE_EQ(
      Eval("X = matrix(\"1 2 3 4\", 2, 2)\n"
           "Y = rbind(X, X)\nv = nrow(Y) + 0.1 * ncol(Y)\n"),
      4.2);
  EXPECT_DOUBLE_EQ(
      Eval("X = seq(1, 6, 1)\nY = matrix(X, 2, 3)\n"
           "v = as.scalar(Y[2, 1])\n"),
      4.0);
  EXPECT_DOUBLE_EQ(
      Eval("X = seq(5, 1, -1)\nv = as.scalar(rev(X)[1, 1])\n"), 1.0);
  EXPECT_DOUBLE_EQ(
      Eval("X = matrix(\"3 1 2\", 3, 1)\n"
           "Y = order(target=X, by=1)\nv = as.scalar(Y[1, 1])\n"),
      1.0);
  EXPECT_DOUBLE_EQ(
      Eval("X = matrix(\"0 5 0\", 3, 1)\n"
           "Y = removeEmpty(target=X, margin=\"rows\")\nv = nrow(Y)\n"),
      1.0);
  EXPECT_DOUBLE_EQ(
      Eval("X = matrix(\"1 2 1\", 3, 1)\n"
           "Y = replace(target=X, pattern=1, replacement=9)\nv = sum(Y)\n"),
      20.0);
  EXPECT_DOUBLE_EQ(
      Eval("v = sum(diag(matrix(2, 3, 1)))\n"), 6.0);
  EXPECT_DOUBLE_EQ(
      Eval("A = matrix(\"1 2 2 3 3 3\", 6, 1)\n"
           "B = matrix(\"1 1 1 1 1 1\", 6, 1)\n"
           "T = table(A, B)\nv = as.scalar(T[3, 1])\n"),
      3.0);
}

TEST(DmlOpsTest, CumulativeAggregates) {
  EXPECT_DOUBLE_EQ(
      Eval("v = as.scalar(cumsum(seq(1, 4, 1))[4, 1])\n"), 10.0);
  EXPECT_DOUBLE_EQ(
      Eval("v = as.scalar(cumprod(seq(1, 4, 1))[4, 1])\n"), 24.0);
  EXPECT_DOUBLE_EQ(
      Eval("X = matrix(\"3 1 2\", 3, 1)\nv = as.scalar(cummin(X)[3, 1])\n"),
      1.0);
  EXPECT_DOUBLE_EQ(
      Eval("X = matrix(\"1 3 2\", 3, 1)\nv = as.scalar(cummax(X)[3, 1])\n"),
      3.0);
}

TEST(DmlOpsTest, QuantilesAndMedian) {
  EXPECT_DOUBLE_EQ(Eval("v = median(seq(1, 9, 1))\n"), 5.0);
  EXPECT_DOUBLE_EQ(Eval("v = quantile(seq(0, 100, 1), 0.25)\n"), 25.0);
  EXPECT_DOUBLE_EQ(Eval("v = quantile(seq(0, 100, 1), 1.0)\n"), 100.0);
}

TEST(DmlOpsTest, MatrixElementwiseAndBroadcast) {
  EXPECT_DOUBLE_EQ(
      Eval("X = matrix(2, 2, 2)\nY = X^2 / 2 - 1\nv = sum(Y)\n"), 4.0);
  EXPECT_DOUBLE_EQ(
      Eval("X = matrix(\"1 2 3 4\", 2, 2)\n"
           "c = colMeans(X)\nY = X - c\nv = sum(Y^2)\n"),
      4.0);
  EXPECT_DOUBLE_EQ(
      Eval("X = matrix(\"1 2 3 4\", 2, 2)\n"
           "v = sum(X > 2)\n"),
      2.0);
  EXPECT_DOUBLE_EQ(
      Eval("X = matrix(\"1 0 3\", 3, 1)\n"
           "Y = ifelse(X > 0, X, 0 - 1)\nv = sum(Y)\n"),
      3.0);
}

TEST(DmlOpsTest, CastsAndStrings) {
  EXPECT_DOUBLE_EQ(Eval("v = as.integer(3.7)\n"), 3.0);
  EXPECT_DOUBLE_EQ(Eval("v = as.double(\"2.5\") * 2\n"), 5.0);
  EXPECT_DOUBLE_EQ(Eval("v = as.scalar(as.matrix(4))\n"), 4.0);
  SystemDSContext ctx;
  auto r = ctx.Execute("s = toString(matrix(1, 2, 2))\nn = 1\n", {}, {"s"});
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_NE(r->GetString("s")->find("2x2"), std::string::npos);
}

TEST(DmlOpsTest, SampleAndSeq) {
  EXPECT_DOUBLE_EQ(Eval("v = nrow(seq(1, 10, 2))\n"), 5.0);
  EXPECT_DOUBLE_EQ(Eval("v = nrow(sample(50, 10, FALSE, 3))\n"), 10.0);
  EXPECT_DOUBLE_EQ(Eval("v = max(sample(5, 100, TRUE, 4))\n"), 5.0);
}

TEST(DmlOpsTest, LinearAlgebra) {
  EXPECT_NEAR(
      Eval("A = matrix(\"4 1 1 3\", 2, 2)\n"
           "b = matrix(\"1 2\", 2, 1)\n"
           "x = solve(A, b)\nr = A %*% x - b\nv = sum(r^2)\n"),
      0.0, 1e-20);
  EXPECT_NEAR(
      Eval("A = matrix(\"4 1 1 3\", 2, 2)\n"
           "I = A %*% inv(A)\nv = sum((I - diag(matrix(1, 2, 1)))^2)\n"),
      0.0, 1e-20);
  EXPECT_NEAR(Eval("v = det(matrix(\"3 8 4 6\", 2, 2))\n"), -14.0, 1e-10);
  EXPECT_NEAR(
      Eval("A = matrix(\"4 1 1 3\", 2, 2)\n"
           "L = cholesky(A)\nv = sum((L %*% t(L) - A)^2)\n"),
      0.0, 1e-20);
  // Matmult chain optimized or not, the result is identical.
  EXPECT_NEAR(
      Eval("A = rand(rows=5, cols=30, seed=1)\n"
           "B = rand(rows=30, cols=30, seed=2)\n"
           "c = rand(rows=30, cols=1, seed=3)\n"
           "r1 = (A %*% B) %*% c\n"
           "r2 = A %*% (B %*% c)\n"
           "v = sum((r1 - r2)^2)\n"),
      0.0, 1e-16);
}

TEST(DmlOpsTest, ReadWriteRoundtripInDml) {
  SystemDSContext ctx;
  auto r = ctx.Execute(
      "X = rand(rows=20, cols=4, seed=5)\n"
      "write(X, 'dml_ops_rw.csv')\n"
      "Y = read('dml_ops_rw.csv')\n"
      "v = sum((X - Y)^2)\n",
      {}, {"v"});
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_NEAR(*r->GetDouble("v"), 0.0, 1e-18);
  std::remove("dml_ops_rw.csv");
}

TEST(DmlOpsTest, BinaryFormatInDml) {
  SystemDSContext ctx;
  auto r = ctx.Execute(
      "X = rand(rows=30, cols=5, seed=6, sparsity=0.2)\n"
      "write(X, 'dml_ops_rw.bin', format='binary')\n"
      "Y = read('dml_ops_rw.bin', format='binary')\n"
      "v = sum((X - Y)^2)\n",
      {}, {"v"});
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_DOUBLE_EQ(*r->GetDouble("v"), 0.0);
  std::remove("dml_ops_rw.bin");
}

TEST(DmlOpsTest, NestedFunctionCallsInExpressions) {
  EXPECT_NEAR(
      Eval("X = rand(rows=50, cols=3, seed=7)\n"
           "y = X %*% matrix(\"1 2 3\", 3, 1)\n"
           "v = sum((X %*% lmDS(X, y, 0, 1e-12) - y)^2)\n"),
      0.0, 1e-15);
}

TEST(DmlOpsTest, WhileWithComplexPredicate) {
  EXPECT_DOUBLE_EQ(
      Eval("x = 100\nn = 0\n"
           "while (x > 1 & n < 50) {\n"
           "  x = x / 2\n"
           "  n = n + 1\n"
           "}\n"
           "v = n\n"),
      7.0);  // 100 / 2^7 < 1
}

TEST(DmlOpsTest, DeepControlFlowNesting) {
  EXPECT_DOUBLE_EQ(
      Eval("acc = 0\n"
           "for (i in 1:3) {\n"
           "  for (j in 1:3) {\n"
           "    if (i == j) {\n"
           "      acc = acc + 10\n"
           "    } else {\n"
           "      if (i < j) {\n"
           "        acc = acc + 1\n"
           "      }\n"
           "    }\n"
           "  }\n"
           "}\n"
           "v = acc\n"),
      33.0);  // 3 diagonal * 10 + 3 upper * 1
}

}  // namespace
}  // namespace sysds
