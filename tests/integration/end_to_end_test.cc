#include <gtest/gtest.h>

#include "api/systemds_context.h"

namespace sysds {
namespace {

// Helper: run a script and return the result (asserting success).
ScriptResult RunScript(const std::string& script,
                 const std::map<std::string, DataPtr>& inputs,
                 const std::vector<std::string>& outputs) {
  SystemDSContext ctx;
  auto result = ctx.Execute(script, inputs, outputs);
  EXPECT_TRUE(result.ok()) << result.status().ToString() << "\nscript:\n"
                           << script;
  return result.ok() ? *result : ScriptResult();
}

TEST(EndToEndTest, ScalarArithmetic) {
  ScriptResult r = RunScript("x = 1 + 2 * 3\ny = x ^ 2\n", {}, {"x", "y"});
  EXPECT_DOUBLE_EQ(*r.GetDouble("x"), 7.0);
  EXPECT_DOUBLE_EQ(*r.GetDouble("y"), 49.0);
}

TEST(EndToEndTest, PrintOutput) {
  ScriptResult r = RunScript("print('hello ' + 'world')\nprint(1+1)\n", {}, {});
  EXPECT_EQ(r.Output(), "hello world\n2\n");
}

TEST(EndToEndTest, MatrixCreateAndAggregate) {
  ScriptResult r = RunScript(
      "X = matrix(2, 10, 5)\n"
      "s = sum(X)\n"
      "m = mean(X)\n"
      "n = nrow(X)\n"
      "c = ncol(X)\n",
      {}, {"s", "m", "n", "c"});
  EXPECT_DOUBLE_EQ(*r.GetDouble("s"), 100.0);
  EXPECT_DOUBLE_EQ(*r.GetDouble("m"), 2.0);
  EXPECT_DOUBLE_EQ(*r.GetDouble("n"), 10.0);
  EXPECT_DOUBLE_EQ(*r.GetDouble("c"), 5.0);
}

TEST(EndToEndTest, MatrixMultiplyAndTranspose) {
  ScriptResult r = RunScript(
      "A = matrix(\"1 2 3 4\", 2, 2)\n"
      "B = t(A) %*% A\n"
      "s = sum(B)\n",
      {}, {"B", "s"});
  MatrixBlock b = *r.GetMatrix("B");
  // t(A)%*%A for A=[1 2;3 4] = [10 14; 14 20].
  EXPECT_DOUBLE_EQ(b.Get(0, 0), 10.0);
  EXPECT_DOUBLE_EQ(b.Get(0, 1), 14.0);
  EXPECT_DOUBLE_EQ(b.Get(1, 0), 14.0);
  EXPECT_DOUBLE_EQ(b.Get(1, 1), 20.0);
  EXPECT_DOUBLE_EQ(*r.GetDouble("s"), 58.0);
}

TEST(EndToEndTest, ControlFlowWhileAndIf) {
  ScriptResult r = RunScript(
      "i = 0\n"
      "s = 0\n"
      "while (i < 10) {\n"
      "  i = i + 1\n"
      "  if (i %% 2 == 0) {\n"
      "    s = s + i\n"
      "  }\n"
      "}\n",
      {}, {"s"});
  EXPECT_DOUBLE_EQ(*r.GetDouble("s"), 30.0);  // 2+4+6+8+10
}

TEST(EndToEndTest, ForLoopAccumulation) {
  ScriptResult r = RunScript(
      "acc = matrix(0, 3, 1)\n"
      "for (i in 1:3) {\n"
      "  acc[i, 1] = i * i\n"
      "}\n",
      {}, {"acc"});
  MatrixBlock acc = *r.GetMatrix("acc");
  EXPECT_DOUBLE_EQ(acc.Get(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(acc.Get(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(acc.Get(2, 0), 9.0);
}

TEST(EndToEndTest, Indexing) {
  ScriptResult r = RunScript(
      "X = matrix(\"1 2 3 4 5 6 7 8 9\", 3, 3)\n"
      "a = as.scalar(X[2, 3])\n"
      "row = X[2, ]\n"
      "col = X[, 1]\n"
      "sub = X[1:2, 2:3]\n",
      {}, {"a", "row", "col", "sub"});
  EXPECT_DOUBLE_EQ(*r.GetDouble("a"), 6.0);
  MatrixBlock row = *r.GetMatrix("row");
  EXPECT_EQ(row.Rows(), 1);
  EXPECT_EQ(row.Cols(), 3);
  EXPECT_DOUBLE_EQ(row.Get(0, 0), 4.0);
  MatrixBlock col = *r.GetMatrix("col");
  EXPECT_EQ(col.Rows(), 3);
  EXPECT_DOUBLE_EQ(col.Get(2, 0), 7.0);
  MatrixBlock sub = *r.GetMatrix("sub");
  EXPECT_DOUBLE_EQ(sub.Get(1, 1), 6.0);
}

TEST(EndToEndTest, UserDefinedFunction) {
  ScriptResult r = RunScript(
      "f = function(Double a, Double b = 10) return (Double c) {\n"
      "  c = a * b\n"
      "}\n"
      "x = f(3)\n"
      "y = f(3, 4)\n"
      "z = f(a=2, b=5)\n",
      {}, {"x", "y", "z"});
  EXPECT_DOUBLE_EQ(*r.GetDouble("x"), 30.0);
  EXPECT_DOUBLE_EQ(*r.GetDouble("y"), 12.0);
  EXPECT_DOUBLE_EQ(*r.GetDouble("z"), 10.0);
}

TEST(EndToEndTest, MultiReturnFunction) {
  ScriptResult r = RunScript(
      "f = function(Matrix[Double] X) return (Double mn, Double mx) {\n"
      "  mn = min(X)\n"
      "  mx = max(X)\n"
      "}\n"
      "X = matrix(\"3 1 4 1 5\", 5, 1)\n"
      "[lo, hi] = f(X)\n",
      {}, {"lo", "hi"});
  EXPECT_DOUBLE_EQ(*r.GetDouble("lo"), 1.0);
  EXPECT_DOUBLE_EQ(*r.GetDouble("hi"), 5.0);
}

TEST(EndToEndTest, ExternalInputsAndOutputs) {
  SystemDSContext ctx;
  MatrixBlock x = MatrixBlock::FromValues(2, 2, {1, 2, 3, 4});
  auto result = ctx.Execute("Y = X * 2 + s\n",
                            {{"X", SystemDSContext::Matrix(x)},
                             {"s", SystemDSContext::Scalar(1.0)}},
                            {"Y"});
  ASSERT_TRUE(result.ok()) << result.status();
  MatrixBlock y = *result->GetMatrix("Y");
  EXPECT_DOUBLE_EQ(y.Get(0, 0), 3.0);
  EXPECT_DOUBLE_EQ(y.Get(1, 1), 9.0);
}

TEST(EndToEndTest, LmDSBuiltinRecoversCoefficients) {
  // y = X * [2; -3] exactly; lmDS should recover the coefficients.
  ScriptResult r = RunScript(
      "X = rand(rows=200, cols=2, seed=42)\n"
      "w = matrix(\"2 -3\", 2, 1)\n"
      "y = X %*% w\n"
      "B = lmDS(X, y, 0, 1e-12)\n"
      "err = sum((B - w)^2)\n",
      {}, {"err"});
  EXPECT_LT(*r.GetDouble("err"), 1e-12);
}

TEST(EndToEndTest, LmCGMatchesLmDS) {
  ScriptResult r = RunScript(
      "X = rand(rows=100, cols=5, seed=7)\n"
      "y = rand(rows=100, cols=1, seed=8)\n"
      "B1 = lmDS(X, y, 0, 0.001)\n"
      "B2 = lmCG(X, y, 0, 0.001, 1e-12, 100)\n"
      "d = sum((B1 - B2)^2)\n",
      {}, {"d"});
  EXPECT_LT(*r.GetDouble("d"), 1e-8);
}

TEST(EndToEndTest, ParForComputesDisjointResults) {
  ScriptResult r = RunScript(
      "R = matrix(0, 1, 8)\n"
      "parfor (i in 1:8) {\n"
      "  R[1, i] = i * 10\n"
      "}\n"
      "s = sum(R)\n",
      {}, {"s"});
  EXPECT_DOUBLE_EQ(*r.GetDouble("s"), 360.0);
}

TEST(EndToEndTest, SteplmSelectsInformativeFeatures) {
  // Only features 1 and 3 are informative.
  ScriptResult r = RunScript(
      "X = rand(rows=150, cols=5, seed=3)\n"
      "y = 4 * X[, 1] - 2 * X[, 3]\n"
      "[B, S] = steplm(X, y, 0, 1e-10)\n",
      {}, {"B", "S"});
  MatrixBlock s = *r.GetMatrix("S");
  EXPECT_GT(s.Get(0, 0), 0.0);  // feature 1 selected
  EXPECT_GT(s.Get(0, 2), 0.0);  // feature 3 selected
  EXPECT_DOUBLE_EQ(s.Get(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(s.Get(0, 3), 0.0);
  EXPECT_DOUBLE_EQ(s.Get(0, 4), 0.0);
}

TEST(EndToEndTest, IfElseBranchesAndElseIf) {
  ScriptResult r = RunScript(
      "x = 5\n"
      "if (x > 10) {\n"
      "  y = 1\n"
      "} else if (x > 3) {\n"
      "  y = 2\n"
      "} else {\n"
      "  y = 3\n"
      "}\n",
      {}, {"y"});
  EXPECT_DOUBLE_EQ(*r.GetDouble("y"), 2.0);
}

TEST(EndToEndTest, ErrorUndefinedVariable) {
  SystemDSContext ctx;
  auto result = ctx.Execute("y = x + 1\n", {}, {"y"});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kValidateError);
}

TEST(EndToEndTest, ErrorDimensionMismatch) {
  SystemDSContext ctx;
  auto result = ctx.Execute(
      "A = matrix(1, 2, 3)\nB = matrix(1, 2, 3)\nC = A %*% B\n", {}, {"C"});
  EXPECT_FALSE(result.ok());
}

TEST(EndToEndTest, StopAbortsExecution) {
  SystemDSContext ctx;
  auto result =
      ctx.Execute("x = 1\nstop('custom failure')\ny = 2\n", {}, {});
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("custom failure"),
            std::string::npos);
}

}  // namespace
}  // namespace sysds
