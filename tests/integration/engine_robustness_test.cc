#include <gtest/gtest.h>

#include <cmath>

#include "api/systemds_context.h"

namespace sysds {
namespace {

TEST(EngineRobustnessTest, TinyBufferPoolStillCorrect) {
  // With an aggressively small buffer pool, intermediates spill to disk
  // and restore transparently; results are unchanged.
  DMLConfig config;
  config.buffer_pool_limit = 64 * 1024;  // 64 KB
  SystemDSContext ctx(config);
  auto r = ctx.Execute(
      "X = rand(rows=200, cols=60, seed=1)\n"       // ~96KB each
      "A = X + 1\n"
      "B = X * 2\n"
      "C = t(X) %*% X\n"
      "s = sum(A) + sum(B) + sum(C)\n",
      {}, {"s"});
  ASSERT_TRUE(r.ok()) << r.status();

  DMLConfig big;
  SystemDSContext ctx2(big);
  auto r2 = ctx2.Execute(
      "X = rand(rows=200, cols=60, seed=1)\n"
      "A = X + 1\n"
      "B = X * 2\n"
      "C = t(X) %*% X\n"
      "s = sum(A) + sum(B) + sum(C)\n",
      {}, {"s"});
  ASSERT_TRUE(r2.ok());
  EXPECT_DOUBLE_EQ(*r->GetDouble("s"), *r2->GetDouble("s"));
  EXPECT_GT(ctx.Pool()->EvictionCount(), 0);
}

TEST(EngineRobustnessTest, RuntimeErrorsCarryInstructionContext) {
  SystemDSContext ctx;
  auto r = ctx.Execute(
      "A = matrix(\"1 2 2 4\", 2, 2)\n"  // singular
      "b = matrix(1, 2, 1)\n"
      "x = solve(A, b)\n",
      {}, {});
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("singular"), std::string::npos);
  EXPECT_NE(r.status().message().find("[in solve]"), std::string::npos);
}

TEST(EngineRobustnessTest, IndexOutOfBoundsAtRuntime) {
  SystemDSContext ctx;
  auto r = ctx.Execute(
      "X = matrix(1, 3, 3)\n"
      "i = 5\n"
      "v = as.scalar(X[i, 1])\n",
      {}, {});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOutOfRange);
}

TEST(EngineRobustnessTest, DivisionByZeroFollowsIeee) {
  SystemDSContext ctx;
  auto r = ctx.Execute(
      "a = 1 / 0\n"
      "b = -1 / 0\n"
      "c = 0 / 0\n"
      "isnan = c != c\n",
      {}, {"a", "b", "isnan"});
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(std::isinf(*r->GetDouble("a")));
  EXPECT_LT(*r->GetDouble("b"), 0);
  EXPECT_EQ(*r->GetString("isnan"), "TRUE");
}

TEST(EngineRobustnessTest, EmptyMatrixOperations) {
  SystemDSContext ctx;
  auto r = ctx.Execute(
      "X = matrix(0, 0, 5)\n"
      "n = nrow(X)\n"
      "s = sum(X)\n"
      "Y = rbind(X, matrix(1, 2, 5))\n"
      "m = nrow(Y)\n",
      {}, {"n", "s", "m"});
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_DOUBLE_EQ(*r->GetDouble("n"), 0.0);
  EXPECT_DOUBLE_EQ(*r->GetDouble("s"), 0.0);
  EXPECT_DOUBLE_EQ(*r->GetDouble("m"), 2.0);
}

TEST(EngineRobustnessTest, LargeLoopManyIterations) {
  SystemDSContext ctx;
  auto r = ctx.Execute(
      "s = 0\n"
      "for (i in 1:10000) {\n"
      "  s = s + i\n"
      "}\n",
      {}, {"s"});
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_DOUBLE_EQ(*r->GetDouble("s"), 10000.0 * 10001.0 / 2.0);
}

TEST(EngineRobustnessTest, RecursionInUserFunctions) {
  SystemDSContext ctx;
  auto r = ctx.Execute(
      "fact = function(Double n) return (Double f) {\n"
      "  if (n <= 1) {\n"
      "    f = 1\n"
      "  } else {\n"
      "    f = n * fact(n - 1)\n"
      "  }\n"
      "}\n"
      "v = fact(10)\n",
      {}, {"v"});
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_DOUBLE_EQ(*r->GetDouble("v"), 3628800.0);
}

TEST(EngineRobustnessTest, ShadowingParameterNames) {
  SystemDSContext ctx;
  auto r = ctx.Execute(
      "f = function(Matrix[Double] X) return (Matrix[Double] X) {\n"
      "  X = X * 2\n"
      "}\n"
      "X = matrix(3, 2, 2)\n"
      "Y = f(X)\n"
      "a = sum(X)\n"
      "b = sum(Y)\n",
      {}, {"a", "b"});
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_DOUBLE_EQ(*r->GetDouble("a"), 12.0);  // caller X untouched
  EXPECT_DOUBLE_EQ(*r->GetDouble("b"), 24.0);
}

TEST(EngineRobustnessTest, SparseDenseTransitionsInScript) {
  SystemDSContext ctx;
  auto r = ctx.Execute(
      "X = rand(rows=200, cols=200, seed=1, sparsity=0.01)\n"  // sparse
      "Y = X + 1\n"                                            // densifies
      "Z = Y * (X != 0)\n"                                     // re-sparsifies
      "v = sum(Z) - sum(X) - sum(X != 0)\n",
      {}, {"v"});
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_NEAR(*r->GetDouble("v"), 0.0, 1e-9);
}

}  // namespace
}  // namespace sysds
