#include "obs/trace.h"

#include <gtest/gtest.h>

#include <set>
#include <thread>
#include <vector>

#include "common/json.h"

namespace sysds {
namespace obs {
namespace {

std::string ExportToString() {
  std::ostringstream os;
  Tracer::Get().ExportChromeTrace(os);
  return os.str();
}

// Parses the export and returns the traceEvents array.
std::vector<JsonValue> ParsedEvents(const std::string& json) {
  auto doc = ParseJson(json);
  EXPECT_TRUE(doc.ok()) << doc.status().ToString();
  if (!doc.ok()) return {};
  const JsonValue* events = doc->Find("traceEvents");
  EXPECT_NE(events, nullptr);
  if (events == nullptr) return {};
  return events->AsArray();
}

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Tracer::Get().Clear();
    Tracer::Get().Enable();
  }
  void TearDown() override {
    Tracer::Get().Disable();
    Tracer::Get().Clear();
  }
};

TEST_F(TraceTest, NestedSpansRecordContainedIntervals) {
  {
    ScopedSpan outer("test", "outer");
    {
      ScopedSpan inner("test", "inner");
    }
  }
  Tracer::Get().Disable();

  std::vector<JsonValue> events = ParsedEvents(ExportToString());
  const JsonValue* outer = nullptr;
  const JsonValue* inner = nullptr;
  for (const JsonValue& ev : events) {
    const JsonValue* name = ev.Find("name");
    if (name == nullptr) continue;
    if (name->AsString() == "outer") outer = &ev;
    if (name->AsString() == "inner") inner = &ev;
  }
  ASSERT_NE(outer, nullptr);
  ASSERT_NE(inner, nullptr);
  double ots = outer->Find("ts")->AsNumber();
  double odur = outer->Find("dur")->AsNumber();
  double its = inner->Find("ts")->AsNumber();
  double idur = inner->Find("dur")->AsNumber();
  // The inner complete event nests inside the outer one.
  EXPECT_GE(its, ots);
  EXPECT_LE(its + idur, ots + odur + 1e-6);
  EXPECT_EQ(outer->Find("ph")->AsString(), "X");
  EXPECT_EQ(outer->Find("cat")->AsString(), "test");
}

TEST_F(TraceTest, InstantEventsAppear) {
  Tracer::Instant("test", "tick");
  Tracer::Get().Disable();
  std::vector<JsonValue> events = ParsedEvents(ExportToString());
  bool found = false;
  for (const JsonValue& ev : events) {
    const JsonValue* name = ev.Find("name");
    if (name != nullptr && name->AsString() == "tick") {
      found = true;
      EXPECT_EQ(ev.Find("ph")->AsString(), "i");
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(TraceTest, DisabledSpansRecordNothing) {
  Tracer::Get().Disable();
  {
    ScopedSpan span("test", "invisible");
  }
  Tracer::Instant("test", "also_invisible");
  for (const JsonValue& ev : ParsedEvents(ExportToString())) {
    const JsonValue* name = ev.Find("name");
    ASSERT_NE(name, nullptr);
    EXPECT_NE(name->AsString(), "invisible");
    EXPECT_NE(name->AsString(), "also_invisible");
  }
}

TEST_F(TraceTest, CrossThreadSpansLandOnDistinctNamedTracks) {
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([t] {
      Tracer::SetCurrentThreadName("unit-worker-" + std::to_string(t));
      for (int i = 0; i < 100; ++i) {
        ScopedSpan span("test", "work");
      }
    });
  }
  for (auto& t : threads) t.join();
  Tracer::Get().Disable();

  std::vector<JsonValue> events = ParsedEvents(ExportToString());
  std::set<int> work_tids;
  std::set<std::string> thread_names;
  int work_events = 0;
  for (const JsonValue& ev : events) {
    const JsonValue* name = ev.Find("name");
    if (name == nullptr) continue;
    if (name->AsString() == "work") {
      ++work_events;
      work_tids.insert(static_cast<int>(ev.Find("tid")->AsNumber()));
    }
    if (name->AsString() == "thread_name") {
      thread_names.insert(ev.Find("args")->Find("name")->AsString());
    }
  }
  EXPECT_EQ(work_events, kThreads * 100);
  EXPECT_EQ(work_tids.size(), static_cast<size_t>(kThreads));
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(thread_names.count("unit-worker-" + std::to_string(t)));
  }
}

TEST_F(TraceTest, RingBufferWrapKeepsNewestAndCountsDropped) {
  Tracer::Get().SetBufferCapacity(64);
  std::thread writer([] {
    for (int i = 0; i < 1000; ++i) {
      ScopedSpan span("test", "wrapped");
    }
  });
  writer.join();
  Tracer::Get().SetBufferCapacity(16384);
  Tracer::Get().Disable();

  std::string json = ExportToString();
  std::vector<JsonValue> events = ParsedEvents(json);
  int wrapped = 0;
  for (const JsonValue& ev : events) {
    const JsonValue* name = ev.Find("name");
    if (name != nullptr && name->AsString() == "wrapped") ++wrapped;
  }
  EXPECT_EQ(wrapped, 64);  // newest events retained, export still valid JSON
  EXPECT_NE(Tracer::Get().Summary().find("dropped"), std::string::npos);
}

TEST_F(TraceTest, SummaryAggregatesByCategoryAndName) {
  for (int i = 0; i < 3; ++i) {
    ScopedSpan span("cat", "op");
  }
  Tracer::Get().Disable();
  std::vector<SpanAggregate> agg = Tracer::Get().Aggregate();
  bool found = false;
  for (const SpanAggregate& a : agg) {
    if (a.category == "cat" && a.name == "op") {
      found = true;
      EXPECT_EQ(a.count, 3);
    }
  }
  EXPECT_TRUE(found);
  EXPECT_NE(Tracer::Get().Summary().find("cat.op"), std::string::npos);
}

TEST_F(TraceTest, LongNamesAreTruncatedNotCorrupted) {
  std::string long_name(200, 'x');
  {
    ScopedSpan span("test", long_name);
  }
  Tracer::Get().Disable();
  std::vector<JsonValue> events = ParsedEvents(ExportToString());
  bool found = false;
  for (const JsonValue& ev : events) {
    const JsonValue* name = ev.Find("name");
    if (name != nullptr && name->AsString().find("xxx") == 0) {
      found = true;
      EXPECT_EQ(name->AsString().size(), TraceEvent::kNameCapacity);
    }
  }
  EXPECT_TRUE(found);
}

}  // namespace
}  // namespace obs
}  // namespace sysds
