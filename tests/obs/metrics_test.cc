#include "obs/metrics.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "common/json.h"
#include "common/statistics.h"

namespace sysds {
namespace obs {
namespace {

TEST(MetricsTest, CounterConcurrentIncrements) {
  Counter* c = MetricsRegistry::Get().GetCounter("test.metrics.concurrent");
  c->Reset();
  constexpr int kThreads = 8;
  constexpr int kIncrements = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([c] {
      for (int i = 0; i < kIncrements; ++i) c->Add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c->Value(), kThreads * kIncrements);
}

TEST(MetricsTest, RegistryReturnsStablePointers) {
  Counter* a = MetricsRegistry::Get().GetCounter("test.metrics.stable");
  Counter* b = MetricsRegistry::Get().GetCounter("test.metrics.stable");
  EXPECT_EQ(a, b);
  EXPECT_EQ(MetricsRegistry::Get().CounterValue("test.metrics.never_made"),
            0);
}

TEST(MetricsTest, GaugeSetAndAdd) {
  Gauge* g = MetricsRegistry::Get().GetGauge("test.metrics.gauge");
  g->Set(42);
  EXPECT_EQ(g->Value(), 42);
  g->Add(-2);
  EXPECT_EQ(g->Value(), 40);
}

TEST(MetricsTest, HistogramLogBucketsAndQuantiles) {
  Histogram* h = MetricsRegistry::Get().GetHistogram("test.metrics.hist");
  h->Reset();
  // 100 small values and 1 huge outlier: p50 stays small, p99 region large.
  for (int i = 0; i < 100; ++i) h->Observe(100);  // bucket bit_width(100)=7
  h->Observe(1 << 20);
  EXPECT_EQ(h->Count(), 101);
  EXPECT_EQ(h->Sum(), 100 * 100 + (1 << 20));
  EXPECT_LE(h->ApproxQuantile(0.5), 128);
  EXPECT_GE(h->ApproxQuantile(1.0), 1 << 20);
  EXPECT_EQ(h->BucketCount(7), 100);
}

TEST(MetricsTest, HistogramNonPositiveValuesLandInBucketZero) {
  Histogram* h = MetricsRegistry::Get().GetHistogram("test.metrics.hist0");
  h->Reset();
  h->Observe(0);
  h->Observe(-5);
  EXPECT_EQ(h->BucketCount(0), 2);
}

TEST(MetricsTest, ExportJsonIsWellFormed) {
  MetricsRegistry::Get().GetCounter("test.metrics.json\"quote")->Add(3);
  MetricsRegistry::Get().GetGauge("test.metrics.jsong")->Set(7);
  Histogram* h = MetricsRegistry::Get().GetHistogram("test.metrics.jsonh");
  h->Observe(1000);
  auto doc = ParseJson(MetricsRegistry::Get().ExportJson());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const JsonValue* counters = doc->Find("counters");
  ASSERT_NE(counters, nullptr);
  const JsonValue* quoted = counters->Find("test.metrics.json\"quote");
  ASSERT_NE(quoted, nullptr);
  EXPECT_EQ(quoted->AsNumber(), 3);
  const JsonValue* hist = doc->Find("histograms")->Find("test.metrics.jsonh");
  ASSERT_NE(hist, nullptr);
  EXPECT_GE(hist->Find("count")->AsNumber(), 1);
}

// The Statistics facade rides on the registry: same counters, no mutex.
TEST(MetricsTest, StatisticsFacadeSharesRegistry) {
  Statistics::Get().Reset();
  Statistics::Get().IncCounter("test.facade.counter", 9);
  EXPECT_EQ(MetricsRegistry::Get().CounterValue("test.facade.counter"), 9);
  MetricsRegistry::Get().GetCounter("test.facade.counter")->Add(1);
  EXPECT_EQ(Statistics::Get().GetCounter("test.facade.counter"), 10);
}

TEST(MetricsTest, StatisticsInstructionTimesAggregate) {
  Statistics::Get().Reset();
  constexpr int kThreads = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([] {
      for (int i = 0; i < 1000; ++i) {
        Statistics::Get().IncInstruction("test.op", 0.001);
      }
    });
  }
  for (auto& t : threads) t.join();
  std::string report = Statistics::Get().Report();
  EXPECT_NE(report.find("test.op\t4000\t"), std::string::npos);
}

}  // namespace
}  // namespace obs
}  // namespace sysds
