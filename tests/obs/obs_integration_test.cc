// End-to-end observability: run a DML script with tracing enabled and
// assert the exported Chrome trace contains nested spans from at least four
// distinct subsystems (compiler, CP interpreter, buffer pool, lineage).

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "api/systemds_context.h"
#include "common/json.h"
#include "obs/trace.h"

namespace sysds {
namespace {

TEST(ObsIntegrationTest, TraceCoversCompileCpBufferPoolAndLineage) {
  obs::Tracer::Get().Clear();

  DMLConfig config;
  config.lineage_tracing = true;
  config.reuse_policy = ReusePolicy::kFull;
  // Tiny pool limit: registering the second matrix must evict the first,
  // and using it again must restore it (bufferpool spill + restore spans).
  config.buffer_pool_limit = 4 * 1024;

  std::string trace_path =
      std::string(::testing::TempDir()) + "obs_integration_trace.json";
  {
    SystemDSContext ctx(config);
    ctx.EnableTracing(trace_path);
    auto r = ctx.Execute(
        "A = rand(rows=100, cols=100, seed=1)\n"
        "B = rand(rows=100, cols=100, seed=2)\n"
        "C = A %*% B\n"
        "s = sum(C)\n"
        "t = sum(C)\n",  // recomputation: lineage cache probe + reuse
        {}, {"s"});
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    ASSERT_TRUE(ctx.FlushObservability().ok());
  }

  std::ifstream in(trace_path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  auto doc = ParseJson(buf.str());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  const JsonValue* events = doc->Find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_GT(events->AsArray().size(), 0u);

  std::set<std::string> categories;
  double compile_ts = -1, compile_end = -1, parse_ts = -1, parse_end = -1;
  for (const JsonValue& ev : events->AsArray()) {
    const JsonValue* cat = ev.Find("cat");
    if (cat != nullptr) categories.insert(cat->AsString());
    const JsonValue* name = ev.Find("name");
    if (name == nullptr) continue;
    if (name->AsString() == "compile_dml") {
      compile_ts = ev.Find("ts")->AsNumber();
      compile_end = compile_ts + ev.Find("dur")->AsNumber();
    }
    if (name->AsString() == "parse") {
      parse_ts = ev.Find("ts")->AsNumber();
      parse_end = parse_ts + ev.Find("dur")->AsNumber();
    }
  }

  // ≥ 4 distinct subsystems traced.
  EXPECT_TRUE(categories.count("compiler")) << buf.str().substr(0, 2000);
  EXPECT_TRUE(categories.count("cp"));
  EXPECT_TRUE(categories.count("bufferpool"));
  EXPECT_TRUE(categories.count("lineage"));

  // Nesting: the parse phase lies inside the compile_dml span.
  ASSERT_GE(compile_ts, 0.0);
  ASSERT_GE(parse_ts, 0.0);
  EXPECT_GE(parse_ts, compile_ts);
  // 0.5us slack: exported timestamps are truncated to 0.1us resolution.
  EXPECT_LE(parse_end, compile_end + 0.5);

  std::remove(trace_path.c_str());
}

TEST(ObsIntegrationTest, MetricsExportWritesRegistryJson) {
  std::string metrics_path =
      std::string(::testing::TempDir()) + "obs_integration_metrics.json";
  {
    SystemDSContext ctx;
    ctx.EnableMetricsExport(metrics_path);
    auto r = ctx.Execute("X = rand(rows=20, cols=20, seed=3)\ns = sum(X)\n",
                         {}, {"s"});
    ASSERT_TRUE(r.ok()) << r.status().ToString();
  }  // destructor flushes

  std::ifstream in(metrics_path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  auto doc = ParseJson(buf.str());
  ASSERT_TRUE(doc.ok()) << doc.status().ToString();
  EXPECT_NE(doc->Find("counters"), nullptr);
  EXPECT_NE(doc->Find("gauges"), nullptr);
  EXPECT_NE(doc->Find("instructions"), nullptr);
  std::remove(metrics_path.c_str());
}

}  // namespace
}  // namespace sysds
