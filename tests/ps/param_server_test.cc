#include "runtime/ps/param_server.h"

#include <gtest/gtest.h>

#include "runtime/matrix/lib_datagen.h"
#include "runtime/matrix/lib_matmult.h"

namespace sysds {
namespace {

struct PsData {
  MatrixBlock x;
  MatrixBlock y;
  MatrixBlock w;
};

PsData LinearData(int64_t n, int64_t m, uint64_t seed) {
  PsData d;
  d.x = *RandMatrix(n, m, -1, 1, 1.0, seed, RandPdf::kUniform, 1);
  d.w = *RandMatrix(m, 1, -1, 1, 1.0, seed + 1, RandPdf::kUniform, 1);
  d.y = *MatMult(d.x, d.w, 1);
  return d;
}

TEST(ParamServerTest, BspLinearRegressionConverges) {
  PsData d = LinearData(600, 8, 1);
  PsConfig config;
  config.num_workers = 4;
  config.epochs = 60;
  config.batch_size = 32;
  config.learning_rate = 0.3;
  config.mode = PsUpdateMode::kBSP;
  auto result = PsTrain(d.x, d.y, config);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_LT(result->final_loss, 1e-3);
  EXPECT_GT(result->pushes, 0);
}

TEST(ParamServerTest, AspAlsoConverges) {
  PsData d = LinearData(600, 8, 2);
  PsConfig config;
  config.num_workers = 4;
  config.epochs = 60;
  config.batch_size = 32;
  config.learning_rate = 0.3;
  config.mode = PsUpdateMode::kASP;
  auto result = PsTrain(d.x, d.y, config);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result->final_loss, 1e-2);  // looser: async staleness
}

TEST(ParamServerTest, SingleWorkerDeterministic) {
  PsData d = LinearData(200, 5, 3);
  PsConfig config;
  config.num_workers = 1;
  config.epochs = 10;
  config.mode = PsUpdateMode::kBSP;
  auto r1 = PsTrain(d.x, d.y, config);
  auto r2 = PsTrain(d.x, d.y, config);
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_TRUE(r1->weights.EqualsApprox(r2->weights, 0));
}

TEST(ParamServerTest, LogisticRegressionLearnsSeparator) {
  // Labels from a noiseless linear separator.
  MatrixBlock x = *RandMatrix(500, 4, -1, 1, 1.0, 4, RandPdf::kUniform, 1);
  MatrixBlock w = MatrixBlock::FromValues(4, 1, {2, -1, 0.5, 1});
  auto score = MatMult(x, w, 1);
  MatrixBlock y = MatrixBlock::Dense(500, 1);
  for (int64_t i = 0; i < 500; ++i) {
    y.Set(i, 0, score->Get(i, 0) > 0 ? 1.0 : 0.0);
  }
  PsConfig config;
  config.objective = PsObjective::kLogisticRegression;
  config.num_workers = 2;
  config.epochs = 80;
  config.learning_rate = 0.5;
  auto result = PsTrain(x, y, config);
  ASSERT_TRUE(result.ok());
  // Training accuracy.
  auto pred = MatMult(x, result->weights, 1);
  int64_t correct = 0;
  for (int64_t i = 0; i < 500; ++i) {
    bool p = pred->Get(i, 0) > 0;
    if (p == (y.Get(i, 0) > 0.5)) ++correct;
  }
  EXPECT_GT(correct, 470);  // > 94% accuracy
}

TEST(ParamServerTest, InvalidConfigsRejected) {
  PsData d = LinearData(50, 3, 5);
  PsConfig bad;
  bad.num_workers = 0;
  EXPECT_FALSE(PsTrain(d.x, d.y, bad).ok());
  MatrixBlock wrong_y = MatrixBlock::Dense(10, 1);
  EXPECT_FALSE(PsTrain(d.x, wrong_y, PsConfig()).ok());
}

}  // namespace
}  // namespace sysds
