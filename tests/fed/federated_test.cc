#include "fed/federated.h"

#include <gtest/gtest.h>

#include "common/faults.h"
#include "runtime/matrix/lib_datagen.h"
#include "runtime/matrix/lib_matmult.h"
#include "runtime/matrix/lib_solve.h"

namespace sysds {
namespace {

MatrixBlock Random(int64_t rows, int64_t cols, uint64_t seed) {
  return *RandMatrix(rows, cols, -1, 1, 1.0, seed, RandPdf::kUniform, 1);
}

TEST(FederatedSerializationTest, MatrixRoundtrip) {
  MatrixBlock m = Random(13, 7, 1);
  auto back = DeserializeMatrix(SerializeMatrix(m));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->EqualsApprox(m, 0));
  std::vector<uint8_t> garbage = {1, 2, 3};
  EXPECT_FALSE(DeserializeMatrix(garbage).ok());
}

TEST(FederatedWorkerTest, PutGetExec) {
  FederatedWorker worker(0);
  MatrixBlock m = Random(10, 4, 2);
  FederatedMessage put;
  put.type = FederatedMessage::Type::kPutMatrix;
  put.output_name = "X";
  put.payload = SerializeMatrix(m);
  EXPECT_EQ(worker.Request(put).type, FederatedMessage::Type::kResponse);

  FederatedMessage get;
  get.type = FederatedMessage::Type::kGetMatrix;
  get.names = {"X"};
  FederatedMessage resp = worker.Request(get);
  ASSERT_EQ(resp.type, FederatedMessage::Type::kResponse);
  EXPECT_TRUE(DeserializeMatrix(resp.payload)->EqualsApprox(m, 0));

  FederatedMessage exec;
  exec.type = FederatedMessage::Type::kExec;
  exec.opcode = "tsmm";
  exec.names = {"X"};
  FederatedMessage exec_resp = worker.Request(exec);
  ASSERT_EQ(exec_resp.type, FederatedMessage::Type::kResponse);
  auto local = TransposeSelfMatMult(m, true, 1);
  EXPECT_TRUE(DeserializeMatrix(exec_resp.payload)->EqualsApprox(*local, 1e-9));
  EXPECT_GT(worker.BytesReceived(), 0);
  EXPECT_GT(worker.BytesSent(), 0);
}

TEST(FederatedWorkerTest, ErrorsForUnknownData) {
  FederatedWorker worker(0);
  FederatedMessage get;
  get.type = FederatedMessage::Type::kGetMatrix;
  get.names = {"missing"};
  EXPECT_EQ(worker.Request(get).type, FederatedMessage::Type::kError);
  FederatedMessage exec;
  exec.type = FederatedMessage::Type::kExec;
  exec.opcode = "nonsense";
  EXPECT_EQ(worker.Request(exec).type, FederatedMessage::Type::kError);
}

class FederatedMatrixTest : public ::testing::TestWithParam<int> {};

TEST_P(FederatedMatrixTest, PushDownOpsMatchLocal) {
  int sites = GetParam();
  FederatedRegistry registry(sites);
  MatrixBlock x = Random(101, 9, 3);  // deliberately uneven partitioning
  MatrixBlock y = Random(101, 2, 4);
  auto fx = FederatedMatrix::Distribute(&registry, x, "X");
  auto fy = FederatedMatrix::Distribute(&registry, y, "Y");
  ASSERT_TRUE(fx.ok() && fy.ok());
  EXPECT_EQ(static_cast<int>(fx->Partitions().size()), sites);

  auto tsmm = fx->TsmmLeft();
  ASSERT_TRUE(tsmm.ok());
  EXPECT_TRUE(tsmm->EqualsApprox(*TransposeSelfMatMult(x, true, 1), 1e-9));

  auto tmm = fx->Tmm(*fy);
  ASSERT_TRUE(tmm.ok());
  EXPECT_TRUE(tmm->EqualsApprox(*TransposeLeftMatMult(x, y, 1), 1e-9));

  MatrixBlock v = Random(9, 1, 5);
  auto mv = fx->MatVec(v);
  ASSERT_TRUE(mv.ok());
  EXPECT_TRUE(mv->EqualsApprox(*MatMult(x, v, 1), 1e-9));

  auto cs = fx->ColSums();
  ASSERT_TRUE(cs.ok());
  EXPECT_EQ(cs->Rows(), 1);

  auto collected = fx->Collect();
  ASSERT_TRUE(collected.ok());
  EXPECT_TRUE(collected->EqualsApprox(x, 0));
}

INSTANTIATE_TEST_SUITE_P(SiteCounts, FederatedMatrixTest,
                         ::testing::Values(1, 2, 3, 5));

TEST(FederatedLmTest, MatchesLocalClosedForm) {
  FederatedRegistry registry(4);
  MatrixBlock x = Random(200, 12, 6);
  MatrixBlock w = Random(12, 1, 7);
  auto y = MatMult(x, w, 1);
  auto fx = FederatedMatrix::Distribute(&registry, x, "X");
  auto fy = FederatedMatrix::Distribute(&registry, *y, "y");
  ASSERT_TRUE(fx.ok() && fy.ok());
  auto b = FederatedLmDS(*fx, *fy, 1e-10);
  ASSERT_TRUE(b.ok());
  EXPECT_TRUE(b->EqualsApprox(w, 1e-6));
}

TEST(FederatedLmTest, PushDownMovesLessDataThanCentralize) {
  FederatedRegistry registry(4);
  MatrixBlock x = Random(2000, 16, 8);
  auto y = MatMult(x, Random(16, 1, 9), 1);
  auto fx = FederatedMatrix::Distribute(&registry, x, "X");
  auto fy = FederatedMatrix::Distribute(&registry, *y, "y");
  int64_t after_init = registry.TotalBytesTransferred();
  ASSERT_TRUE(FederatedLmDS(*fx, *fy, 1e-8).ok());
  int64_t pushdown = registry.TotalBytesTransferred() - after_init;
  ASSERT_TRUE(fx->Collect().ok());
  int64_t centralize =
      registry.TotalBytesTransferred() - after_init - pushdown;
  EXPECT_LT(pushdown * 5, centralize);  // at least 5x less traffic
}

TEST(FederatedCircuitBreakerTest, HalfOpenProbeRecoversSite) {
  FederatedRegistry registry(1);
  MatrixBlock m = Random(8, 3, 11);
  FederatedMessage put;
  put.type = FederatedMessage::Type::kPutMatrix;
  put.output_name = "X";
  put.payload = SerializeMatrix(m);
  ASSERT_TRUE(registry.Call(0, put).ok());

  FederatedMessage get;
  get.type = FederatedMessage::Type::kGetMatrix;
  get.names = {"X"};
  FedCallOptions fast;
  fast.max_attempts = 1;  // one attempt per call: breaker opens quickly

  {
    FaultConfig dead;
    dead.enabled = true;
    dead.seed = 1;
    dead.profile.dead_targets = {{FaultLayer::kFederated, 0}};
    ScopedFaultInjection chaos(dead);
    for (int i = 0; i < FederatedRegistry::kCircuitBreakerThreshold; ++i) {
      EXPECT_FALSE(registry.Call(0, get, fast).ok());
    }
    ASSERT_FALSE(registry.SiteHealthy(0));
    // While the site stays dead, the periodic half-open probes fail and
    // the breaker stays open.
    for (int i = 0; i < 2 * FederatedRegistry::kHalfOpenInterval; ++i) {
      EXPECT_FALSE(registry.Call(0, get, fast).ok());
    }
    EXPECT_FALSE(registry.SiteHealthy(0));
  }

  // Site recovered. The breaker still rejects fast — until the next
  // half-open probe goes through, succeeds, and closes it for good.
  int rejected = 0;
  bool recovered = false;
  for (int i = 0; i < FederatedRegistry::kHalfOpenInterval; ++i) {
    auto r = registry.Call(0, get, fast);
    if (r.ok()) {
      recovered = true;
      EXPECT_TRUE(DeserializeMatrix(r->payload)->EqualsApprox(m, 0));
      break;
    }
    ++rejected;
  }
  EXPECT_TRUE(recovered);
  EXPECT_EQ(rejected, FederatedRegistry::kHalfOpenInterval - 1);
  EXPECT_TRUE(registry.SiteHealthy(0));
  EXPECT_TRUE(registry.Call(0, get, fast).ok());  // closed: no rejections
}

TEST(FederatedMatrixTest, MisalignedTmmRejected) {
  FederatedRegistry r2(2);
  FederatedRegistry r3(3);
  MatrixBlock x = Random(60, 4, 10);
  auto fx = FederatedMatrix::Distribute(&r2, x, "X");
  auto fy = FederatedMatrix::Distribute(&r3, x, "Y");
  ASSERT_TRUE(fx.ok() && fy.ok());
  EXPECT_FALSE(fx->Tmm(*fy).ok());
}

}  // namespace
}  // namespace sysds
