#include "runtime/bufferpool/buffer_pool.h"

#include <gtest/gtest.h>

#include <cmath>

#include "api/systemds_context.h"
#include "common/faults.h"
#include "obs/metrics.h"
#include "runtime/controlprog/data.h"

namespace sysds {
namespace {

class BufferPoolTest : public ::testing::Test {
 protected:
  void TearDown() override {
    MatrixObject::SetBufferPool(nullptr);
    FaultInjector::Get().Disable();
  }
};

FaultConfig SpillErrorConfig(double prob) {
  FaultConfig c;
  c.enabled = true;
  c.seed = 1;
  c.profile.spill_error_prob = prob;
  return c;
}

int64_t FaultCounter(const std::string& name) {
  return obs::MetricsRegistry::Get().CounterValue(name);
}

TEST_F(BufferPoolTest, TracksRegisteredBytes) {
  BufferPool pool(1 << 30);
  MatrixObject::SetBufferPool(&pool);
  auto m = std::make_shared<MatrixObject>(MatrixBlock::Dense(100, 100, 1.0));
  EXPECT_GE(pool.CachedBytes(), 100 * 100 * 8);
  m.reset();
  EXPECT_EQ(pool.CachedBytes(), 0);
}

TEST_F(BufferPoolTest, EvictsLruAndRestoresTransparently) {
  // Pool fits ~2 of the 80KB blocks.
  BufferPool pool(200 * 1024);
  MatrixObject::SetBufferPool(&pool);
  std::vector<std::shared_ptr<MatrixObject>> objs;
  for (int i = 0; i < 5; ++i) {
    objs.push_back(std::make_shared<MatrixObject>(
        MatrixBlock::Dense(100, 100, static_cast<double>(i + 1))));
  }
  // With write-behind the pool may float between the soft and hard limit
  // until the background writer catches up; Drain() observes steady state.
  pool.Drain();
  EXPECT_GT(pool.EvictionCount(), 0);
  EXPECT_LE(pool.CachedBytes(), 200 * 1024);
  // The first object was evicted; acquiring restores the exact contents.
  EXPECT_FALSE(objs[0]->IsCached());
  auto restored = objs[0]->AcquireRead();
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_DOUBLE_EQ((*restored)->Get(50, 50), 1.0);
  EXPECT_EQ((*restored)->NonZeros(), 100 * 100);
  objs[0]->Release();
}

TEST_F(BufferPoolTest, PinnedObjectsAreNotEvicted) {
  BufferPool pool(1 << 30);
  MatrixObject::SetBufferPool(&pool);
  auto pinned =
      std::make_shared<MatrixObject>(MatrixBlock::Dense(100, 100, 7.0));
  ASSERT_TRUE(pinned->AcquireRead().ok());  // pin
  pool.SetLimit(1024);  // force eviction pressure
  // Allocate more to trigger eviction attempts.
  auto other =
      std::make_shared<MatrixObject>(MatrixBlock::Dense(100, 100, 8.0));
  EXPECT_TRUE(pinned->IsCached());  // survived because pinned
  pinned->Release();
}

TEST_F(BufferPoolTest, SparseBlocksSurviveEviction) {
  BufferPool pool(64 * 1024);
  MatrixObject::SetBufferPool(&pool);
  MatrixBlock sparse = MatrixBlock::Sparse(500, 500);
  sparse.Set(3, 7, 1.5);
  sparse.Set(400, 499, -2.5);
  auto obj = std::make_shared<MatrixObject>(std::move(sparse));
  // Push it out with dense blocks.
  std::vector<std::shared_ptr<MatrixObject>> filler;
  for (int i = 0; i < 4; ++i) {
    filler.push_back(
        std::make_shared<MatrixObject>(MatrixBlock::Dense(100, 100, 1.0)));
  }
  auto restored = obj->AcquireRead();
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_DOUBLE_EQ((*restored)->Get(3, 7), 1.5);
  EXPECT_DOUBLE_EQ((*restored)->Get(400, 499), -2.5);
  EXPECT_EQ((*restored)->NonZeros(), 2);
  obj->Release();
}

TEST_F(BufferPoolTest, MetadataAvailableWhileEvicted) {
  BufferPool pool(1024);  // everything evicts
  MatrixObject::SetBufferPool(&pool);
  auto a = std::make_shared<MatrixObject>(MatrixBlock::Dense(64, 32, 1.0));
  auto b = std::make_shared<MatrixObject>(MatrixBlock::Dense(16, 8, 1.0));
  EXPECT_EQ(a->Rows(), 64);
  EXPECT_EQ(a->Cols(), 32);
  EXPECT_EQ(a->NonZeros(), 64 * 32);
}

TEST_F(BufferPoolTest, SpillFailureRepinsAndKeepsAccountingConsistent) {
  BufferPool pool(1 << 30);
  MatrixObject::SetBufferPool(&pool);
  std::vector<std::shared_ptr<MatrixObject>> objs;
  for (int i = 0; i < 4; ++i) {
    objs.push_back(std::make_shared<MatrixObject>(
        MatrixBlock::Dense(100, 100, static_cast<double>(i + 1))));
  }
  int64_t tracked = pool.CachedBytes();
  int64_t evictions_before = pool.EvictionCount();
  int64_t repins_before = FaultCounter("fault.bufferpool.spill_repins");
  int64_t retries_before = FaultCounter("fault.bufferpool.spill_retries");

  // Every spill write fails: eviction must retry, then re-pin the victims
  // in memory without corrupting LRU/byte accounting.
  {
    ScopedFaultInjection chaos(SpillErrorConfig(1.0));
    pool.SetLimit(1024);
    for (const auto& o : objs) EXPECT_TRUE(o->IsCached());
    EXPECT_EQ(pool.CachedBytes(), tracked);  // nothing untracked or leaked
    EXPECT_EQ(pool.EvictionCount(), evictions_before);
    EXPECT_GT(FaultCounter("fault.bufferpool.spill_retries"), retries_before);
    EXPECT_GT(FaultCounter("fault.bufferpool.spill_repins"), repins_before);
  }

  // Once the spill device recovers, the same pressure evicts normally.
  pool.SetLimit(1023);  // re-trigger the eviction pass
  EXPECT_GT(pool.EvictionCount(), evictions_before);
  EXPECT_LE(pool.CachedBytes(), 1023);
  // Evicted contents restore intact.
  auto restored = objs[0]->AcquireRead();
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_DOUBLE_EQ((*restored)->Get(50, 50), 1.0);
  objs[0]->Release();
}

TEST_F(BufferPoolTest, RestoreFailurePropagatesAndStaysRetryable) {
  BufferPool pool(1 << 30);
  MatrixObject::SetBufferPool(&pool);
  auto obj = std::make_shared<MatrixObject>(MatrixBlock::Dense(64, 64, 3.0));
  pool.SetLimit(64);  // spill it (injection off, so the write succeeds)
  ASSERT_FALSE(obj->IsCached());

  int64_t retries_before = FaultCounter("fault.bufferpool.restore_retries");
  int64_t failures_before = FaultCounter("fault.bufferpool.restore_failures");
  {
    // Both the read and its retry fail: the error must surface to the
    // caller — never a substitute zeros block — and leave the object
    // unpinned with its spill file intact.
    ScopedFaultInjection chaos(SpillErrorConfig(1.0));
    auto acquired = obj->AcquireRead();
    ASSERT_FALSE(acquired.ok());
    EXPECT_EQ(acquired.status().code(), StatusCode::kIoError);
    EXPECT_FALSE(obj->IsCached());
  }
  EXPECT_GT(FaultCounter("fault.bufferpool.restore_retries"), retries_before);
  EXPECT_GT(FaultCounter("fault.bufferpool.restore_failures"),
            failures_before);

  // The failure is transient, not fatal: once the spill device recovers,
  // the same acquire succeeds from the kept spill file.
  auto recovered = obj->AcquireRead();
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  EXPECT_DOUBLE_EQ((*recovered)->Get(10, 10), 3.0);
  obj->Release();
}

TEST_F(BufferPoolTest, ScriptCompletesUnderSpillFaults) {
  // End-to-end: a script whose working set overflows a tiny pool completes
  // with correct results even when every spill write fails (re-pin path).
  int64_t repins_before = FaultCounter("fault.bufferpool.spill_repins");
  FaultConfig chaos = SpillErrorConfig(1.0);
  auto ctx = SystemDSContext::Builder()
                 .BufferPoolLimit(32 * 1024)
                 .Chaos(chaos)
                 .Build();
  const char* script = R"(
    X = rand(rows=128, cols=64, min=0, max=1, seed=7)
    Y = t(X) %*% X
    Z = Y + Y
    s = sum(Z)
    print(s)
  )";
  auto result = ctx->Execute(script, Inputs(), Outputs("s"));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  auto s = result->GetDouble("s");
  ASSERT_TRUE(s.ok());
  EXPECT_TRUE(std::isfinite(*s));
  EXPECT_NE(*s, 0.0);
  EXPECT_GT(FaultCounter("fault.bufferpool.spill_repins"), repins_before);
}

}  // namespace
}  // namespace sysds
