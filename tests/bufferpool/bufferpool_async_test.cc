// Async buffer-pool coverage: write-behind eviction, free drops of clean
// blocks, single-flight restores, hint-driven prefetch, 2Q scan
// resistance, pressure-aware admission, and the chaos paths (failed
// writebacks, corrupt spill files) the synchronous stub never exercised.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <thread>
#include <vector>

#include "api/systemds_context.h"
#include "common/faults.h"
#include "obs/metrics.h"
#include "runtime/bufferpool/buffer_pool.h"
#include "runtime/controlprog/data.h"
#include "serve/scoring_service.h"

namespace sysds {
namespace {

namespace fs = std::filesystem;

class BufferPoolAsyncTest : public ::testing::Test {
 protected:
  void TearDown() override {
    MatrixObject::SetBufferPool(nullptr);
    FaultInjector::Get().Disable();
  }
};

FaultConfig SpillErrorConfig(double prob) {
  FaultConfig c;
  c.enabled = true;
  c.seed = 1;
  c.profile.spill_error_prob = prob;
  return c;
}

int64_t CounterValue(const std::string& name) {
  return obs::MetricsRegistry::Get().CounterValue(name);
}

int64_t RestoreCount() {
  return obs::MetricsRegistry::Get()
      .GetHistogram("bufferpool.restore_ns")
      ->Count();
}

TEST_F(BufferPoolAsyncTest, WriteBehindTurnsEvictionsIntoFreeDrops) {
  BufferPool::Options opt;
  opt.limit_bytes = 200 * 1024;  // fits ~2 of the 80KB blocks
  BufferPool pool(opt);
  MatrixObject::SetBufferPool(&pool);
  int64_t drops_before = CounterValue("bufferpool.free_drops");

  std::vector<std::shared_ptr<MatrixObject>> objs;
  for (int i = 0; i < 6; ++i) {
    objs.push_back(std::make_shared<MatrixObject>(
        MatrixBlock::Dense(100, 100, static_cast<double>(i + 1))));
  }
  pool.Drain();
  EXPECT_LE(pool.CachedBytes(), opt.limit_bytes);
  EXPECT_GT(pool.EvictionCount(), 0);
  // The background writer cleaned blocks so at least some evictions were
  // free drops instead of synchronous spill writes.
  EXPECT_GT(CounterValue("bufferpool.free_drops"), drops_before);
  // Contents survive the async path bit-exact.
  for (int i = 0; i < 6; ++i) {
    auto r = objs[static_cast<size_t>(i)]->AcquireRead();
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_DOUBLE_EQ((*r)->Get(42, 42), static_cast<double>(i + 1));
    objs[static_cast<size_t>(i)]->Release();
  }
}

TEST_F(BufferPoolAsyncTest, RestoredObjectStaysCleanAndReEvictsForFree) {
  BufferPool pool(1 << 30);
  MatrixObject::SetBufferPool(&pool);
  auto obj = std::make_shared<MatrixObject>(MatrixBlock::Dense(64, 64, 5.0));
  pool.SetLimit(64);  // force a synchronous spill
  ASSERT_FALSE(obj->HasPayload());

  pool.SetLimit(1 << 30);
  auto r = obj->AcquireRead();
  ASSERT_TRUE(r.ok()) << r.status();
  obj->Release();
  ASSERT_TRUE(obj->HasPayload());

  // Blocks are immutable, so the kept spill file is still valid: the
  // second eviction must not write again.
  int64_t sync_before = CounterValue("bufferpool.sync_spills");
  int64_t wb_before = CounterValue("bufferpool.writebacks");
  int64_t drops_before = CounterValue("bufferpool.free_drops");
  pool.SetLimit(64);
  pool.Drain();
  EXPECT_FALSE(obj->HasPayload());
  EXPECT_EQ(CounterValue("bufferpool.sync_spills"), sync_before);
  EXPECT_EQ(CounterValue("bufferpool.writebacks"), wb_before);
  EXPECT_GT(CounterValue("bufferpool.free_drops"), drops_before);

  auto again = obj->AcquireRead();
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_DOUBLE_EQ((*again)->Get(7, 7), 5.0);
  obj->Release();
}

TEST_F(BufferPoolAsyncTest, ConcurrentAcquiresCoalesceIntoOneRestore) {
  BufferPool pool(1 << 30);
  MatrixObject::SetBufferPool(&pool);
  auto obj =
      std::make_shared<MatrixObject>(MatrixBlock::Dense(200, 200, 2.0));
  pool.SetLimit(64);
  ASSERT_FALSE(obj->HasPayload());
  pool.SetLimit(1 << 30);

  const int kThreads = 8;
  int64_t reads_before = RestoreCount();
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      auto r = obj->AcquireRead();
      if (!r.ok() || (*r)->Get(13, 13) != 2.0) {
        failures.fetch_add(1);
      } else {
        obj->Release();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  // Single-flight: N concurrent acquires of one spilled object perform
  // exactly one disk read; waiters block on the object's CV.
  EXPECT_EQ(RestoreCount() - reads_before, 1);
}

TEST_F(BufferPoolAsyncTest, PrefetchRestoresAheadOfDemand) {
  BufferPool pool(1 << 30);
  MatrixObject::SetBufferPool(&pool);
  auto obj = std::make_shared<MatrixObject>(MatrixBlock::Dense(64, 64, 9.0));
  pool.SetLimit(64);
  ASSERT_FALSE(obj->HasPayload());
  pool.SetLimit(1 << 30);

  int64_t hits_before = CounterValue("bufferpool.prefetch_hits");
  int64_t issued_before = CounterValue("bufferpool.prefetch_issued");
  pool.Prefetch(obj.get());
  pool.Drain();
  EXPECT_TRUE(obj->HasPayload()) << "prefetch restored ahead of demand";
  EXPECT_GT(CounterValue("bufferpool.prefetch_issued"), issued_before);

  int64_t reads_before = RestoreCount();
  auto r = obj->AcquireRead();
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_DOUBLE_EQ((*r)->Get(3, 3), 9.0);
  obj->Release();
  EXPECT_EQ(RestoreCount(), reads_before) << "no demand read after prefetch";
  EXPECT_GT(CounterValue("bufferpool.prefetch_hits"), hits_before);
}

TEST_F(BufferPoolAsyncTest, TwoQKeepsWorkingSetThroughScan) {
  // A re-referenced (protected) object must survive a one-touch scan that
  // is larger than the pool; under pure LRU the same scan flushes it.
  auto run_scan = [](BufferPool::EvictionPolicy policy) {
    BufferPool::Options opt;
    opt.limit_bytes = 400 * 1024;
    opt.policy = policy;
    BufferPool pool(opt);
    MatrixObject::SetBufferPool(&pool);
    auto hot =
        std::make_shared<MatrixObject>(MatrixBlock::Dense(100, 100, 1.0));
    // Re-reference: promoted to the protected queue under 2Q.
    for (int i = 0; i < 3; ++i) {
      auto r = hot->AcquireRead();
      EXPECT_TRUE(r.ok());
      hot->Release();
    }
    // One-touch scan, 2x the pool size.
    std::vector<std::shared_ptr<MatrixObject>> scan;
    for (int i = 0; i < 10; ++i) {
      scan.push_back(
          std::make_shared<MatrixObject>(MatrixBlock::Dense(100, 100, 2.0)));
    }
    pool.Drain();
    bool hot_survived = hot->HasPayload();
    MatrixObject::SetBufferPool(nullptr);
    return hot_survived;
  };
  EXPECT_TRUE(run_scan(BufferPool::EvictionPolicy::k2Q));
  EXPECT_FALSE(run_scan(BufferPool::EvictionPolicy::kLru));
}

TEST_F(BufferPoolAsyncTest, PinnedStormExportsNegativeHeadroom) {
  BufferPool::Options opt;
  opt.limit_bytes = 100 * 1024;
  BufferPool pool(opt);
  MatrixObject::SetBufferPool(&pool);
  // Pin three ~80KB objects: pinned bytes alone exceed the limit.
  std::vector<std::shared_ptr<MatrixObject>> pinned;
  for (int i = 0; i < 3; ++i) {
    pinned.push_back(std::make_shared<MatrixObject>(
        MatrixBlock::Dense(100, 100, static_cast<double>(i))));
    ASSERT_TRUE(pinned.back()->AcquireRead().ok());
  }
  pool.Drain();
  // No pinned block was evicted, even though the pool is far over limit.
  for (const auto& p : pinned) EXPECT_TRUE(p->HasPayload());
  EXPECT_GT(pool.PinnedBytes(), opt.limit_bytes);
  EXPECT_LT(pool.Headroom(), 0);
  EXPECT_TRUE(pool.UnderPressure(1));

  // Unpinning restores normal eviction behaviour.
  for (const auto& p : pinned) p->Release();
  EXPECT_GE(pool.Headroom(), 0);
  pool.SetLimit(1024);
  pool.Drain();
  EXPECT_LE(pool.CachedBytes(), 1024);
}

TEST_F(BufferPoolAsyncTest, ServiceRejectsWithOomWhenHeadroomLow) {
  auto ctx = SystemDSContext::Builder().BufferPoolLimit(100 * 1024).Build();
  SymbolInfo xinfo;
  xinfo.dt = DataType::kMatrix;
  xinfo.dim1 = 2;
  xinfo.dim2 = 2;
  auto prepared = ctx->Prepare("y = sum(X)", {{"X", xinfo}});
  ASSERT_TRUE(prepared.ok()) << prepared.status();

  serve::ServiceOptions sopt;
  sopt.num_workers = 1;
  sopt.admission_headroom_bytes = 16 * 1024;
  serve::ScoringService svc(sopt);
  ASSERT_TRUE(
      svc.RegisterModel(
             "m", std::shared_ptr<const PreparedScript>(std::move(*prepared)),
             {"y"})
          .ok());

  // With ample headroom the request is admitted and served.
  auto ok = svc.Score("m", Inputs().Matrix("X", MatrixBlock::Dense(2, 2, 1.0)));
  ASSERT_TRUE(ok.ok()) << ok.status();

  // Pin the pool full: real headroom (limit - pinned) goes negative and
  // admission fast-rejects with the retryable kOom, same as a full queue.
  std::vector<std::shared_ptr<MatrixObject>> pinned;
  for (int i = 0; i < 3; ++i) {
    pinned.push_back(
        std::make_shared<MatrixObject>(MatrixBlock::Dense(100, 100, 1.0)));
    ASSERT_TRUE(pinned.back()->AcquireRead().ok());
  }
  auto rejected =
      svc.Score("m", Inputs().Matrix("X", MatrixBlock::Dense(2, 2, 1.0)));
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kOom);
  EXPECT_TRUE(IsRetryable(rejected.status()));

  // Backpressure clears with the pins.
  for (const auto& p : pinned) p->Release();
  auto recovered =
      svc.Score("m", Inputs().Matrix("X", MatrixBlock::Dense(2, 2, 1.0)));
  EXPECT_TRUE(recovered.ok()) << recovered.status();
}

TEST_F(BufferPoolAsyncTest, FailedWritebackStaysDirtyAndRetryable) {
  BufferPool::Options opt;
  opt.limit_bytes = 200 * 1024;
  BufferPool pool(opt);
  MatrixObject::SetBufferPool(&pool);
  int64_t wb_failures_before =
      CounterValue("fault.bufferpool.writeback_failures");
  std::vector<std::shared_ptr<MatrixObject>> objs;
  {
    // Every spill write fails: write-behind must leave blocks dirty and
    // resident (degraded but correct), never drop unwritten data.
    ScopedFaultInjection chaos(SpillErrorConfig(1.0));
    for (int i = 0; i < 6; ++i) {
      objs.push_back(std::make_shared<MatrixObject>(
          MatrixBlock::Dense(100, 100, static_cast<double>(i))));
    }
    pool.Drain();
    EXPECT_GT(CounterValue("fault.bufferpool.writeback_failures"),
              wb_failures_before);
    for (const auto& o : objs) EXPECT_TRUE(o->HasPayload());
  }
  // Once the spill device recovers the same pressure drains normally.
  pool.SetLimit(100 * 1024);
  pool.Drain();
  EXPECT_LE(pool.CachedBytes(), 100 * 1024);
  for (int i = 0; i < 6; ++i) {
    auto r = objs[static_cast<size_t>(i)]->AcquireRead();
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_DOUBLE_EQ((*r)->Get(1, 1), static_cast<double>(i));
    objs[static_cast<size_t>(i)]->Release();
  }
}

TEST_F(BufferPoolAsyncTest, CorruptWritebackSurfacesAsCorruptAndRetryable) {
  BufferPool::Options opt;
  opt.limit_bytes = 1 << 30;
  BufferPool pool(opt);
  MatrixObject::SetBufferPool(&pool);
  auto obj = std::make_shared<MatrixObject>(MatrixBlock::Dense(64, 64, 4.0));
  pool.SetLimit(64);  // spill + drop
  ASSERT_FALSE(obj->HasPayload());
  pool.SetLimit(1 << 30);

  // Corrupt the spill file the way a crash mid-writeback would: flip a
  // payload byte. The CRC footer must catch it as kCorrupt (retryable),
  // never deserialize garbage.
  std::string path = pool.SpillPathFor(obj.get());
  ASSERT_TRUE(fs::exists(path));
  std::string original;
  {
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    original = buf.str();
  }
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(32);
    f.put('\x5a');
  }
  auto read = obj->AcquireRead();
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kCorrupt) << read.status();
  EXPECT_TRUE(IsRetryable(read.status()));
  EXPECT_TRUE(fs::exists(path)) << "spill file kept for retry";

  // Repair (e.g. the storage layer heals) and the same acquire succeeds.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << original;
  }
  auto recovered = obj->AcquireRead();
  ASSERT_TRUE(recovered.ok()) << recovered.status();
  EXPECT_DOUBLE_EQ((*recovered)->Get(5, 5), 4.0);
  obj->Release();
}

TEST_F(BufferPoolAsyncTest, RegisterUnregisterRaceWithInflightWriteback) {
  // Object churn under constant eviction pressure: destructors must block
  // on in-flight writebacks (no use-after-free of the raw pointer the
  // background writer holds). Primarily a tsan target.
  BufferPool::Options opt;
  opt.limit_bytes = 64 * 1024;  // every object overflows the pool
  BufferPool pool(opt);
  MatrixObject::SetBufferPool(&pool);
  const int kThreads = 4, kIters = 25;
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kIters; ++i) {
        auto obj = std::make_shared<MatrixObject>(
            MatrixBlock::Dense(60, 60, static_cast<double>(t * kIters + i)));
        auto r = obj->AcquireRead();
        if (!r.ok() ||
            (*r)->Get(0, 0) != static_cast<double>(t * kIters + i)) {
          failures.fetch_add(1);
        } else {
          obj->Release();
        }
        // obj destroyed here, potentially mid-writeback.
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(failures.load(), 0);
  pool.Drain();
  EXPECT_EQ(pool.CachedBytes(), 0);
  EXPECT_EQ(pool.PinnedBytes(), 0);
}

// ---------------------------------------------------------------------------
// Differential: the pool must be invisible in results. The same iterative
// over-memory script produces bit-identical outputs with a tiny pool
// (spill/restore on every iteration, async machinery fully engaged), with
// the async features disabled, and with a pool large enough to never evict.
// ---------------------------------------------------------------------------

double RunIterativeScript(SystemDSContext::Builder builder) {
  auto ctx = builder.Build();
  const char* script = R"(
    X = rand(rows=200, cols=100, min=0, max=1, seed=42)
    Y = rand(rows=200, cols=100, min=0, max=1, seed=43)
    acc = matrix(0, rows=100, cols=100)
    for (i in 1:6) {
      G = t(X) %*% Y
      acc = acc + G * (1.0 / i)
      Z = X + Y
      s0 = sum(Z)
    }
    out = sum(acc)
    print(out)
  )";
  auto result = ctx->Execute(script, Inputs(), Outputs("out"));
  EXPECT_TRUE(result.ok()) << result.status();
  if (!result.ok()) return 0.0;
  auto v = result->GetDouble("out");
  EXPECT_TRUE(v.ok());
  return v.ok() ? *v : 0.0;
}

TEST_F(BufferPoolAsyncTest, ResultsBitIdenticalAcrossPoolConfigurations) {
  double no_evictions =
      RunIterativeScript(SystemDSContext::Builder().BufferPoolLimit(1 << 30));
  double async_tiny = RunIterativeScript(
      SystemDSContext::Builder().BufferPoolLimit(64 * 1024));
  double sync_tiny =
      RunIterativeScript(SystemDSContext::Builder()
                             .BufferPoolLimit(64 * 1024)
                             .BufferPoolWriteBehind(false)
                             .BufferPoolPrefetch(false));
  // Bit-identical, not approximately equal: spill/restore round-trips and
  // background scheduling must not perturb a single bit of the result.
  EXPECT_EQ(no_evictions, async_tiny);
  EXPECT_EQ(no_evictions, sync_tiny);
  EXPECT_NE(no_evictions, 0.0);
}

TEST_F(BufferPoolAsyncTest, LoopPrefetchEngagesOnOverLimitWorkload) {
  int64_t issued_before = CounterValue("bufferpool.prefetch_issued");
  double v = RunIterativeScript(
      SystemDSContext::Builder().BufferPoolLimit(64 * 1024));
  EXPECT_NE(v, 0.0);
  // The loop's liveness hints scheduled background restores of spilled
  // operands at iteration boundaries.
  EXPECT_GT(CounterValue("bufferpool.prefetch_issued"), issued_before);
}

}  // namespace
}  // namespace sysds
