#include "io/io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "io/format_descriptor.h"
#include "runtime/matrix/lib_datagen.h"

namespace sysds {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("sysds_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::string Path(const std::string& name) { return (dir_ / name).string(); }
  std::filesystem::path dir_;
};

TEST_F(IoTest, CsvRoundtripDense) {
  auto m = RandMatrix(55, 13, -5, 5, 1.0, 1, RandPdf::kUniform, 1);
  ASSERT_TRUE(io::Write(*m, Path("a.csv"), FormatDescriptor::Csv()).ok());
  auto back = io::Read(Path("a.csv"), FormatDescriptor::Csv());
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->EqualsApprox(*m, 1e-12));
}

TEST_F(IoTest, CsvMultiThreadedMatchesSingle) {
  auto m = RandMatrix(500, 20, -1, 1, 1.0, 2, RandPdf::kUniform, 1);
  ASSERT_TRUE(io::Write(*m, Path("b.csv"), FormatDescriptor::Csv()).ok());
  auto r1 = io::Read(Path("b.csv"), FormatDescriptor::Csv(',', false, 1));
  auto r8 = io::Read(Path("b.csv"), FormatDescriptor::Csv(',', false, 8));
  ASSERT_TRUE(r1.ok() && r8.ok());
  EXPECT_TRUE(r1->EqualsApprox(*r8, 0));
}

TEST_F(IoTest, CsvHeaderAndDelimiter) {
  {
    std::ofstream f(Path("c.csv"));
    f << "a;b;c\n1;2;3\n4;5;6\n";
  }
  auto m = io::Read(Path("c.csv"), FormatDescriptor::Csv(';', true));
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->Rows(), 2);
  EXPECT_EQ(m->Cols(), 3);
  EXPECT_DOUBLE_EQ(m->Get(1, 2), 6.0);
}

TEST_F(IoTest, CsvRaggedRowRejected) {
  {
    std::ofstream f(Path("d.csv"));
    f << "1,2,3\n4,5\n";
  }
  EXPECT_FALSE(io::Read(Path("d.csv"), FormatDescriptor::Csv()).ok());
}

TEST_F(IoTest, BinaryRoundtripDenseAndSparse) {
  auto dense = RandMatrix(40, 30, -1, 1, 1.0, 3, RandPdf::kUniform, 1);
  ASSERT_TRUE(io::Write(*dense, Path("e.bin"),
                        FormatDescriptor::Binary()).ok());
  auto back = io::Read(Path("e.bin"), FormatDescriptor::Binary());
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->EqualsApprox(*dense, 0));

  auto sparse = RandMatrix(80, 80, -1, 1, 0.05, 4, RandPdf::kUniform, 1);
  sparse->ToSparse();
  ASSERT_TRUE(io::Write(*sparse, Path("f.bin"),
                        FormatDescriptor::Binary()).ok());
  auto back2 = io::Read(Path("f.bin"), FormatDescriptor::Binary());
  ASSERT_TRUE(back2.ok());
  EXPECT_TRUE(back2->IsSparse());
  EXPECT_TRUE(back2->EqualsApprox(*sparse, 0));
}

TEST_F(IoTest, BinaryRejectsGarbage) {
  {
    std::ofstream f(Path("g.bin"), std::ios::binary);
    f << "not a matrix";
  }
  EXPECT_FALSE(io::Read(Path("g.bin"), FormatDescriptor::Binary()).ok());
}

TEST_F(IoTest, IjvRoundtrip) {
  auto m = RandMatrix(30, 30, -1, 1, 0.1, 5, RandPdf::kUniform, 1);
  ASSERT_TRUE(io::Write(*m, Path("h.ijv"), FormatDescriptor::Ijv()).ok());
  auto back = io::Read(Path("h.ijv"), FormatDescriptor::Ijv());
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->Rows(), 30);
  EXPECT_TRUE(back->EqualsApprox(*m, 1e-12));
}

TEST_F(IoTest, FormatNameDispatch) {
  auto m = RandMatrix(10, 4, 0, 1, 1.0, 6, RandPdf::kUniform, 1);
  for (const char* name : {"csv", "binary", "ijv"}) {
    std::string p = Path("dispatch");
    auto desc = FormatDescriptor::FromFormatName(name);
    ASSERT_TRUE(desc.ok());
    ASSERT_TRUE(io::Write(*m, p, *desc).ok());
    auto back = io::Read(p, *desc);
    ASSERT_TRUE(back.ok());
    EXPECT_TRUE(back->EqualsApprox(*m, 1e-12));
  }
  EXPECT_TRUE(FormatDescriptor::FromFormatName("text").ok());
  EXPECT_TRUE(FormatDescriptor::FromFormatName("BINARY").ok());
  EXPECT_FALSE(FormatDescriptor::FromFormatName("parquet").ok());
}

TEST_F(IoTest, RegistryRejectsUnknownAndUnsupported) {
  FormatDescriptor bogus;
  bogus.kind = "avro";
  EXPECT_FALSE(io::Read(Path("x"), bogus).ok());
  // fixed-width registers a frame reader only: no matrix read, no write.
  FormatDescriptor fw;
  fw.kind = "fixed-width";
  fw.columns.push_back({"a", ValueType::kString, 4});
  EXPECT_FALSE(io::Read(Path("x"), fw).ok());
  FrameBlock f(1, {ValueType::kString});
  EXPECT_FALSE(io::Write(f, Path("x"), fw).ok());
}

TEST_F(IoTest, FrameCsvRoundtripWithHeader) {
  FrameBlock f(2, {ValueType::kString, ValueType::kFP64}, {"name", "v"});
  f.SetString(0, 0, "alpha");
  f.SetString(1, 0, "beta");
  f.SetDouble(0, 1, 1.5);
  f.SetDouble(1, 1, 2.5);
  FormatDescriptor desc = FormatDescriptor::Csv(',', true);
  ASSERT_TRUE(io::Write(f, Path("i.csv"), desc).ok());
  auto back = io::ReadFrame(Path("i.csv"), desc,
                            {ValueType::kString, ValueType::kFP64});
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->ColumnNames()[0], "name");
  EXPECT_EQ(back->GetString(1, 0), "beta");
  EXPECT_DOUBLE_EQ(back->GetDouble(0, 1), 1.5);
}

TEST_F(IoTest, FrameCsvParallelMatchesSerial) {
  {
    std::ofstream f(Path("p.csv"));
    for (int r = 0; r < 500; ++r) {
      f << "tok" << (r % 17) << "," << r << "." << (r % 10) << "\n";
    }
  }
  std::vector<ValueType> schema = {ValueType::kString, ValueType::kFP64};
  auto r1 = io::ReadFrame(Path("p.csv"),
                          FormatDescriptor::Csv(',', false, 1), schema);
  auto r8 = io::ReadFrame(Path("p.csv"),
                          FormatDescriptor::Csv(',', false, 8), schema);
  ASSERT_TRUE(r1.ok() && r8.ok());
  ASSERT_EQ(r1->Rows(), 500);
  ASSERT_EQ(r8->Rows(), 500);
  for (int64_t r = 0; r < r1->Rows(); ++r) {
    EXPECT_EQ(r1->GetString(r, 0), r8->GetString(r, 0));
    EXPECT_EQ(r1->GetDouble(r, 1), r8->GetDouble(r, 1));
  }
}

TEST_F(IoTest, FrameCsvRaggedRowReportsRowNumber) {
  {
    std::ofstream f(Path("q.csv"));
    f << "a,1\nb,2\nc\n";
  }
  auto r = io::ReadFrame(Path("q.csv"), FormatDescriptor::Csv(),
                         {ValueType::kString, ValueType::kFP64});
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("row 3"), std::string::npos);
}

TEST_F(IoTest, FrameCsvMalformedNumericReportsRowAndColumn) {
  {
    std::ofstream f(Path("r.csv"));
    f << "a,1.5\nb,oops\n";
  }
  auto r = io::ReadFrame(Path("r.csv"), FormatDescriptor::Csv(),
                         {ValueType::kString, ValueType::kFP64});
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.status().message().find("row 2"), std::string::npos);
  EXPECT_NE(r.status().message().find("column 2"), std::string::npos);
  EXPECT_NE(r.status().message().find("oops"), std::string::npos);
  // Untyped (all-string) schemas keep every cell verbatim.
  auto ok = io::ReadFrame(Path("r.csv"), FormatDescriptor::Csv());
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok->GetString(1, 1), "oops");
}

TEST_F(IoTest, FrameCsvEmptyNumericCellIsMissing) {
  {
    std::ofstream f(Path("s.csv"));
    f << "a,1.5\nb,\n";
  }
  auto r = io::ReadFrame(Path("s.csv"), FormatDescriptor::Csv(),
                         {ValueType::kString, ValueType::kFP64});
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->GetDouble(1, 1), 0.0);
}

TEST_F(IoTest, GeneratedDelimitedReader) {
  {
    std::ofstream f(Path("j.psv"));
    f << "id|value|tag\n1|2.5|x\n2|3.5|y\n";
  }
  auto desc = ParseFormatDescriptor(
      R"({"kind":"delimited","delimiter":"|","header":true,
          "columns":[{"name":"id","type":"int64"},
                     {"name":"value","type":"fp64"},
                     {"name":"tag","type":"string"}]})");
  ASSERT_TRUE(desc.ok());
  auto frame = io::ReadFrame(Path("j.psv"), *desc);
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->Rows(), 2);
  EXPECT_DOUBLE_EQ(frame->GetDouble(1, 1), 3.5);
  EXPECT_EQ(frame->GetString(0, 2), "x");
}

TEST_F(IoTest, GeneratedFixedWidthReader) {
  {
    std::ofstream f(Path("k.fw"));
    f << "  1 2.50\n 12 3.75\n";
  }
  auto desc = ParseFormatDescriptor(
      R"({"kind":"fixed-width",
          "columns":[{"name":"id","type":"int64","width":3},
                     {"name":"v","type":"fp64","width":5}]})");
  ASSERT_TRUE(desc.ok());
  auto frame = io::ReadFrame(Path("k.fw"), *desc);
  ASSERT_TRUE(frame.ok());
  EXPECT_DOUBLE_EQ(frame->GetDouble(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(frame->GetDouble(1, 1), 3.75);
}

TEST_F(IoTest, GeneratedKeyValueReader) {
  {
    std::ofstream f(Path("l.kv"));
    f << "b=2;a=1\na=3;b=4\n";
  }
  auto desc = ParseFormatDescriptor(
      R"({"kind":"key-value","delimiter":";",
          "columns":[{"name":"a","type":"fp64"},
                     {"name":"b","type":"fp64"}]})");
  ASSERT_TRUE(desc.ok());
  auto frame = io::ReadFrame(Path("l.kv"), *desc);
  ASSERT_TRUE(frame.ok());
  // Key order per line does not matter.
  EXPECT_DOUBLE_EQ(frame->GetDouble(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(frame->GetDouble(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(frame->GetDouble(1, 0), 3.0);
}

TEST_F(IoTest, GeneratedWriterRoundtrip) {
  auto desc = ParseFormatDescriptor(
      R"({"kind":"delimited","delimiter":",","header":true,
          "columns":[{"name":"x","type":"fp64"},{"name":"y","type":"fp64"}]})");
  ASSERT_TRUE(desc.ok());
  FrameBlock f(2, {ValueType::kFP64, ValueType::kFP64}, {"x", "y"});
  f.SetDouble(0, 0, 1);
  f.SetDouble(1, 1, 4);
  ASSERT_TRUE(io::Write(f, Path("m.csv"), *desc).ok());
  auto back = io::ReadFrame(Path("m.csv"), *desc);
  ASSERT_TRUE(back.ok());
  EXPECT_DOUBLE_EQ(back->GetDouble(1, 1), 4.0);
}

TEST_F(IoTest, UnknownFormatKindRejected) {
  auto desc = ParseFormatDescriptor(
      R"({"kind":"avro","columns":[{"name":"a"}]})");
  ASSERT_TRUE(desc.ok());
  EXPECT_FALSE(GenerateReader(*desc).ok());
  EXPECT_FALSE(io::ReadFrame(Path("nope"), *desc).ok());
}

TEST_F(IoTest, MatrixKindDescriptorNeedsNoColumns) {
  auto desc = ParseFormatDescriptor(R"({"kind":"csv","num_threads":2})");
  ASSERT_TRUE(desc.ok());
  EXPECT_EQ(desc->num_threads, 2);
  auto fail = ParseFormatDescriptor(R"({"kind":"delimited"})");
  EXPECT_FALSE(fail.ok());
}

}  // namespace
}  // namespace sysds
