#include "io/matrix_io.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "io/format_descriptor.h"
#include "runtime/matrix/lib_datagen.h"

namespace sysds {
namespace {

class IoTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::temp_directory_path() /
           ("sysds_io_test_" + std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override {
    std::error_code ec;
    std::filesystem::remove_all(dir_, ec);
  }
  std::string Path(const std::string& name) { return (dir_ / name).string(); }
  std::filesystem::path dir_;
};

TEST_F(IoTest, CsvRoundtripDense) {
  auto m = RandMatrix(55, 13, -5, 5, 1.0, 1, RandPdf::kUniform, 1);
  ASSERT_TRUE(WriteMatrixCsv(*m, Path("a.csv")).ok());
  auto back = ReadMatrixCsv(Path("a.csv"));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->EqualsApprox(*m, 1e-12));
}

TEST_F(IoTest, CsvMultiThreadedMatchesSingle) {
  auto m = RandMatrix(500, 20, -1, 1, 1.0, 2, RandPdf::kUniform, 1);
  ASSERT_TRUE(WriteMatrixCsv(*m, Path("b.csv")).ok());
  CsvOptions one;
  one.num_threads = 1;
  CsvOptions many;
  many.num_threads = 8;
  auto r1 = ReadMatrixCsv(Path("b.csv"), one);
  auto r8 = ReadMatrixCsv(Path("b.csv"), many);
  ASSERT_TRUE(r1.ok() && r8.ok());
  EXPECT_TRUE(r1->EqualsApprox(*r8, 0));
}

TEST_F(IoTest, CsvHeaderAndDelimiter) {
  {
    std::ofstream f(Path("c.csv"));
    f << "a;b;c\n1;2;3\n4;5;6\n";
  }
  CsvOptions opts;
  opts.header = true;
  opts.delimiter = ';';
  auto m = ReadMatrixCsv(Path("c.csv"), opts);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m->Rows(), 2);
  EXPECT_EQ(m->Cols(), 3);
  EXPECT_DOUBLE_EQ(m->Get(1, 2), 6.0);
}

TEST_F(IoTest, CsvRaggedRowRejected) {
  {
    std::ofstream f(Path("d.csv"));
    f << "1,2,3\n4,5\n";
  }
  EXPECT_FALSE(ReadMatrixCsv(Path("d.csv")).ok());
}

TEST_F(IoTest, BinaryRoundtripDenseAndSparse) {
  auto dense = RandMatrix(40, 30, -1, 1, 1.0, 3, RandPdf::kUniform, 1);
  ASSERT_TRUE(WriteMatrixBinary(*dense, Path("e.bin")).ok());
  auto back = ReadMatrixBinary(Path("e.bin"));
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->EqualsApprox(*dense, 0));

  auto sparse = RandMatrix(80, 80, -1, 1, 0.05, 4, RandPdf::kUniform, 1);
  sparse->ToSparse();
  ASSERT_TRUE(WriteMatrixBinary(*sparse, Path("f.bin")).ok());
  auto back2 = ReadMatrixBinary(Path("f.bin"));
  ASSERT_TRUE(back2.ok());
  EXPECT_TRUE(back2->IsSparse());
  EXPECT_TRUE(back2->EqualsApprox(*sparse, 0));
}

TEST_F(IoTest, BinaryRejectsGarbage) {
  {
    std::ofstream f(Path("g.bin"), std::ios::binary);
    f << "not a matrix";
  }
  EXPECT_FALSE(ReadMatrixBinary(Path("g.bin")).ok());
}

TEST_F(IoTest, IjvRoundtrip) {
  auto m = RandMatrix(30, 30, -1, 1, 0.1, 5, RandPdf::kUniform, 1);
  ASSERT_TRUE(WriteMatrixIjv(*m, Path("h.ijv")).ok());
  auto back = ReadMatrixIjv(Path("h.ijv"));
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->Rows(), 30);
  EXPECT_TRUE(back->EqualsApprox(*m, 1e-12));
}

TEST_F(IoTest, FormatDispatch) {
  auto m = RandMatrix(10, 4, 0, 1, 1.0, 6, RandPdf::kUniform, 1);
  for (FileFormat ff : {FileFormat::kCsv, FileFormat::kBinary,
                        FileFormat::kIjv}) {
    std::string p = Path("dispatch");
    ASSERT_TRUE(WriteMatrix(*m, p, ff).ok());
    auto back = ReadMatrix(p, ff);
    ASSERT_TRUE(back.ok());
    EXPECT_TRUE(back->EqualsApprox(*m, 1e-12));
  }
  EXPECT_TRUE(ParseFileFormat("csv").ok());
  EXPECT_TRUE(ParseFileFormat("BINARY").ok());
  EXPECT_FALSE(ParseFileFormat("parquet").ok());
}

TEST_F(IoTest, FrameCsvRoundtripWithHeader) {
  FrameBlock f(2, {ValueType::kString, ValueType::kFP64}, {"name", "v"});
  f.SetString(0, 0, "alpha");
  f.SetString(1, 0, "beta");
  f.SetDouble(0, 1, 1.5);
  f.SetDouble(1, 1, 2.5);
  CsvOptions opts;
  opts.header = true;
  ASSERT_TRUE(WriteFrameCsv(f, Path("i.csv"), opts).ok());
  auto back =
      ReadFrameCsv(Path("i.csv"), {ValueType::kString, ValueType::kFP64},
                   opts);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->ColumnNames()[0], "name");
  EXPECT_EQ(back->GetString(1, 0), "beta");
  EXPECT_DOUBLE_EQ(back->GetDouble(0, 1), 1.5);
}

TEST_F(IoTest, GeneratedDelimitedReader) {
  {
    std::ofstream f(Path("j.psv"));
    f << "id|value|tag\n1|2.5|x\n2|3.5|y\n";
  }
  auto desc = ParseFormatDescriptor(
      R"({"kind":"delimited","delimiter":"|","header":true,
          "columns":[{"name":"id","type":"int64"},
                     {"name":"value","type":"fp64"},
                     {"name":"tag","type":"string"}]})");
  ASSERT_TRUE(desc.ok());
  auto reader = GenerateReader(*desc);
  ASSERT_TRUE(reader.ok());
  auto frame = (*reader)(Path("j.psv"));
  ASSERT_TRUE(frame.ok());
  EXPECT_EQ(frame->Rows(), 2);
  EXPECT_DOUBLE_EQ(frame->GetDouble(1, 1), 3.5);
  EXPECT_EQ(frame->GetString(0, 2), "x");
}

TEST_F(IoTest, GeneratedFixedWidthReader) {
  {
    std::ofstream f(Path("k.fw"));
    f << "  1 2.50\n 12 3.75\n";
  }
  auto desc = ParseFormatDescriptor(
      R"({"kind":"fixed-width",
          "columns":[{"name":"id","type":"int64","width":3},
                     {"name":"v","type":"fp64","width":5}]})");
  ASSERT_TRUE(desc.ok());
  auto reader = GenerateReader(*desc);
  ASSERT_TRUE(reader.ok());
  auto frame = (*reader)(Path("k.fw"));
  ASSERT_TRUE(frame.ok());
  EXPECT_DOUBLE_EQ(frame->GetDouble(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(frame->GetDouble(1, 1), 3.75);
}

TEST_F(IoTest, GeneratedKeyValueReader) {
  {
    std::ofstream f(Path("l.kv"));
    f << "b=2;a=1\na=3;b=4\n";
  }
  auto desc = ParseFormatDescriptor(
      R"({"kind":"key-value","delimiter":";",
          "columns":[{"name":"a","type":"fp64"},
                     {"name":"b","type":"fp64"}]})");
  ASSERT_TRUE(desc.ok());
  auto reader = GenerateReader(*desc);
  ASSERT_TRUE(reader.ok());
  auto frame = (*reader)(Path("l.kv"));
  ASSERT_TRUE(frame.ok());
  // Key order per line does not matter.
  EXPECT_DOUBLE_EQ(frame->GetDouble(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(frame->GetDouble(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(frame->GetDouble(1, 0), 3.0);
}

TEST_F(IoTest, GeneratedWriterRoundtrip) {
  auto desc = ParseFormatDescriptor(
      R"({"kind":"delimited","delimiter":",","header":true,
          "columns":[{"name":"x","type":"fp64"},{"name":"y","type":"fp64"}]})");
  auto writer = GenerateWriter(*desc);
  auto reader = GenerateReader(*desc);
  ASSERT_TRUE(writer.ok() && reader.ok());
  FrameBlock f(2, {ValueType::kFP64, ValueType::kFP64}, {"x", "y"});
  f.SetDouble(0, 0, 1);
  f.SetDouble(1, 1, 4);
  ASSERT_TRUE((*writer)(f, Path("m.csv")).ok());
  auto back = (*reader)(Path("m.csv"));
  ASSERT_TRUE(back.ok());
  EXPECT_DOUBLE_EQ(back->GetDouble(1, 1), 4.0);
}

TEST_F(IoTest, UnknownFormatKindRejected) {
  auto desc = ParseFormatDescriptor(
      R"({"kind":"avro","columns":[{"name":"a"}]})");
  ASSERT_TRUE(desc.ok());
  EXPECT_FALSE(GenerateReader(*desc).ok());
}

}  // namespace
}  // namespace sysds
