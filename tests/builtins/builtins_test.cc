#include <gtest/gtest.h>

#include <cmath>

#include "api/systemds_context.h"
#include "builtins/registry.h"

namespace sysds {
namespace {

ScriptResult RunScript(const std::string& script,
                       const std::vector<std::string>& outputs) {
  SystemDSContext ctx;
  auto r = ctx.Execute(script, {}, outputs);
  EXPECT_TRUE(r.ok()) << r.status() << "\nscript:\n" << script;
  return r.ok() ? *r : ScriptResult();
}

TEST(BuiltinRegistryTest, CoreBuiltinsRegistered) {
  for (const char* name : {"lm", "lmDS", "lmCG", "steplm", "scale",
                           "normalize", "kmeans", "pca", "gridSearch",
                           "crossV", "imputeByMean", "l2svm"}) {
    EXPECT_NE(GetBuiltinScript(name), nullptr) << name;
  }
  EXPECT_EQ(GetBuiltinScript("doesNotExist"), nullptr);
  EXPECT_GE(BuiltinNames().size(), 12u);
}

TEST(BuiltinsTest, ScaleCentersAndStandardizes) {
  ScriptResult r = RunScript(
      "X = rand(rows=500, cols=4, min=5, max=9, seed=1)\n"
      "[Y, mu, sd] = scale(X)\n"
      "cm = colMeans(Y)\n"
      "cs = colSds(Y)\n"
      "max_mean = max(abs(cm))\n"
      "sd_err = max(abs(cs - 1))\n",
      {"max_mean", "sd_err"});
  EXPECT_LT(*r.GetDouble("max_mean"), 1e-10);
  EXPECT_LT(*r.GetDouble("sd_err"), 1e-10);
}

TEST(BuiltinsTest, NormalizeToUnitRange) {
  ScriptResult r = RunScript(
      "X = rand(rows=100, cols=3, min=-7, max=13, seed=2)\n"
      "[Y, cmin, cmax] = normalize(X)\n"
      "lo = min(Y)\n"
      "hi = max(Y)\n",
      {"lo", "hi"});
  EXPECT_NEAR(*r.GetDouble("lo"), 0.0, 1e-12);
  EXPECT_NEAR(*r.GetDouble("hi"), 1.0, 1e-12);
}

TEST(BuiltinsTest, ImputeByMeanReplacesNaN) {
  ScriptResult r = RunScript(
      "X = matrix(\"1 2 3 4\", 4, 1)\n"
      "X[2, 1] = 0 / 0\n"
      "Y = imputeByMean(X)\n"
      "v = as.scalar(Y[2, 1])\n"
      "nanleft = sum(Y != Y)\n",
      {"v", "nanleft"});
  EXPECT_NEAR(*r.GetDouble("v"), (1.0 + 3.0 + 4.0) / 3.0, 1e-12);
  EXPECT_DOUBLE_EQ(*r.GetDouble("nanleft"), 0.0);
}

TEST(BuiltinsTest, OutlierBySdCapsValues) {
  ScriptResult r = RunScript(
      "X = rand(rows=200, cols=1, min=-1, max=1, seed=3)\n"
      "X[1, 1] = 1000\n"
      "Y = outlierBySd(X, 3)\n"
      "mx = max(Y)\n",
      {"mx"});
  EXPECT_LT(*r.GetDouble("mx"), 1000.0);
}

TEST(BuiltinsTest, WinsorizeCapsTails) {
  ScriptResult r = RunScript(
      "X = seq(1, 100, 1)\n"
      "Y = winsorize(X, 0.05, 0.95)\n"
      "lo = min(Y)\n"
      "hi = max(Y)\n",
      {"lo", "hi"});
  EXPECT_GT(*r.GetDouble("lo"), 1.0);
  EXPECT_LT(*r.GetDouble("hi"), 100.0);
}

TEST(BuiltinsTest, OutlierByIQR) {
  ScriptResult r = RunScript(
      "X = seq(1, 50, 1)\n"
      "X[50, 1] = 10000\n"
      "Y = outlierByIQR(X, 1.5)\n"
      "mx = max(Y)\n",
      {"mx"});
  EXPECT_LT(*r.GetDouble("mx"), 10000.0);
}

TEST(BuiltinsTest, GridSearchFindsBestLambda) {
  ScriptResult r = RunScript(
      "X = rand(rows=200, cols=5, seed=4)\n"
      "w = rand(rows=5, cols=1, seed=5)\n"
      "y = X %*% w\n"
      "params = matrix(\"0.000000001 0.1 10\", 3, 1)\n"
      "[B, opt] = gridSearch(X, y, params)\n",
      {"opt"});
  // Exact linear data: the smallest regularizer wins.
  EXPECT_NEAR(*r.GetDouble("opt"), 1e-9, 1e-10);
}

TEST(BuiltinsTest, CrossValidationLowLossOnLinearData) {
  ScriptResult r = RunScript(
      "X = rand(rows=240, cols=4, seed=6)\n"
      "w = rand(rows=4, cols=1, seed=7)\n"
      "y = X %*% w\n"
      "[loss, losses] = crossV(X, y, 4, 0.0000001)\n",
      {"loss", "losses"});
  EXPECT_LT(*r.GetDouble("loss"), 1e-8);
  EXPECT_EQ(r.GetMatrix("losses")->Rows(), 4);
}

TEST(BuiltinsTest, KmeansRecoversWellSeparatedClusters) {
  ScriptResult r = RunScript(
      "A = rand(rows=40, cols=2, min=0, max=1, seed=8)\n"
      "B = rand(rows=40, cols=2, min=10, max=11, seed=9)\n"
      "C = rand(rows=40, cols=2, min=20, max=21, seed=10)\n"
      "X = rbind(A, B, C)\n"
      "[C1, labels] = kmeans(X, 3, 20, 13)\n"
      "n = nrow(C1)\n"
      "spread = max(C1) - min(C1)\n",
      {"n", "spread", "labels"});
  EXPECT_DOUBLE_EQ(*r.GetDouble("n"), 3.0);
  // Centroids must span the three clusters (values near 0.5, 10.5, 20.5).
  EXPECT_GT(*r.GetDouble("spread"), 15.0);
  // All points of one generated cluster share a label.
  MatrixBlock labels = *r.GetMatrix("labels");
  for (int64_t i = 1; i < 40; ++i) {
    EXPECT_DOUBLE_EQ(labels.Get(i, 0), labels.Get(0, 0));
  }
}

TEST(BuiltinsTest, PcaTopComponentCapturesVariance) {
  // Strongly anisotropic data: first PC must capture most variance.
  ScriptResult r = RunScript(
      "Z = rand(rows=300, cols=2, seed=11, pdf=\"normal\")\n"
      "S = matrix(\"10 0 0 0.1\", 2, 2)\n"
      "X = Z %*% S\n"
      "[Xr, V, evals] = pca(X, 2, 100)\n"
      "e1 = as.scalar(evals[1, 1])\n"
      "e2 = as.scalar(evals[2, 1])\n"
      "ratio = e1 / (e1 + e2)\n"
      "vnorm = sum(V[, 1]^2)\n",
      {"ratio", "vnorm"});
  EXPECT_GT(*r.GetDouble("ratio"), 0.99);
  EXPECT_NEAR(*r.GetDouble("vnorm"), 1.0, 1e-9);
}

TEST(BuiltinsTest, L2svmSeparatesLinearlySeparableData) {
  ScriptResult r = RunScript(
      "Xp = rand(rows=50, cols=3, min=0.5, max=1.5, seed=12)\n"
      "Xn = rand(rows=50, cols=3, min=-1.5, max=-0.5, seed=13)\n"
      "X = rbind(Xp, Xn)\n"
      "Y = rbind(matrix(1, 50, 1), matrix(-1, 50, 1))\n"
      "w = l2svm(X, Y, 0.01, 1.0, 60)\n"
      "pred = sign(X %*% w)\n"
      "acc = sum(pred == Y) / 100\n",
      {"acc"});
  EXPECT_GT(*r.GetDouble("acc"), 0.95);
}

TEST(BuiltinsTest, LogisticRegressionIrls) {
  ScriptResult r = RunScript(
      "X = rand(rows=300, cols=3, min=-1, max=1, seed=14)\n"
      "wtrue = matrix(\"3 -2 1\", 3, 1)\n"
      "p = 1 / (1 + exp(-(X %*% wtrue)))\n"
      "y = p > 0.5\n"
      "B = logisticRegression(X, y, 0.000001, 15)\n"
      "pred = (1 / (1 + exp(-(X %*% B)))) > 0.5\n"
      "acc = sum(pred == y) / 300\n",
      {"acc"});
  EXPECT_GT(*r.GetDouble("acc"), 0.97);
}

TEST(BuiltinsTest, LmDispatchesOnWidth) {
  // Example 1 / Figure 2: lm picks lmDS for <=1024 columns; both paths
  // produce the same answer on the same inputs.
  ScriptResult r = RunScript(
      "X = rand(rows=120, cols=6, seed=15)\n"
      "y = rand(rows=120, cols=1, seed=16)\n"
      "B1 = lm(X, y, 0, 0.001)\n"
      "B2 = lmDS(X, y, 0, 0.001)\n"
      "d = sum((B1 - B2)^2)\n",
      {"d"});
  EXPECT_LT(*r.GetDouble("d"), 1e-20);
}

TEST(BuiltinsTest, SteplmStopsWhenNoImprovement) {
  // Pure-noise target: steplm should select (almost) nothing.
  ScriptResult r = RunScript(
      "X = rand(rows=100, cols=6, seed=17)\n"
      "y = rand(rows=100, cols=1, seed=18)\n"
      "[B, S] = steplm(X, y, 0, 0.001, 5.0)\n"
      "nsel = sum(S > 0)\n",
      {"nsel"});
  EXPECT_LE(*r.GetDouble("nsel"), 2.0);
}

}  // namespace
}  // namespace sysds
