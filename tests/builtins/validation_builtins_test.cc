#include <gtest/gtest.h>

#include "api/systemds_context.h"

namespace sysds {
namespace {

ScriptResult RunScript(const std::string& script,
                       const std::vector<std::string>& outputs) {
  SystemDSContext ctx;
  auto r = ctx.Execute(script, {}, outputs);
  EXPECT_TRUE(r.ok()) << r.status() << "\nscript:\n" << script;
  return r.ok() ? *r : ScriptResult();
}

TEST(ValidationBuiltinsTest, CovAndCor) {
  ScriptResult r = RunScript(
      "x = matrix(\"1 2 3 4 5\", 5, 1)\n"
      "y = 2 * x + 1\n"
      "c = cov(x, y)\n"
      "rho = cor(x, y)\n"
      "z = matrix(\"5 4 3 2 1\", 5, 1)\n"
      "rneg = cor(x, z)\n",
      {"c", "rho", "rneg"});
  // var(x) = 2.5, cov(x, 2x+1) = 2 var(x) = 5.
  EXPECT_NEAR(*r.GetDouble("c"), 5.0, 1e-12);
  EXPECT_NEAR(*r.GetDouble("rho"), 1.0, 1e-12);
  EXPECT_NEAR(*r.GetDouble("rneg"), -1.0, 1e-12);
}

TEST(ValidationBuiltinsTest, RegressionMetrics) {
  ScriptResult r = RunScript(
      "y = matrix(\"1 2 3 4\", 4, 1)\n"
      "yhat = matrix(\"1 2 3 6\", 4, 1)\n"
      "m = mse(yhat, y)\n"
      "rm = rmse(yhat, y)\n"
      "rr = r2(yhat, y)\n"
      "perfect = r2(y, y)\n",
      {"m", "rm", "rr", "perfect"});
  EXPECT_NEAR(*r.GetDouble("m"), 1.0, 1e-12);  // (0+0+0+4)/4
  EXPECT_NEAR(*r.GetDouble("rm"), 1.0, 1e-12);
  EXPECT_NEAR(*r.GetDouble("rr"), 1.0 - 4.0 / 5.0, 1e-12);
  EXPECT_NEAR(*r.GetDouble("perfect"), 1.0, 1e-12);
}

TEST(ValidationBuiltinsTest, ConfusionMatrixAndAccuracy) {
  ScriptResult r = RunScript(
      "y    = matrix(\"1 1 2 2 3 3\", 6, 1)\n"
      "pred = matrix(\"1 2 2 2 3 1\", 6, 1)\n"
      "[cm, acc] = confusionMatrix(pred, y)\n",
      {"cm", "acc"});
  MatrixBlock cm = *r.GetMatrix("cm");
  EXPECT_EQ(cm.Rows(), 3);
  EXPECT_EQ(cm.Cols(), 3);
  EXPECT_DOUBLE_EQ(cm.Get(0, 0), 1.0);  // actual 1 pred 1
  EXPECT_DOUBLE_EQ(cm.Get(0, 1), 1.0);  // actual 1 pred 2
  EXPECT_DOUBLE_EQ(cm.Get(1, 1), 2.0);  // actual 2 pred 2
  EXPECT_DOUBLE_EQ(cm.Get(2, 0), 1.0);  // actual 3 pred 1
  EXPECT_NEAR(*r.GetDouble("acc"), 4.0 / 6.0, 1e-12);
}

TEST(ValidationBuiltinsTest, ConfusionMatrixPadsMissingClasses) {
  ScriptResult r = RunScript(
      "y    = matrix(\"1 1 1 3\", 4, 1)\n"
      "pred = matrix(\"1 1 1 1\", 4, 1)\n"
      "[cm, acc] = confusionMatrix(pred, y)\n",
      {"cm", "acc"});
  MatrixBlock cm = *r.GetMatrix("cm");
  EXPECT_EQ(cm.Rows(), 3);
  EXPECT_EQ(cm.Cols(), 3);
  EXPECT_DOUBLE_EQ(cm.Get(2, 0), 1.0);
  EXPECT_NEAR(*r.GetDouble("acc"), 0.75, 1e-12);
}

TEST(ValidationBuiltinsTest, TrainTestSplitShapes) {
  ScriptResult r = RunScript(
      "X = rand(rows=100, cols=3, seed=1)\n"
      "y = rand(rows=100, cols=1, seed=2)\n"
      "[Xtr, ytr, Xte, yte] = trainTestSplit(X, y, 0.7)\n"
      "a = nrow(Xtr)\nb = nrow(Xte)\nc = nrow(ytr)\n",
      {"a", "b", "c"});
  EXPECT_DOUBLE_EQ(*r.GetDouble("a"), 70.0);
  EXPECT_DOUBLE_EQ(*r.GetDouble("b"), 30.0);
  EXPECT_DOUBLE_EQ(*r.GetDouble("c"), 70.0);
}

TEST(FrameIndexingTest, RowAndColumnSlicing) {
  SystemDSContext ctx;
  FrameBlock f(4, {ValueType::kString, ValueType::kFP64, ValueType::kFP64},
               {"name", "a", "b"});
  for (int i = 0; i < 4; ++i) {
    f.SetString(i, 0, "row" + std::to_string(i));
    f.SetDouble(i, 1, i * 10.0);
    f.SetDouble(i, 2, i * 100.0);
  }
  auto r = ctx.Execute(
      "G = F[2:3, ]\n"
      "H = F[, 2:3]\n"
      "n = nrow(G)\n"
      "c = ncol(H)\n",
      {{"F", SystemDSContext::Frame(f)}}, {"G", "H", "n", "c"});
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_DOUBLE_EQ(*r->GetDouble("n"), 2.0);
  EXPECT_DOUBLE_EQ(*r->GetDouble("c"), 2.0);
  FrameBlock g = *r->GetFrame("G");
  EXPECT_EQ(g.GetString(0, 0), "row1");
  FrameBlock h = *r->GetFrame("H");
  EXPECT_EQ(h.ColumnNames()[0], "a");
  EXPECT_DOUBLE_EQ(h.GetDouble(3, 1), 300.0);
}

}  // namespace
}  // namespace sysds
