// Robustness: the frontend must never crash on malformed input — every
// random token soup either parses (rarely) or returns a ParseError with
// location info. Deterministic seeds keep the suite reproducible.

#include <gtest/gtest.h>

#include "api/systemds_context.h"
#include "common/util.h"
#include "lang/parser.h"

namespace sysds {
namespace {

const char* kFragments[] = {
    "x",      "y",       "f",     "matrix", "rand",  "(",    ")",
    "[",      "]",       "{",     "}",      ",",     ";",    "\n",
    "=",      "+",       "-",     "*",      "/",     "^",    "%*%",
    "%%",     "if",      "else",  "while",  "for",   "in",   "function",
    "return", "parfor",  "1",     "2.5",    "1e3",   "'s'",  "\"q\"",
    "TRUE",   "FALSE",   ":",     "<",      ">",     "==",   "!=",
    "&",      "|",       "!",     "t",      "sum",   ".",    "X",
};

std::string RandomScript(uint64_t seed, int len) {
  Xoshiro rng(seed);
  std::string script;
  for (int i = 0; i < len; ++i) {
    script += kFragments[rng.NextUint64() % std::size(kFragments)];
    script += " ";
  }
  return script;
}

TEST(ParserFuzzTest, RandomTokenSoupNeverCrashes) {
  int parsed = 0;
  for (uint64_t seed = 0; seed < 300; ++seed) {
    std::string script = RandomScript(seed, 1 + static_cast<int>(seed % 40));
    auto result = ParseDML(script);
    if (result.ok()) ++parsed;
    // Either way: no crash, and errors carry a code.
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), StatusCode::kParseError)
          << script << " -> " << result.status();
    }
  }
  // Some tiny fragments do parse (e.g. "x" alone is an expression stmt).
  EXPECT_GT(parsed, 0);
}

TEST(ParserFuzzTest, RandomScriptsThroughFullCompiler) {
  // Whatever parses must also compile-or-error cleanly (never crash).
  for (uint64_t seed = 1000; seed < 1200; ++seed) {
    std::string script = RandomScript(seed, 1 + static_cast<int>(seed % 25));
    auto parsed = ParseDML(script);
    if (!parsed.ok()) continue;
    SystemDSContext ctx;
    auto result = ctx.Execute(script, {}, {});
    (void)result;  // ok or clean error; crash = test failure
  }
  SUCCEED();
}

TEST(ParserFuzzTest, PathologicalNesting) {
  // Deep parenthesization and nested blocks.
  std::string deep = "x = ";
  for (int i = 0; i < 200; ++i) deep += "(";
  deep += "1";
  for (int i = 0; i < 200; ++i) deep += ")";
  deep += "\n";
  auto r = ParseDML(deep);
  EXPECT_TRUE(r.ok()) << r.status();

  std::string blocks;
  for (int i = 0; i < 60; ++i) blocks += "if (TRUE) {\n";
  blocks += "x = 1\n";
  for (int i = 0; i < 60; ++i) blocks += "}\n";
  auto r2 = ParseDML(blocks);
  EXPECT_TRUE(r2.ok()) << r2.status();
}

TEST(ParserFuzzTest, TruncatedInputs) {
  const char* scripts[] = {
      "x = ",
      "f = function(",
      "if (x",
      "for (i in",
      "X[1:",
      "x = matrix(",
      "while (",
      "[a, b",
      "x = 1 +",
      "f = function(Matrix[",
  };
  for (const char* s : scripts) {
    auto r = ParseDML(s);
    EXPECT_FALSE(r.ok()) << s;
    EXPECT_EQ(r.status().code(), StatusCode::kParseError);
  }
}

}  // namespace
}  // namespace sysds
