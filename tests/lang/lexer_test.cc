#include "lang/lexer.h"

#include <gtest/gtest.h>

namespace sysds {
namespace {

std::vector<TokenType> Types(const std::string& src) {
  auto tokens = Tokenize(src);
  EXPECT_TRUE(tokens.ok()) << tokens.status();
  std::vector<TokenType> types;
  if (tokens.ok()) {
    for (const Token& t : *tokens) types.push_back(t.type);
  }
  return types;
}

TEST(LexerTest, NumbersAndIdentifiers) {
  auto tokens = Tokenize("x1 = 42 + 3.14 - 1e-3");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].type, TokenType::kIdentifier);
  EXPECT_EQ((*tokens)[0].text, "x1");
  EXPECT_EQ((*tokens)[2].type, TokenType::kIntLiteral);
  EXPECT_EQ((*tokens)[2].int_value, 42);
  EXPECT_EQ((*tokens)[4].type, TokenType::kDoubleLiteral);
  EXPECT_DOUBLE_EQ((*tokens)[4].double_value, 3.14);
  EXPECT_DOUBLE_EQ((*tokens)[6].double_value, 1e-3);
}

TEST(LexerTest, DottedIdentifiers) {
  auto tokens = Tokenize("as.scalar(index.return)");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "as.scalar");
  EXPECT_EQ((*tokens)[2].text, "index.return");
}

TEST(LexerTest, OperatorsIncludingMatMul) {
  EXPECT_EQ(Types("a %*% b %% c %/% d"),
            (std::vector<TokenType>{
                TokenType::kIdentifier, TokenType::kMatMul,
                TokenType::kIdentifier, TokenType::kModulus,
                TokenType::kIdentifier, TokenType::kIntDiv,
                TokenType::kIdentifier, TokenType::kEof}));
  EXPECT_EQ(Types("a <= b >= c != d == e <- f"),
            (std::vector<TokenType>{
                TokenType::kIdentifier, TokenType::kLe,
                TokenType::kIdentifier, TokenType::kGe,
                TokenType::kIdentifier, TokenType::kNeq,
                TokenType::kIdentifier, TokenType::kEq,
                TokenType::kIdentifier, TokenType::kLeftArrow,
                TokenType::kIdentifier, TokenType::kEof}));
}

TEST(LexerTest, StringsWithEscapes) {
  auto tokens = Tokenize(R"(s = "a\"b\nc" + 'single')");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[2].type, TokenType::kStringLiteral);
  EXPECT_EQ((*tokens)[2].text, "a\"b\nc");
  EXPECT_EQ((*tokens)[4].text, "single");
  EXPECT_FALSE(Tokenize("\"unterminated").ok());
}

TEST(LexerTest, CommentsSkipped) {
  auto types = Types("x = 1 # comment with = and %*%\ny = 2");
  EXPECT_EQ(types, (std::vector<TokenType>{
                       TokenType::kIdentifier, TokenType::kAssign,
                       TokenType::kIntLiteral, TokenType::kNewline,
                       TokenType::kIdentifier, TokenType::kAssign,
                       TokenType::kIntLiteral, TokenType::kEof}));
}

TEST(LexerTest, NewlinesInsideParensSwallowed) {
  auto types = Types("f(a,\n   b)");
  EXPECT_EQ(types, (std::vector<TokenType>{
                       TokenType::kIdentifier, TokenType::kLParen,
                       TokenType::kIdentifier, TokenType::kComma,
                       TokenType::kIdentifier, TokenType::kRParen,
                       TokenType::kEof}));
}

TEST(LexerTest, NewlineAfterOperatorSuppressed) {
  auto types = Types("x = a +\n  b");
  // No kNewline between '+' and 'b'.
  EXPECT_EQ(types, (std::vector<TokenType>{
                       TokenType::kIdentifier, TokenType::kAssign,
                       TokenType::kIdentifier, TokenType::kPlus,
                       TokenType::kIdentifier, TokenType::kEof}));
}

TEST(LexerTest, KeywordsRecognized) {
  EXPECT_EQ(Types("if else while for parfor in function return TRUE FALSE"),
            (std::vector<TokenType>{
                TokenType::kIf, TokenType::kElse, TokenType::kWhile,
                TokenType::kFor, TokenType::kParFor, TokenType::kIn,
                TokenType::kFunction, TokenType::kReturn, TokenType::kTrue,
                TokenType::kFalse, TokenType::kEof}));
}

TEST(LexerTest, LineColumnTracking) {
  auto tokens = Tokenize("a = 1\n  b = 2");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].line, 1);
  EXPECT_EQ((*tokens)[0].col, 1);
  // After the newline token: 'b' at line 2, col 3.
  EXPECT_EQ((*tokens)[4].text, "b");
  EXPECT_EQ((*tokens)[4].line, 2);
  EXPECT_EQ((*tokens)[4].col, 3);
}

TEST(LexerTest, RejectsStrayCharacters) {
  EXPECT_FALSE(Tokenize("a $ b").ok());
  EXPECT_FALSE(Tokenize("a % b").ok());
}

}  // namespace
}  // namespace sysds
