#include "lang/parser.h"

#include <gtest/gtest.h>

namespace sysds {
namespace {

DMLProgram Parse(const std::string& src) {
  auto prog = ParseDML(src);
  EXPECT_TRUE(prog.ok()) << prog.status() << "\nsource:\n" << src;
  return prog.ok() ? std::move(*prog) : DMLProgram{};
}

TEST(ParserTest, SimpleAssignment) {
  DMLProgram p = Parse("x = 1 + 2\n");
  ASSERT_EQ(p.statements.size(), 1u);
  const Stmt& s = *p.statements[0];
  EXPECT_EQ(s.kind, StmtKind::kAssign);
  EXPECT_EQ(s.targets[0].name, "x");
  EXPECT_EQ(s.rhs->kind, ExprKind::kBinary);
  EXPECT_EQ(s.rhs->name, "+");
}

TEST(ParserTest, OperatorPrecedence) {
  DMLProgram p = Parse("x = 1 + 2 * 3 ^ 2\n");
  const Expr& e = *p.statements[0]->rhs;
  // + at top, * under it, ^ innermost.
  EXPECT_EQ(e.name, "+");
  EXPECT_EQ(e.args[1]->name, "*");
  EXPECT_EQ(e.args[1]->args[1]->name, "^");
}

TEST(ParserTest, UnaryMinusAndPower) {
  // -2^2 parses as -(2^2) like R.
  DMLProgram p = Parse("x = -2^2\n");
  const Expr& e = *p.statements[0]->rhs;
  EXPECT_EQ(e.kind, ExprKind::kUnary);
  EXPECT_EQ(e.name, "-");
  EXPECT_EQ(e.args[0]->name, "^");
}

TEST(ParserTest, MatMulBindsTighterThanMul) {
  DMLProgram p = Parse("x = a * b %*% c\n");
  const Expr& e = *p.statements[0]->rhs;
  EXPECT_EQ(e.name, "*");
  EXPECT_EQ(e.args[1]->name, "%*%");
}

TEST(ParserTest, ComparisonAndLogical) {
  DMLProgram p = Parse("x = a < 3 & b >= 2 | !c\n");
  const Expr& e = *p.statements[0]->rhs;
  EXPECT_EQ(e.name, "|");
  EXPECT_EQ(e.args[0]->name, "&");
  EXPECT_EQ(e.args[1]->kind, ExprKind::kUnary);
}

TEST(ParserTest, CallsWithNamedArgs) {
  DMLProgram p = Parse("x = rand(rows=10, cols=n, seed=42)\n");
  const Expr& e = *p.statements[0]->rhs;
  EXPECT_EQ(e.kind, ExprKind::kCall);
  EXPECT_EQ(e.name, "rand");
  ASSERT_EQ(e.args.size(), 3u);
  EXPECT_EQ(e.arg_names[0], "rows");
  EXPECT_EQ(e.arg_names[1], "cols");
  EXPECT_EQ(e.args[1]->kind, ExprKind::kIdentifier);
}

TEST(ParserTest, IndexingVariants) {
  DMLProgram p = Parse("a = X[1, 2]\nb = X[1:3, ]\nc = X[, j]\nd = X[i:n, 2:4]\n");
  const Expr& a = *p.statements[0]->rhs;
  EXPECT_EQ(a.kind, ExprKind::kIndex);
  EXPECT_FALSE(a.has_row_range);
  ASSERT_NE(a.col_lower, nullptr);
  const Expr& b = *p.statements[1]->rhs;
  EXPECT_TRUE(b.has_row_range);
  EXPECT_EQ(b.col_lower, nullptr);
  const Expr& c = *p.statements[2]->rhs;
  EXPECT_EQ(c.row_lower, nullptr);
  ASSERT_NE(c.col_lower, nullptr);
  const Expr& d = *p.statements[3]->rhs;
  EXPECT_TRUE(d.has_row_range);
  EXPECT_TRUE(d.has_col_range);
}

TEST(ParserTest, LeftIndexedAssignment) {
  DMLProgram p = Parse("X[1, i] = 5\n");
  const Stmt& s = *p.statements[0];
  EXPECT_EQ(s.targets[0].name, "X");
  ASSERT_NE(s.targets[0].index, nullptr);
  EXPECT_EQ(s.targets[0].index->kind, ExprKind::kIndex);
}

TEST(ParserTest, MultiAssignment) {
  DMLProgram p = Parse("[B, S] = steplm(X, y)\n");
  const Stmt& s = *p.statements[0];
  ASSERT_EQ(s.targets.size(), 2u);
  EXPECT_EQ(s.targets[0].name, "B");
  EXPECT_EQ(s.targets[1].name, "S");
  EXPECT_EQ(s.rhs->kind, ExprKind::kCall);
}

TEST(ParserTest, ControlFlow) {
  DMLProgram p = Parse(
      "if (x > 0) {\n  y = 1\n} else if (x < 0) {\n  y = 2\n} else {\n"
      "  y = 3\n}\n"
      "while (i < 10) {\n  i = i + 1\n}\n"
      "for (j in 1:5) {\n  s = s + j\n}\n"
      "parfor (k in seq(1, 10, 2)) {\n  t = k\n}\n");
  ASSERT_EQ(p.statements.size(), 4u);
  EXPECT_EQ(p.statements[0]->kind, StmtKind::kIf);
  ASSERT_EQ(p.statements[0]->else_body.size(), 1u);
  EXPECT_EQ(p.statements[0]->else_body[0]->kind, StmtKind::kIf);  // else-if
  EXPECT_EQ(p.statements[1]->kind, StmtKind::kWhile);
  EXPECT_EQ(p.statements[2]->kind, StmtKind::kFor);
  EXPECT_FALSE(p.statements[2]->is_parfor);
  EXPECT_EQ(p.statements[3]->kind, StmtKind::kFor);
  EXPECT_TRUE(p.statements[3]->is_parfor);
  // seq with increment extracted.
  ASSERT_NE(p.statements[3]->increment, nullptr);
  EXPECT_EQ(p.statements[3]->increment->int_value, 2);
}

TEST(ParserTest, FunctionDefinition) {
  DMLProgram p = Parse(
      "f = function(Matrix[Double] X, Double reg = 0.001, Integer n)\n"
      "    return (Matrix[Double] B, Double s) {\n"
      "  B = X * reg\n"
      "  s = n\n"
      "}\n");
  ASSERT_EQ(p.functions.size(), 1u);
  const Stmt& f = *p.functions[0];
  EXPECT_EQ(f.function_name, "f");
  ASSERT_EQ(f.params.size(), 3u);
  EXPECT_EQ(f.params[0].data_type, DataType::kMatrix);
  EXPECT_EQ(f.params[1].data_type, DataType::kScalar);
  ASSERT_NE(f.params[1].default_value, nullptr);
  EXPECT_EQ(f.params[2].value_type, ValueType::kInt64);
  ASSERT_EQ(f.returns.size(), 2u);
  EXPECT_EQ(f.returns[0].data_type, DataType::kMatrix);
  EXPECT_EQ(f.body.size(), 2u);
}

TEST(ParserTest, SemicolonsAndBlankLines) {
  DMLProgram p = Parse("a = 1; b = 2;\n\n\nc = 3\n");
  EXPECT_EQ(p.statements.size(), 3u);
}

TEST(ParserTest, ExpressionStatements) {
  DMLProgram p = Parse("print('hi')\nwrite(X, 'f.csv')\n");
  EXPECT_EQ(p.statements[0]->kind, StmtKind::kExpression);
  EXPECT_EQ(p.statements[1]->kind, StmtKind::kExpression);
}

TEST(ParserTest, SyntaxErrorsCarryLocation) {
  auto bad = ParseDML("x = (1 + \n");
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.status().code(), StatusCode::kParseError);
  auto bad2 = ParseDML("if x > 0 { y = 1 }\n");  // missing parens
  EXPECT_FALSE(bad2.ok());
  auto bad3 = ParseDML("for (i in X) { }\n");  // not a range
  EXPECT_FALSE(bad3.ok());
}

TEST(ParserTest, CloneExprDeepCopies) {
  DMLProgram p = Parse("x = f(a + b, c[1, 2])\n");
  ExprPtr clone = CloneExpr(*p.statements[0]->rhs);
  EXPECT_EQ(clone->kind, ExprKind::kCall);
  EXPECT_EQ(clone->args.size(), 2u);
  EXPECT_NE(clone->args[0].get(), p.statements[0]->rhs->args[0].get());
  EXPECT_EQ(clone->args[1]->kind, ExprKind::kIndex);
}

}  // namespace
}  // namespace sysds
