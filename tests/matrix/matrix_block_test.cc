#include "runtime/matrix/matrix_block.h"

#include <gtest/gtest.h>

namespace sysds {
namespace {

TEST(MatrixBlockTest, DenseConstructionAndAccess) {
  MatrixBlock m = MatrixBlock::Dense(3, 4);
  EXPECT_EQ(m.Rows(), 3);
  EXPECT_EQ(m.Cols(), 4);
  EXPECT_FALSE(m.IsSparse());
  EXPECT_EQ(m.NonZeros(), 0);
  m.Set(1, 2, 5.0);
  EXPECT_DOUBLE_EQ(m.Get(1, 2), 5.0);
  EXPECT_EQ(m.NonZeros(), 1);
}

TEST(MatrixBlockTest, DenseFill) {
  MatrixBlock m = MatrixBlock::Dense(2, 2, 3.5);
  EXPECT_DOUBLE_EQ(m.Get(0, 0), 3.5);
  EXPECT_DOUBLE_EQ(m.Get(1, 1), 3.5);
  EXPECT_EQ(m.NonZeros(), 4);
}

TEST(MatrixBlockTest, FromValuesRowMajor) {
  MatrixBlock m = MatrixBlock::FromValues(2, 3, {1, 2, 3, 4, 5, 6});
  EXPECT_DOUBLE_EQ(m.Get(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(m.Get(0, 2), 3.0);
  EXPECT_DOUBLE_EQ(m.Get(1, 0), 4.0);
  EXPECT_DOUBLE_EQ(m.Get(1, 2), 6.0);
}

TEST(MatrixBlockTest, SparseSetGet) {
  MatrixBlock m = MatrixBlock::Sparse(4, 4);
  EXPECT_TRUE(m.IsSparse());
  m.Set(0, 3, 1.0);
  m.Set(0, 1, 2.0);
  m.Set(3, 0, -1.0);
  EXPECT_DOUBLE_EQ(m.Get(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m.Get(0, 3), 1.0);
  EXPECT_DOUBLE_EQ(m.Get(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(m.Get(3, 0), -1.0);
  EXPECT_EQ(m.NonZeros(), 3);
  // Deleting by setting zero.
  m.Set(0, 1, 0.0);
  EXPECT_DOUBLE_EQ(m.Get(0, 1), 0.0);
  EXPECT_EQ(m.NonZeros(), 2);
}

TEST(MatrixBlockTest, SparseRowSortedInsertionOrder) {
  MatrixBlock m = MatrixBlock::Sparse(1, 10);
  m.Set(0, 7, 7.0);
  m.Set(0, 2, 2.0);
  m.Set(0, 5, 5.0);
  const SparseRow& row = m.SparseData().Row(0);
  ASSERT_EQ(row.Size(), 3);
  EXPECT_EQ(row.Indexes()[0], 2);
  EXPECT_EQ(row.Indexes()[1], 5);
  EXPECT_EQ(row.Indexes()[2], 7);
}

TEST(MatrixBlockTest, DenseSparseRoundtrip) {
  MatrixBlock m = MatrixBlock::Dense(3, 3);
  m.Set(0, 0, 1.0);
  m.Set(2, 1, -2.0);
  MatrixBlock copy = m;
  copy.ToSparse();
  EXPECT_TRUE(copy.IsSparse());
  EXPECT_TRUE(copy.EqualsApprox(m));
  copy.ToDense();
  EXPECT_FALSE(copy.IsSparse());
  EXPECT_TRUE(copy.EqualsApprox(m));
}

TEST(MatrixBlockTest, ExamSparsityConvertsFormats) {
  // 64x64 with 2 nonzeros => should become sparse.
  MatrixBlock m = MatrixBlock::Dense(64, 64);
  m.Set(0, 0, 1.0);
  m.Set(10, 10, 2.0);
  m.ExamSparsity();
  EXPECT_TRUE(m.IsSparse());
  // Fill it up => should flip back to dense.
  for (int64_t r = 0; r < 64; ++r)
    for (int64_t c = 0; c < 64; ++c) m.Set(r, c, 1.0);
  m.ExamSparsity();
  EXPECT_FALSE(m.IsSparse());
}

TEST(MatrixBlockTest, EvalSparseFormatThresholds) {
  EXPECT_TRUE(MatrixBlock::EvalSparseFormat(1000, 1000, 0.1));
  EXPECT_FALSE(MatrixBlock::EvalSparseFormat(1000, 1000, 0.9));
  // Tiny matrices stay dense regardless of sparsity.
  EXPECT_FALSE(MatrixBlock::EvalSparseFormat(4, 4, 0.01));
  // Column vectors stay dense (cols==1).
  EXPECT_FALSE(MatrixBlock::EvalSparseFormat(100000, 1, 0.01));
}

TEST(MatrixBlockTest, SizeEstimates) {
  MatrixBlock d = MatrixBlock::Dense(100, 100);
  EXPECT_GE(d.EstimateSizeInBytes(), 100 * 100 * 8);
  MatrixBlock s = MatrixBlock::Sparse(100, 100);
  s.Set(0, 0, 1.0);
  EXPECT_LT(s.EstimateSizeInBytes(), d.EstimateSizeInBytes());
}

TEST(MatrixBlockTest, EqualsApproxRespectsEpsilon) {
  MatrixBlock a = MatrixBlock::FromValues(1, 2, {1.0, 2.0});
  MatrixBlock b = MatrixBlock::FromValues(1, 2, {1.0 + 1e-12, 2.0});
  EXPECT_TRUE(a.EqualsApprox(b, 1e-9));
  EXPECT_FALSE(a.EqualsApprox(b, 1e-15));
  MatrixBlock c = MatrixBlock::FromValues(2, 1, {1.0, 2.0});
  EXPECT_FALSE(a.EqualsApprox(c));
}

}  // namespace
}  // namespace sysds
