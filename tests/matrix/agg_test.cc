#include "runtime/matrix/lib_agg.h"

#include <gtest/gtest.h>

#include <cmath>

#include "runtime/matrix/lib_datagen.h"

namespace sysds {
namespace {

MatrixBlock Sample() {
  // 3x4 with a zero and negatives.
  return MatrixBlock::FromValues(3, 4,
                                 {1, -2, 3, 0,
                                  4, 5, -6, 7,
                                  0, 8, 9, -1});
}

TEST(AggAllTest, SumMeanMinMaxNnz) {
  MatrixBlock m = Sample();
  EXPECT_DOUBLE_EQ(*AggregateAll(AggOpCode::kSum, m, 1), 28.0);
  EXPECT_DOUBLE_EQ(*AggregateAll(AggOpCode::kMean, m, 1), 28.0 / 12.0);
  EXPECT_DOUBLE_EQ(*AggregateAll(AggOpCode::kMin, m, 1), -6.0);
  EXPECT_DOUBLE_EQ(*AggregateAll(AggOpCode::kMax, m, 1), 9.0);
  EXPECT_DOUBLE_EQ(*AggregateAll(AggOpCode::kNnz, m, 1), 10.0);
  EXPECT_DOUBLE_EQ(*AggregateAll(AggOpCode::kSumSq, m, 1),
                   1 + 4 + 9 + 0 + 16 + 25 + 36 + 49 + 0 + 64 + 81 + 1);
}

TEST(AggAllTest, VarianceAndSd) {
  MatrixBlock m = MatrixBlock::FromValues(1, 4, {2, 4, 4, 6});
  // mean 4, squared devs {4,0,0,4}, sample var 8/3.
  EXPECT_NEAR(*AggregateAll(AggOpCode::kVar, m, 1), 8.0 / 3.0, 1e-12);
  EXPECT_NEAR(*AggregateAll(AggOpCode::kSd, m, 1), std::sqrt(8.0 / 3.0),
              1e-12);
}

TEST(AggAllTest, TraceRequiresSquare) {
  MatrixBlock sq = MatrixBlock::FromValues(2, 2, {1, 2, 3, 4});
  EXPECT_DOUBLE_EQ(*AggregateAll(AggOpCode::kTrace, sq, 1), 5.0);
  MatrixBlock rect = MatrixBlock::Dense(2, 3);
  EXPECT_FALSE(AggregateAll(AggOpCode::kTrace, rect, 1).ok());
}

TEST(AggAllTest, SparseSeesImplicitZeros) {
  MatrixBlock m = MatrixBlock::Sparse(100, 100);
  m.Set(0, 0, 5.0);
  m.Set(50, 50, -3.0);
  EXPECT_DOUBLE_EQ(*AggregateAll(AggOpCode::kMin, m, 1), -3.0);
  EXPECT_DOUBLE_EQ(*AggregateAll(AggOpCode::kMax, m, 1), 5.0);
  EXPECT_DOUBLE_EQ(*AggregateAll(AggOpCode::kSum, m, 1), 2.0);
  // Mean must divide by all cells, not only nonzeros.
  EXPECT_DOUBLE_EQ(*AggregateAll(AggOpCode::kMean, m, 1), 2.0 / 10000.0);
}

TEST(AggRowColTest, RowAggregates) {
  MatrixBlock m = Sample();
  auto rs = AggregateRowCol(AggOpCode::kSum, AggDirection::kRow, m, 2);
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs->Rows(), 3);
  EXPECT_EQ(rs->Cols(), 1);
  EXPECT_DOUBLE_EQ(rs->Get(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(rs->Get(1, 0), 10.0);
  EXPECT_DOUBLE_EQ(rs->Get(2, 0), 16.0);
  auto rmax = AggregateRowCol(AggOpCode::kMax, AggDirection::kRow, m, 1);
  EXPECT_DOUBLE_EQ(rmax->Get(1, 0), 7.0);
}

TEST(AggRowColTest, ColAggregates) {
  MatrixBlock m = Sample();
  auto cs = AggregateRowCol(AggOpCode::kSum, AggDirection::kCol, m, 1);
  ASSERT_TRUE(cs.ok());
  EXPECT_EQ(cs->Rows(), 1);
  EXPECT_EQ(cs->Cols(), 4);
  EXPECT_DOUBLE_EQ(cs->Get(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(cs->Get(0, 1), 11.0);
  EXPECT_DOUBLE_EQ(cs->Get(0, 2), 6.0);
  EXPECT_DOUBLE_EQ(cs->Get(0, 3), 6.0);
  auto cmean = AggregateRowCol(AggOpCode::kMean, AggDirection::kCol, m, 1);
  EXPECT_DOUBLE_EQ(cmean->Get(0, 0), 5.0 / 3.0);
}

TEST(AggRowColTest, RowIndexMaxIsOneBased) {
  MatrixBlock m = Sample();
  auto im = AggregateRowCol(AggOpCode::kIndexMax, AggDirection::kRow, m, 1);
  ASSERT_TRUE(im.ok());
  EXPECT_DOUBLE_EQ(im->Get(0, 0), 3.0);  // row 0 max at col 3 (value 3)
  EXPECT_DOUBLE_EQ(im->Get(1, 0), 4.0);  // row 1 max at col 4 (value 7)
  EXPECT_DOUBLE_EQ(im->Get(2, 0), 3.0);  // row 2 max at col 3 (value 9)
}

TEST(AggRowColTest, SparseMatchesDense) {
  auto m = RandMatrix(60, 30, -1, 1, 0.1, 9, RandPdf::kUniform, 1);
  MatrixBlock dense = *m;
  dense.ToDense();
  MatrixBlock sparse = *m;
  sparse.ToSparse();
  for (AggOpCode op : {AggOpCode::kSum, AggOpCode::kMean, AggOpCode::kMin,
                       AggOpCode::kMax, AggOpCode::kSd}) {
    for (AggDirection dir : {AggDirection::kRow, AggDirection::kCol}) {
      auto a = AggregateRowCol(op, dir, dense, 1);
      auto b = AggregateRowCol(op, dir, sparse, 1);
      ASSERT_TRUE(a.ok() && b.ok());
      EXPECT_TRUE(a->EqualsApprox(*b, 1e-10));
    }
  }
}

TEST(CumAggTest, CumSumColumnwise) {
  MatrixBlock m = MatrixBlock::FromValues(3, 2, {1, 10, 2, 20, 3, 30});
  MatrixBlock c = CumSum(m);
  EXPECT_DOUBLE_EQ(c.Get(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(c.Get(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(c.Get(2, 0), 6.0);
  EXPECT_DOUBLE_EQ(c.Get(2, 1), 60.0);
}

TEST(CumAggTest, CumProdMinMax) {
  MatrixBlock m = MatrixBlock::FromValues(3, 1, {2, -3, 4});
  EXPECT_DOUBLE_EQ(CumProd(m).Get(2, 0), -24.0);
  EXPECT_DOUBLE_EQ(CumMin(m).Get(2, 0), -3.0);
  EXPECT_DOUBLE_EQ(CumMax(m).Get(1, 0), 2.0);
  EXPECT_DOUBLE_EQ(CumMax(m).Get(2, 0), 4.0);
}

TEST(AggStabilityTest, KahanSumStableOnIllConditionedInput) {
  // 1e16 + many 1.0s: naive summation loses them entirely.
  MatrixBlock m = MatrixBlock::Dense(1, 1001);
  m.Set(0, 0, 1e16);
  for (int64_t j = 1; j <= 1000; ++j) m.Set(0, j, 1.0);
  double sum = *AggregateAll(AggOpCode::kSum, m, 1);
  EXPECT_DOUBLE_EQ(sum, 1e16 + 1000.0);
}

}  // namespace
}  // namespace sysds
