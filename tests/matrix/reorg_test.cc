#include "runtime/matrix/lib_reorg.h"

#include <gtest/gtest.h>
#include <cmath>

#include "runtime/matrix/lib_datagen.h"

namespace sysds {
namespace {

TEST(TransposeTest, DenseAndSparseAgree) {
  auto m = RandMatrix(37, 53, -1, 1, 0.2, 1, RandPdf::kUniform, 1);
  MatrixBlock dense = *m;
  dense.ToDense();
  MatrixBlock sparse = *m;
  sparse.ToSparse();
  MatrixBlock td = Transpose(dense, 2);
  MatrixBlock ts = Transpose(sparse, 2);
  EXPECT_EQ(td.Rows(), 53);
  EXPECT_EQ(td.Cols(), 37);
  EXPECT_TRUE(td.EqualsApprox(ts, 0));
  for (int64_t i = 0; i < 37; ++i) {
    for (int64_t j = 0; j < 53; ++j) {
      EXPECT_DOUBLE_EQ(td.Get(j, i), dense.Get(i, j));
    }
  }
}

TEST(TransposeTest, DoubleTransposeIdentity) {
  auto m = RandMatrix(20, 11, -1, 1, 1.0, 2, RandPdf::kUniform, 1);
  EXPECT_TRUE(Transpose(Transpose(*m, 1), 1).EqualsApprox(*m, 0));
}

TEST(ReverseTest, ReversesRowOrder) {
  MatrixBlock m = MatrixBlock::FromValues(3, 2, {1, 2, 3, 4, 5, 6});
  MatrixBlock r = ReverseRows(m);
  EXPECT_DOUBLE_EQ(r.Get(0, 0), 5.0);
  EXPECT_DOUBLE_EQ(r.Get(2, 1), 2.0);
}

TEST(DiagTest, VectorToMatrixAndBack) {
  MatrixBlock v = MatrixBlock::FromValues(3, 1, {1, 0, 3});
  auto d = Diag(v);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->Rows(), 3);
  EXPECT_EQ(d->Cols(), 3);
  EXPECT_DOUBLE_EQ(d->Get(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(d->Get(2, 2), 3.0);
  EXPECT_DOUBLE_EQ(d->Get(0, 1), 0.0);
  auto back = Diag(*d);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->EqualsApprox(v, 0));
}

TEST(DiagTest, RejectsRectangular) {
  MatrixBlock m = MatrixBlock::Dense(2, 3);
  EXPECT_FALSE(Diag(m).ok());
}

TEST(CBindRBindTest, Basic) {
  MatrixBlock a = MatrixBlock::FromValues(2, 2, {1, 2, 3, 4});
  MatrixBlock b = MatrixBlock::FromValues(2, 1, {5, 6});
  auto c = CBind({&a, &b});
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->Cols(), 3);
  EXPECT_DOUBLE_EQ(c->Get(0, 2), 5.0);
  EXPECT_DOUBLE_EQ(c->Get(1, 2), 6.0);

  MatrixBlock d = MatrixBlock::FromValues(1, 2, {7, 8});
  auto r = RBind({&a, &d});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->Rows(), 3);
  EXPECT_DOUBLE_EQ(r->Get(2, 0), 7.0);
}

TEST(CBindRBindTest, ShapeMismatchRejected) {
  MatrixBlock a = MatrixBlock::Dense(2, 2);
  MatrixBlock b = MatrixBlock::Dense(3, 2);
  EXPECT_FALSE(CBind({&a, &b}).ok());
  MatrixBlock c = MatrixBlock::Dense(2, 3);
  EXPECT_FALSE(RBind({&a, &c}).ok());
}

TEST(CBindTest, ThreeInputsIncludingSparse) {
  MatrixBlock a = MatrixBlock::FromValues(2, 1, {1, 2});
  MatrixBlock b = MatrixBlock::Sparse(2, 2);
  b.Set(1, 1, 9.0);
  MatrixBlock c = MatrixBlock::FromValues(2, 1, {3, 4});
  auto out = CBind({&a, &b, &c});
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->Cols(), 4);
  EXPECT_DOUBLE_EQ(out->Get(1, 2), 9.0);
  EXPECT_DOUBLE_EQ(out->Get(1, 3), 4.0);
}

TEST(SliceTest, RangesAndBoundsChecks) {
  MatrixBlock m = MatrixBlock::FromValues(4, 4, {1, 2, 3, 4,
                                                 5, 6, 7, 8,
                                                 9, 10, 11, 12,
                                                 13, 14, 15, 16});
  auto s = SliceMatrix(m, 1, 2, 1, 3);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->Rows(), 2);
  EXPECT_EQ(s->Cols(), 3);
  EXPECT_DOUBLE_EQ(s->Get(0, 0), 6.0);
  EXPECT_DOUBLE_EQ(s->Get(1, 2), 12.0);
  EXPECT_FALSE(SliceMatrix(m, 0, 4, 0, 0).ok());  // row out of bounds
  EXPECT_FALSE(SliceMatrix(m, 2, 1, 0, 0).ok());  // inverted range
}

TEST(SliceTest, SparseSlice) {
  MatrixBlock m = MatrixBlock::Sparse(100, 100);
  m.Set(10, 10, 1.0);
  m.Set(10, 50, 2.0);
  m.Set(60, 10, 3.0);
  auto s = SliceMatrix(m, 0, 49, 0, 19);
  ASSERT_TRUE(s.ok());
  EXPECT_DOUBLE_EQ(s->Get(10, 10), 1.0);
  EXPECT_EQ(s->NonZeros(), 1);
}

TEST(LeftIndexTest, OverwritesRegion) {
  MatrixBlock m = MatrixBlock::Dense(3, 3, 1.0);
  MatrixBlock rhs = MatrixBlock::FromValues(2, 2, {7, 8, 9, 10});
  auto out = LeftIndex(m, rhs, 1, 2, 0, 1);
  ASSERT_TRUE(out.ok());
  EXPECT_DOUBLE_EQ(out->Get(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(out->Get(1, 0), 7.0);
  EXPECT_DOUBLE_EQ(out->Get(2, 1), 10.0);
  // Original untouched (copy semantics).
  EXPECT_DOUBLE_EQ(m.Get(1, 0), 1.0);
}

TEST(LeftIndexTest, ShapeMismatchRejected) {
  MatrixBlock m = MatrixBlock::Dense(3, 3);
  MatrixBlock rhs = MatrixBlock::Dense(2, 3);
  EXPECT_FALSE(LeftIndex(m, rhs, 0, 1, 0, 1).ok());
}

TEST(ReshapeTest, RowMajorOrderPreserved) {
  MatrixBlock m = MatrixBlock::FromValues(2, 3, {1, 2, 3, 4, 5, 6});
  auto r = Reshape(m, 3, 2);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->Get(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(r->Get(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(r->Get(1, 0), 3.0);
  EXPECT_DOUBLE_EQ(r->Get(2, 1), 6.0);
  EXPECT_FALSE(Reshape(m, 4, 2).ok());
}

TEST(OrderTest, SortsByColumnStable) {
  MatrixBlock m = MatrixBlock::FromValues(4, 2, {3, 1, 1, 2, 3, 3, 2, 4});
  auto asc = OrderByColumn(m, 0, false, false);
  ASSERT_TRUE(asc.ok());
  EXPECT_DOUBLE_EQ(asc->Get(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(asc->Get(0, 1), 2.0);
  // Stability: the two rows with key 3 keep original relative order.
  EXPECT_DOUBLE_EQ(asc->Get(2, 1), 1.0);
  EXPECT_DOUBLE_EQ(asc->Get(3, 1), 3.0);
  auto idx = OrderByColumn(m, 0, true, true);
  ASSERT_TRUE(idx.ok());
  EXPECT_EQ(idx->Cols(), 1);
  EXPECT_DOUBLE_EQ(idx->Get(0, 0), 1.0);  // first row (value 3) first
}

TEST(RemoveEmptyTest, RowsAndCols) {
  MatrixBlock m = MatrixBlock::Dense(3, 3);
  m.Set(0, 0, 1.0);
  m.Set(2, 2, 2.0);
  MatrixBlock rows = RemoveEmpty(m, true);
  EXPECT_EQ(rows.Rows(), 2);
  MatrixBlock cols = RemoveEmpty(m, false);
  EXPECT_EQ(cols.Cols(), 2);
  MatrixBlock empty = MatrixBlock::Dense(3, 3);
  MatrixBlock none = RemoveEmpty(empty, true);
  EXPECT_EQ(none.Rows(), 1);  // SystemDS returns a 1x1 zero matrix
}

TEST(CTableTest, ContingencyCounts) {
  MatrixBlock a = MatrixBlock::FromValues(5, 1, {1, 2, 1, 3, 2});
  MatrixBlock b = MatrixBlock::FromValues(5, 1, {2, 1, 2, 1, 1});
  auto t = CTable(a, b);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->Rows(), 3);
  EXPECT_EQ(t->Cols(), 2);
  EXPECT_DOUBLE_EQ(t->Get(0, 1), 2.0);  // (1,2) twice
  EXPECT_DOUBLE_EQ(t->Get(1, 0), 2.0);  // (2,1) twice
  EXPECT_DOUBLE_EQ(t->Get(2, 0), 1.0);  // (3,1) once
  MatrixBlock bad = MatrixBlock::FromValues(5, 1, {0, 1, 1, 1, 1});
  EXPECT_FALSE(CTable(bad, b).ok());  // zero entry invalid
}

TEST(ReplaceTest, ExactAndNaN) {
  MatrixBlock m = MatrixBlock::FromValues(1, 4, {1, 0, 1, 2});
  MatrixBlock r = ReplaceValues(m, 1.0, 9.0);
  EXPECT_DOUBLE_EQ(r.Get(0, 0), 9.0);
  EXPECT_DOUBLE_EQ(r.Get(0, 2), 9.0);
  EXPECT_DOUBLE_EQ(r.Get(0, 3), 2.0);
  MatrixBlock n = MatrixBlock::FromValues(1, 2, {std::nan(""), 3});
  MatrixBlock rn = ReplaceValues(n, std::nan(""), 0.0);
  EXPECT_DOUBLE_EQ(rn.Get(0, 0), 0.0);
  EXPECT_DOUBLE_EQ(rn.Get(0, 1), 3.0);
}

}  // namespace
}  // namespace sysds
