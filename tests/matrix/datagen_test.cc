#include "runtime/matrix/lib_datagen.h"

#include <gtest/gtest.h>

#include <set>

namespace sysds {
namespace {

TEST(RandTest, DeterministicInSeedAndThreadCount) {
  auto a = RandMatrix(100, 50, 0, 1, 1.0, 42, RandPdf::kUniform, 1);
  auto b = RandMatrix(100, 50, 0, 1, 1.0, 42, RandPdf::kUniform, 8);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_TRUE(a->EqualsApprox(*b, 0));
  auto c = RandMatrix(100, 50, 0, 1, 1.0, 43, RandPdf::kUniform, 1);
  EXPECT_FALSE(a->EqualsApprox(*c, 0));
}

TEST(RandTest, RespectsValueRange) {
  auto m = RandMatrix(50, 50, 2.0, 3.0, 1.0, 1, RandPdf::kUniform, 2);
  for (int64_t i = 0; i < 50; ++i) {
    for (int64_t j = 0; j < 50; ++j) {
      EXPECT_GE(m->Get(i, j), 2.0);
      EXPECT_LT(m->Get(i, j), 3.0);
    }
  }
}

TEST(RandTest, SparsityApproximatelyHonored) {
  auto m = RandMatrix(200, 200, 1.0, 2.0, 0.1, 7, RandPdf::kUniform, 2);
  double sp = m->Sparsity();
  EXPECT_NEAR(sp, 0.1, 0.02);
  EXPECT_TRUE(m->IsSparse());
}

TEST(RandTest, NormalPdfMoments) {
  auto m = RandMatrix(300, 100, 0, 1, 1.0, 11, RandPdf::kNormal, 4);
  double sum = 0, sumsq = 0;
  for (int64_t i = 0; i < m->Rows(); ++i) {
    for (int64_t j = 0; j < m->Cols(); ++j) {
      double v = m->Get(i, j);
      sum += v;
      sumsq += v * v;
    }
  }
  double n = static_cast<double>(m->CellCount());
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sumsq / n, 1.0, 0.03);
}

TEST(RandTest, InvalidArgs) {
  EXPECT_FALSE(RandMatrix(10, 10, 0, 1, 1.5, 1, RandPdf::kUniform, 1).ok());
  EXPECT_FALSE(RandMatrix(-1, 10, 0, 1, 1.0, 1, RandPdf::kUniform, 1).ok());
}

TEST(SeqTest, ForwardBackwardFractional) {
  auto s = SeqMatrix(1, 5, 1);
  ASSERT_TRUE(s.ok());
  EXPECT_EQ(s->Rows(), 5);
  EXPECT_DOUBLE_EQ(s->Get(4, 0), 5.0);
  auto back = SeqMatrix(5, 1, -2);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->Rows(), 3);
  EXPECT_DOUBLE_EQ(back->Get(2, 0), 1.0);
  auto frac = SeqMatrix(0, 1, 0.25);
  EXPECT_EQ(frac->Rows(), 5);
  EXPECT_FALSE(SeqMatrix(1, 5, 0).ok());
  EXPECT_FALSE(SeqMatrix(1, 5, -1).ok());
}

TEST(SampleTest, WithoutReplacementIsPermutationSubset) {
  auto s = SampleMatrix(100, 50, false, 3);
  ASSERT_TRUE(s.ok());
  std::set<int64_t> seen;
  for (int64_t i = 0; i < 50; ++i) {
    int64_t v = static_cast<int64_t>(s->Get(i, 0));
    EXPECT_GE(v, 1);
    EXPECT_LE(v, 100);
    EXPECT_TRUE(seen.insert(v).second) << "duplicate " << v;
  }
  EXPECT_FALSE(SampleMatrix(10, 20, false, 1).ok());
}

TEST(SampleTest, WithReplacementInRange) {
  auto s = SampleMatrix(5, 200, true, 4);
  ASSERT_TRUE(s.ok());
  for (int64_t i = 0; i < 200; ++i) {
    EXPECT_GE(s->Get(i, 0), 1);
    EXPECT_LE(s->Get(i, 0), 5);
  }
}

}  // namespace
}  // namespace sysds
