#include "runtime/matrix/lib_matmult.h"

#include <gtest/gtest.h>

#include "runtime/matrix/lib_datagen.h"
#include "runtime/matrix/lib_reorg.h"

namespace sysds {
namespace {

// Reference O(n^3) matmult on Get()/Set() only.
MatrixBlock RefMatMult(const MatrixBlock& a, const MatrixBlock& b) {
  MatrixBlock c = MatrixBlock::Dense(a.Rows(), b.Cols());
  for (int64_t i = 0; i < a.Rows(); ++i) {
    for (int64_t j = 0; j < b.Cols(); ++j) {
      double sum = 0;
      for (int64_t k = 0; k < a.Cols(); ++k) {
        sum += a.Get(i, k) * b.Get(k, j);
      }
      c.Set(i, j, sum);
    }
  }
  return c;
}

MatrixBlock Random(int64_t rows, int64_t cols, double sparsity,
                   uint64_t seed) {
  auto m = RandMatrix(rows, cols, -1.0, 1.0, sparsity, seed,
                      RandPdf::kUniform, 1);
  return *m;
}

struct MatMultCase {
  int64_t m, k, n;
  double sp_a, sp_b;
  int threads;
};

class MatMultParamTest : public ::testing::TestWithParam<MatMultCase> {};

TEST_P(MatMultParamTest, MatchesReference) {
  const MatMultCase& c = GetParam();
  MatrixBlock a = Random(c.m, c.k, c.sp_a, 1);
  MatrixBlock b = Random(c.k, c.n, c.sp_b, 2);
  if (c.sp_a < 0.4) a.ToSparse();
  if (c.sp_b < 0.4) b.ToSparse();
  auto result = MatMult(a, b, c.threads);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->EqualsApprox(RefMatMult(a, b), 1e-9));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, MatMultParamTest,
    ::testing::Values(
        MatMultCase{1, 1, 1, 1.0, 1.0, 1},      // degenerate
        MatMultCase{17, 23, 11, 1.0, 1.0, 1},   // dense odd shapes
        MatMultCase{64, 64, 64, 1.0, 1.0, 4},   // dense threaded
        MatMultCase{40, 60, 50, 0.1, 1.0, 2},   // sparse-dense
        MatMultCase{40, 60, 50, 1.0, 0.1, 2},   // dense-sparse
        MatMultCase{40, 60, 50, 0.1, 0.1, 2},   // sparse-sparse
        MatMultCase{100, 3, 1, 1.0, 1.0, 4},    // matrix-vector
        MatMultCase{1, 50, 50, 1.0, 1.0, 1},    // vector-matrix
        MatMultCase{130, 70, 90, 0.05, 1.0, 8}));

TEST(MatMultTest, DimensionMismatchRejected) {
  MatrixBlock a = MatrixBlock::Dense(2, 3);
  MatrixBlock b = MatrixBlock::Dense(4, 2);
  EXPECT_FALSE(MatMult(a, b, 1).ok());
}

TEST(MatMultTest, PortableAndNativeKernelsAgree) {
  MatrixBlock a = Random(37, 53, 1.0, 3);
  MatrixBlock b = Random(53, 29, 1.0, 4);
  SetGemmKernel(GemmKernel::kPortable);
  auto c1 = MatMult(a, b, 1);
  SetGemmKernel(GemmKernel::kNative);
  auto c2 = MatMult(a, b, 1);
  ASSERT_TRUE(c1.ok() && c2.ok());
  EXPECT_TRUE(c1->EqualsApprox(*c2, 1e-9));
}

class TsmmParamTest
    : public ::testing::TestWithParam<std::tuple<int64_t, int64_t, double>> {
};

TEST_P(TsmmParamTest, LeftMatchesExplicit) {
  auto [rows, cols, sp] = GetParam();
  MatrixBlock x = Random(rows, cols, sp, 5);
  if (sp < 0.4) x.ToSparse();
  auto fused = TransposeSelfMatMult(x, /*left=*/true, 3);
  ASSERT_TRUE(fused.ok());
  MatrixBlock xt = Transpose(x, 1);
  EXPECT_TRUE(fused->EqualsApprox(RefMatMult(xt, x), 1e-9));
}

TEST_P(TsmmParamTest, RightMatchesExplicit) {
  auto [rows, cols, sp] = GetParam();
  MatrixBlock x = Random(rows, cols, sp, 6);
  if (sp < 0.4) x.ToSparse();
  auto fused = TransposeSelfMatMult(x, /*left=*/false, 3);
  ASSERT_TRUE(fused.ok());
  MatrixBlock xt = Transpose(x, 1);
  EXPECT_TRUE(fused->EqualsApprox(RefMatMult(x, xt), 1e-9));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TsmmParamTest,
    ::testing::Values(std::make_tuple(50, 10, 1.0),
                      std::make_tuple(33, 17, 1.0),
                      std::make_tuple(64, 8, 0.1),
                      std::make_tuple(200, 20, 0.05),
                      std::make_tuple(5, 5, 1.0)));

TEST(TsmmTest, PortableAndNativeKernelsAgree) {
  MatrixBlock x = Random(83, 21, 1.0, 11);
  MatrixBlock y = Random(83, 5, 1.0, 12);
  SetGemmKernel(GemmKernel::kPortable);
  auto t1 = TransposeSelfMatMult(x, true, 2);
  auto m1 = TransposeLeftMatMult(x, y, 2);
  SetGemmKernel(GemmKernel::kNative);
  auto t2 = TransposeSelfMatMult(x, true, 2);
  auto m2 = TransposeLeftMatMult(x, y, 2);
  ASSERT_TRUE(t1.ok() && t2.ok() && m1.ok() && m2.ok());
  EXPECT_TRUE(t1->EqualsApprox(*t2, 1e-9));
  EXPECT_TRUE(m1->EqualsApprox(*m2, 1e-9));
}

TEST(TsmmTest, ResultIsSymmetric) {
  MatrixBlock x = Random(40, 12, 1.0, 7);
  auto c = TransposeSelfMatMult(x, true, 2);
  ASSERT_TRUE(c.ok());
  for (int64_t i = 0; i < c->Rows(); ++i) {
    for (int64_t j = 0; j < c->Cols(); ++j) {
      EXPECT_DOUBLE_EQ(c->Get(i, j), c->Get(j, i));
    }
  }
}

class TmmParamTest
    : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(TmmParamTest, MatchesExplicitTranspose) {
  auto [sp_a, sp_b] = GetParam();
  MatrixBlock a = Random(60, 15, sp_a, 8);
  MatrixBlock b = Random(60, 7, sp_b, 9);
  if (sp_a < 0.4) a.ToSparse();
  if (sp_b < 0.4) b.ToSparse();
  auto fused = TransposeLeftMatMult(a, b, 3);
  ASSERT_TRUE(fused.ok());
  MatrixBlock at = Transpose(a, 1);
  EXPECT_TRUE(fused->EqualsApprox(RefMatMult(at, b), 1e-9));
}

INSTANTIATE_TEST_SUITE_P(SparsityCombos, TmmParamTest,
                         ::testing::Values(std::make_tuple(1.0, 1.0),
                                           std::make_tuple(0.1, 1.0),
                                           std::make_tuple(1.0, 0.1),
                                           std::make_tuple(0.1, 0.1)));

TEST(TmmTest, RowMismatchRejected) {
  MatrixBlock a = MatrixBlock::Dense(5, 2);
  MatrixBlock b = MatrixBlock::Dense(6, 2);
  EXPECT_FALSE(TransposeLeftMatMult(a, b, 1).ok());
}

TEST(MatMultTest, EmptyMatrix) {
  MatrixBlock a = MatrixBlock::Dense(0, 3);
  MatrixBlock b = MatrixBlock::Dense(3, 4);
  auto c = MatMult(a, b, 1);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->Rows(), 0);
  EXPECT_EQ(c->Cols(), 4);
}

}  // namespace
}  // namespace sysds
