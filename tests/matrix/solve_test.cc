#include "runtime/matrix/lib_solve.h"

#include <gtest/gtest.h>

#include "runtime/matrix/lib_datagen.h"
#include "runtime/matrix/lib_matmult.h"

namespace sysds {
namespace {

MatrixBlock RandomSpd(int64_t n, uint64_t seed) {
  auto x = RandMatrix(n + 10, n, -1, 1, 1.0, seed, RandPdf::kUniform, 1);
  auto a = TransposeSelfMatMult(*x, true, 1);
  MatrixBlock m = *a;
  m.ToDense();
  for (int64_t i = 0; i < n; ++i) m.DenseRow(i)[i] += 1.0;  // well-conditioned
  m.MarkNnzDirty();
  return m;
}

TEST(SolveTest, SpdSystemViaCholesky) {
  MatrixBlock a = RandomSpd(12, 1);
  auto xt = RandMatrix(12, 1, -1, 1, 1.0, 2, RandPdf::kUniform, 1);
  auto b = MatMult(a, *xt, 1);
  auto x = Solve(a, *b);
  ASSERT_TRUE(x.ok());
  EXPECT_TRUE(x->EqualsApprox(*xt, 1e-8));
}

TEST(SolveTest, NonSymmetricViaLu) {
  MatrixBlock a = MatrixBlock::FromValues(3, 3,
                                          {0, 2, 1,    // zero pivot forces
                                           1, -1, 0,   // row exchange
                                           3, 0, -2});
  MatrixBlock xt = MatrixBlock::FromValues(3, 1, {1, 2, 3});
  auto b = MatMult(a, xt, 1);
  auto x = Solve(a, *b);
  ASSERT_TRUE(x.ok());
  EXPECT_TRUE(x->EqualsApprox(xt, 1e-10));
}

TEST(SolveTest, MultipleRightHandSides) {
  MatrixBlock a = RandomSpd(8, 3);
  auto xt = RandMatrix(8, 3, -1, 1, 1.0, 4, RandPdf::kUniform, 1);
  auto b = MatMult(a, *xt, 1);
  auto x = Solve(a, *b);
  ASSERT_TRUE(x.ok());
  EXPECT_EQ(x->Cols(), 3);
  EXPECT_TRUE(x->EqualsApprox(*xt, 1e-8));
}

TEST(SolveTest, SingularRejected) {
  MatrixBlock a = MatrixBlock::FromValues(2, 2, {1, 2, 2, 4});
  MatrixBlock b = MatrixBlock::FromValues(2, 1, {1, 1});
  EXPECT_FALSE(Solve(a, b).ok());
}

TEST(SolveTest, ShapeChecks) {
  MatrixBlock rect = MatrixBlock::Dense(2, 3);
  MatrixBlock b = MatrixBlock::Dense(2, 1);
  EXPECT_FALSE(Solve(rect, b).ok());
  MatrixBlock sq = MatrixBlock::Dense(3, 3, 1.0);
  EXPECT_FALSE(Solve(sq, b).ok());  // rhs rows mismatch
}

TEST(CholeskyTest, ReconstructsInput) {
  MatrixBlock a = RandomSpd(10, 5);
  auto l = Cholesky(a);
  ASSERT_TRUE(l.ok());
  // L is lower triangular.
  for (int64_t i = 0; i < 10; ++i) {
    for (int64_t j = i + 1; j < 10; ++j) {
      EXPECT_DOUBLE_EQ(l->Get(i, j), 0.0);
    }
  }
  // L * L^T == A.
  MatrixBlock lt = MatrixBlock::Dense(10, 10);
  for (int64_t i = 0; i < 10; ++i) {
    for (int64_t j = 0; j < 10; ++j) lt.Set(i, j, l->Get(j, i));
  }
  auto rec = MatMult(*l, lt, 1);
  EXPECT_TRUE(rec->EqualsApprox(a, 1e-8));
}

TEST(CholeskyTest, RejectsIndefinite) {
  MatrixBlock a = MatrixBlock::FromValues(2, 2, {1, 2, 2, 1});  // eigen -1, 3
  EXPECT_FALSE(Cholesky(a).ok());
}

TEST(InverseTest, TimesOriginalIsIdentity) {
  MatrixBlock a = RandomSpd(6, 7);
  auto inv = Inverse(a);
  ASSERT_TRUE(inv.ok());
  auto prod = MatMult(a, *inv, 1);
  for (int64_t i = 0; i < 6; ++i) {
    for (int64_t j = 0; j < 6; ++j) {
      EXPECT_NEAR(prod->Get(i, j), i == j ? 1.0 : 0.0, 1e-9);
    }
  }
}

TEST(DeterminantTest, KnownValues) {
  MatrixBlock a = MatrixBlock::FromValues(2, 2, {3, 8, 4, 6});
  EXPECT_NEAR(*Determinant(a), -14.0, 1e-12);
  MatrixBlock id = MatrixBlock::Dense(4, 4);
  for (int64_t i = 0; i < 4; ++i) id.Set(i, i, 1.0);
  EXPECT_NEAR(*Determinant(id), 1.0, 1e-12);
  MatrixBlock sing = MatrixBlock::FromValues(2, 2, {1, 2, 2, 4});
  EXPECT_NEAR(*Determinant(sing), 0.0, 1e-12);
}

}  // namespace
}  // namespace sysds
