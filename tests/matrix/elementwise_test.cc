#include "runtime/matrix/lib_elementwise.h"

#include <gtest/gtest.h>

#include <cmath>

#include "runtime/matrix/lib_datagen.h"

namespace sysds {
namespace {

MatrixBlock Random(int64_t rows, int64_t cols, double sparsity,
                   uint64_t seed) {
  return *RandMatrix(rows, cols, -2.0, 2.0, sparsity, seed,
                     RandPdf::kUniform, 1);
}

class BinaryOpParamTest : public ::testing::TestWithParam<BinaryOpCode> {};

TEST_P(BinaryOpParamTest, MatrixMatrixMatchesCellwise) {
  BinaryOpCode op = GetParam();
  MatrixBlock a = Random(13, 7, 1.0, 1);
  MatrixBlock b = Random(13, 7, 1.0, 2);
  auto c = BinaryMatrixMatrix(op, a, b, 2);
  ASSERT_TRUE(c.ok());
  for (int64_t i = 0; i < 13; ++i) {
    for (int64_t j = 0; j < 7; ++j) {
      double expect = ApplyBinary(op, a.Get(i, j), b.Get(i, j));
      double actual = c->Get(i, j);
      if (std::isnan(expect)) {
        EXPECT_TRUE(std::isnan(actual));
      } else {
        EXPECT_DOUBLE_EQ(actual, expect) << "op " << BinaryOpName(op);
      }
    }
  }
}

TEST_P(BinaryOpParamTest, SparseInputsMatchDense) {
  BinaryOpCode op = GetParam();
  MatrixBlock a = Random(40, 40, 0.15, 3);
  MatrixBlock b = Random(40, 40, 0.15, 4);
  auto dense = BinaryMatrixMatrix(op, a, b, 1);
  MatrixBlock as = a, bs = b;
  as.ToSparse();
  bs.ToSparse();
  auto sparse = BinaryMatrixMatrix(op, as, bs, 1);
  ASSERT_TRUE(dense.ok() && sparse.ok());
  EXPECT_TRUE(dense->EqualsApprox(*sparse, 1e-12));
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, BinaryOpParamTest,
    ::testing::Values(BinaryOpCode::kAdd, BinaryOpCode::kSub,
                      BinaryOpCode::kMul, BinaryOpCode::kDiv,
                      BinaryOpCode::kPow, BinaryOpCode::kMin,
                      BinaryOpCode::kMax, BinaryOpCode::kEqual,
                      BinaryOpCode::kNotEqual, BinaryOpCode::kLess,
                      BinaryOpCode::kLessEqual, BinaryOpCode::kGreater,
                      BinaryOpCode::kGreaterEqual, BinaryOpCode::kAnd,
                      BinaryOpCode::kOr));

TEST(BinaryBroadcastTest, ColumnVector) {
  MatrixBlock a = Random(10, 4, 1.0, 5);
  MatrixBlock v = Random(10, 1, 1.0, 6);
  auto c = BinaryMatrixMatrix(BinaryOpCode::kSub, a, v, 1);
  ASSERT_TRUE(c.ok());
  for (int64_t i = 0; i < 10; ++i) {
    for (int64_t j = 0; j < 4; ++j) {
      EXPECT_DOUBLE_EQ(c->Get(i, j), a.Get(i, j) - v.Get(i, 0));
    }
  }
}

TEST(BinaryBroadcastTest, RowVector) {
  MatrixBlock a = Random(10, 4, 1.0, 7);
  MatrixBlock v = Random(1, 4, 1.0, 8);
  auto c = BinaryMatrixMatrix(BinaryOpCode::kDiv, a, v, 1);
  ASSERT_TRUE(c.ok());
  for (int64_t i = 0; i < 10; ++i) {
    for (int64_t j = 0; j < 4; ++j) {
      EXPECT_DOUBLE_EQ(c->Get(i, j), a.Get(i, j) / v.Get(0, j));
    }
  }
}

TEST(BinaryBroadcastTest, VectorOnLeft) {
  MatrixBlock v = Random(1, 4, 1.0, 9);
  MatrixBlock a = Random(10, 4, 1.0, 10);
  auto c = BinaryMatrixMatrix(BinaryOpCode::kSub, v, a, 1);
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->Rows(), 10);
  for (int64_t i = 0; i < 10; ++i) {
    for (int64_t j = 0; j < 4; ++j) {
      EXPECT_DOUBLE_EQ(c->Get(i, j), v.Get(0, j) - a.Get(i, j));
    }
  }
}

TEST(BinaryBroadcastTest, IncompatibleShapesRejected) {
  MatrixBlock a = MatrixBlock::Dense(3, 4);
  MatrixBlock b = MatrixBlock::Dense(2, 4);
  EXPECT_FALSE(BinaryMatrixMatrix(BinaryOpCode::kAdd, a, b, 1).ok());
}

TEST(BinaryScalarTest, ScalarRightAndLeft) {
  MatrixBlock a = Random(6, 6, 1.0, 11);
  MatrixBlock right = BinaryMatrixScalar(BinaryOpCode::kSub, a, 2.0, false, 1);
  MatrixBlock left = BinaryMatrixScalar(BinaryOpCode::kSub, a, 2.0, true, 1);
  for (int64_t i = 0; i < 6; ++i) {
    for (int64_t j = 0; j < 6; ++j) {
      EXPECT_DOUBLE_EQ(right.Get(i, j), a.Get(i, j) - 2.0);
      EXPECT_DOUBLE_EQ(left.Get(i, j), 2.0 - a.Get(i, j));
    }
  }
}

TEST(BinaryScalarTest, SparseSafeScalarMulStaysSparse) {
  MatrixBlock a = Random(64, 64, 0.05, 12);
  a.ToSparse();
  MatrixBlock c = BinaryMatrixScalar(BinaryOpCode::kMul, a, 3.0, false, 1);
  EXPECT_TRUE(c.IsSparse());
  EXPECT_EQ(c.NonZeros(), a.NonZeros());
}

TEST(BinaryScalarTest, NonSparseSafeScalarAddDensifies) {
  MatrixBlock a = Random(64, 64, 0.05, 13);
  a.ToSparse();
  MatrixBlock c = BinaryMatrixScalar(BinaryOpCode::kAdd, a, 1.0, false, 1);
  // op(0, 1) == 1 != 0 => all cells nonzero.
  EXPECT_EQ(c.NonZeros(), 64 * 64);
}

class UnaryOpParamTest : public ::testing::TestWithParam<UnaryOpCode> {};

TEST_P(UnaryOpParamTest, MatchesCellwiseDenseAndSparse) {
  UnaryOpCode op = GetParam();
  MatrixBlock a = Random(15, 9, 0.3, 14);
  // Keep log/sqrt defined: use abs values + epsilon for those ops.
  if (op == UnaryOpCode::kLog || op == UnaryOpCode::kSqrt) {
    for (int64_t i = 0; i < a.Rows(); ++i) {
      for (int64_t j = 0; j < a.Cols(); ++j) {
        a.Set(i, j, std::fabs(a.Get(i, j)) + 0.5);
      }
    }
  }
  MatrixBlock dense = UnaryMatrix(op, a, 2);
  MatrixBlock as = a;
  as.ToSparse();
  MatrixBlock sparse = UnaryMatrix(op, as, 2);
  for (int64_t i = 0; i < a.Rows(); ++i) {
    for (int64_t j = 0; j < a.Cols(); ++j) {
      EXPECT_DOUBLE_EQ(dense.Get(i, j), ApplyUnary(op, a.Get(i, j)));
    }
  }
  EXPECT_TRUE(dense.EqualsApprox(sparse, 1e-12));
}

INSTANTIATE_TEST_SUITE_P(
    AllOps, UnaryOpParamTest,
    ::testing::Values(UnaryOpCode::kExp, UnaryOpCode::kLog,
                      UnaryOpCode::kSqrt, UnaryOpCode::kAbs,
                      UnaryOpCode::kRound, UnaryOpCode::kFloor,
                      UnaryOpCode::kCeil, UnaryOpCode::kSin,
                      UnaryOpCode::kCos, UnaryOpCode::kSign,
                      UnaryOpCode::kNegate, UnaryOpCode::kSigmoid));

TEST(TernaryIfElseTest, MatrixCondScalarArms) {
  MatrixBlock cond = MatrixBlock::FromValues(2, 2, {1, 0, 0, 2});
  auto c = TernaryIfElse(cond, nullptr, 10.0, nullptr, -10.0, 1);
  ASSERT_TRUE(c.ok());
  EXPECT_DOUBLE_EQ(c->Get(0, 0), 10.0);
  EXPECT_DOUBLE_EQ(c->Get(0, 1), -10.0);
  EXPECT_DOUBLE_EQ(c->Get(1, 1), 10.0);
}

TEST(TernaryIfElseTest, MatrixArms) {
  MatrixBlock cond = MatrixBlock::FromValues(1, 3, {1, 0, 1});
  MatrixBlock a = MatrixBlock::FromValues(1, 3, {1, 2, 3});
  MatrixBlock b = MatrixBlock::FromValues(1, 3, {-1, -2, -3});
  auto c = TernaryIfElse(cond, &a, 0, &b, 0, 1);
  ASSERT_TRUE(c.ok());
  EXPECT_DOUBLE_EQ(c->Get(0, 0), 1.0);
  EXPECT_DOUBLE_EQ(c->Get(0, 1), -2.0);
  EXPECT_DOUBLE_EQ(c->Get(0, 2), 3.0);
}

TEST(TernaryIfElseTest, ShapeMismatchRejected) {
  MatrixBlock cond = MatrixBlock::Dense(2, 2);
  MatrixBlock a = MatrixBlock::Dense(3, 2);
  EXPECT_FALSE(TernaryIfElse(cond, &a, 0, nullptr, 0, 1).ok());
}

}  // namespace
}  // namespace sysds
