#include <gtest/gtest.h>

#include "api/systemds_context.h"
#include "common/statistics.h"
#include "compiler/compiler.h"
#include "lineage/lineage.h"
#include "runtime/controlprog/program.h"

namespace sysds {
namespace {

// Runs a script and returns the lineage node count of `var` at the end.
int64_t TraceSize(const std::string& script, const std::string& var,
                  bool dedup) {
  DMLConfig config;
  config.lineage_tracing = true;
  config.lineage_dedup = dedup;
  auto prog = CompileDML(script, config, {});
  EXPECT_TRUE(prog.ok()) << prog.status();
  ExecutionContext ec(prog->get(), &config);
  std::ostringstream out;
  ec.SetOut(&out);
  Status s = (*prog)->Execute(&ec);
  EXPECT_TRUE(s.ok()) << s;
  LineageItemPtr item = ec.Lineage()->GetOrNull(var);
  EXPECT_NE(item, nullptr);
  return item == nullptr ? -1 : item->NodeCount();
}

TEST(LineageDedupTest, BoundsTraceGrowthInLoops) {
  // 60 iterations, each with several instructions: the full trace grows
  // with iterations * instructions, the deduplicated trace only with
  // iterations * loop-carried variables.
  const char* script =
      "X = rand(rows=20, cols=4, seed=1)\n"
      "acc = matrix(0, 4, 4)\n"
      "for (i in 1:60) {\n"
      "  Y = t(X) %*% X\n"
      "  Z = Y * i + 1\n"
      "  acc = acc + Z\n"
      "}\n";
  int64_t full = TraceSize(script, "acc", /*dedup=*/false);
  int64_t deduped = TraceSize(script, "acc", /*dedup=*/true);
  EXPECT_GT(full, deduped * 2);  // substantial reduction
  EXPECT_GT(deduped, 0);
}

TEST(LineageDedupTest, DistinctControlFlowPathsGetDistinctIds) {
  Statistics::Get().Reset();
  DMLConfig config;
  config.lineage_tracing = true;
  config.lineage_dedup = true;
  SystemDSContext ctx(config);
  // Two distinct paths through the loop body (even/odd), taken repeatedly.
  auto r = ctx.Execute(
      "acc = 0\n"
      "for (i in 1:20) {\n"
      "  if (i %% 2 == 0) {\n"
      "    acc = acc + i\n"
      "  } else {\n"
      "    acc = acc - i\n"
      "  }\n"
      "}\n",
      {}, {"acc"});
  ASSERT_TRUE(r.ok()) << r.status();
  // acc is a scalar: control-flow over scalars does not even need dedup
  // nodes (scalars are traced by value); the path registry stays small.
  EXPECT_LE(Statistics::Get().GetCounter("lineage.dedup_paths"), 4);
}

TEST(LineageDedupTest, MatrixLoopPathsRegistered) {
  Statistics::Get().Reset();
  DMLConfig config;
  config.lineage_tracing = true;
  config.lineage_dedup = true;
  SystemDSContext ctx(config);
  auto r = ctx.Execute(
      "A = matrix(1, 3, 3)\n"
      "for (i in 1:30) {\n"
      "  if (i %% 2 == 0) {\n"
      "    A = A * 2\n"
      "  } else {\n"
      "    A = A + 1\n"
      "  }\n"
      "}\n"
      "s = sum(A)\n",
      {}, {"s"});
  ASSERT_TRUE(r.ok()) << r.status();
  // Exactly two distinct paths despite 30 iterations.
  EXPECT_EQ(Statistics::Get().GetCounter("lineage.dedup_paths"), 2);
}

TEST(LineageDedupTest, ResultsUnchangedByDedup) {
  const char* script =
      "X = rand(rows=50, cols=6, seed=3)\n"
      "w = matrix(0, 6, 1)\n"
      "for (i in 1:10) {\n"
      "  g = t(X) %*% (X %*% w) - t(X) %*% matrix(1, 50, 1)\n"
      "  w = w - 0.001 * g\n"
      "}\n"
      "s = sum(w)\n";
  DMLConfig plain;
  SystemDSContext c1(plain);
  auto r1 = c1.Execute(script, {}, {"s"});
  DMLConfig dedup;
  dedup.lineage_tracing = true;
  dedup.lineage_dedup = true;
  SystemDSContext c2(dedup);
  auto r2 = c2.Execute(script, {}, {"s"});
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_DOUBLE_EQ(*r1->GetDouble("s"), *r2->GetDouble("s"));
}

}  // namespace
}  // namespace sysds
