#include "lineage/lineage.h"

#include <gtest/gtest.h>

#include "api/systemds_context.h"
#include "common/statistics.h"

namespace sysds {
namespace {

TEST(LineageItemTest, HashIsStructural) {
  auto x = LineageItem::Leaf("in", "X");
  auto y = LineageItem::Leaf("in", "Y");
  auto a = LineageItem::Node("tsmm", {x});
  auto b = LineageItem::Node("tsmm", {LineageItem::Leaf("in", "X")});
  EXPECT_EQ(a->hash(), b->hash());
  EXPECT_TRUE(a->Equals(*b));
  auto c = LineageItem::Node("tsmm", {y});
  EXPECT_NE(a->hash(), c->hash());
  auto d = LineageItem::Node("tmm", {x});
  EXPECT_NE(a->hash(), d->hash());
}

TEST(LineageItemTest, SerializeAndCount) {
  auto x = LineageItem::Leaf("in", "X");
  auto t = LineageItem::Node("t", {x});
  auto mm = LineageItem::Node("ba+*", {t, x});
  EXPECT_EQ(mm->NodeCount(), 3);
  std::string s = mm->Serialize();
  EXPECT_NE(s.find("ba+*"), std::string::npos);
  EXPECT_NE(s.find("in X"), std::string::npos);
}

TEST(LineageMapTest, LeafCreationAndRebinding) {
  LineageMap map;
  auto x1 = map.GetOrCreate("X");
  auto x2 = map.GetOrCreate("X");
  EXPECT_EQ(x1.get(), x2.get());
  map.Set("X", LineageItem::Node("op", {x1}));
  EXPECT_NE(map.GetOrNull("X").get(), x1.get());
  map.Remove("X");
  EXPECT_EQ(map.GetOrNull("X"), nullptr);
}

TEST(LineageCacheTest, PutProbeRoundtrip) {
  LineageCache cache(1 << 20, ReusePolicy::kFull);
  auto item = LineageItem::Node("tsmm", {LineageItem::Leaf("in", "X")});
  EXPECT_EQ(cache.Probe(item), nullptr);
  DataPtr value =
      std::make_shared<MatrixObject>(MatrixBlock::Dense(4, 4, 1.0));
  cache.Put(item, value);
  DataPtr hit = cache.Probe(item);
  EXPECT_EQ(hit.get(), value.get());
  EXPECT_EQ(cache.Stats().full_hits, 1);
  EXPECT_EQ(cache.Stats().probes, 2);
}

TEST(LineageCacheTest, ScalarsNotCached) {
  LineageCache cache(1 << 20, ReusePolicy::kFull);
  auto item = LineageItem::Leaf("lit", "5");
  cache.Put(item, ScalarObject::MakeDouble(5.0));
  EXPECT_EQ(cache.Probe(item), nullptr);
}

TEST(LineageCacheTest, EvictsLruWhenOverLimit) {
  // Each 100x100 dense block is ~80KB; limit to ~2 blocks.
  LineageCache cache(200 * 1024, ReusePolicy::kFull);
  std::vector<LineageItemPtr> items;
  for (int i = 0; i < 4; ++i) {
    auto item = LineageItem::Leaf("in", "X" + std::to_string(i));
    auto node = LineageItem::Node("tsmm", {item});
    items.push_back(node);
    cache.Put(node, std::make_shared<MatrixObject>(
                        MatrixBlock::Dense(100, 100, 1.0)));
  }
  EXPECT_GT(cache.Stats().evictions, 0);
  // The oldest entry must be gone.
  EXPECT_EQ(cache.Probe(items[0]), nullptr);
  // The newest survives.
  EXPECT_NE(cache.Probe(items[3]), nullptr);
}

// End-to-end reuse: identical results with and without reuse, with cache
// hits recorded (the §4.3 workload in miniature).
TEST(LineageReuseTest, SweepResultsIdenticalWithReuse) {
  const char* script =
      "X = rand(rows=300, cols=20, seed=5)\n"
      "y = rand(rows=300, cols=1, seed=6)\n"
      "B = matrix(0, 20, 4)\n"
      "for (i in 1:4) {\n"
      "  reg = 0.001 * i\n"
      "  B[, i] = lmDS(X, y, 0, reg)\n"
      "}\n";
  DMLConfig off;
  SystemDSContext ctx_off(off);
  auto r1 = ctx_off.Execute(script, {}, {"B"});
  ASSERT_TRUE(r1.ok()) << r1.status();

  DMLConfig on;
  on.reuse_policy = ReusePolicy::kFull;
  SystemDSContext ctx_on(on);
  auto r2 = ctx_on.Execute(script, {}, {"B"});
  ASSERT_TRUE(r2.ok()) << r2.status();

  EXPECT_TRUE(r1->GetMatrix("B")->EqualsApprox(*r2->GetMatrix("B"), 1e-12));
  // tsmm(X) and tmm(X,y) reused for iterations 2..4.
  EXPECT_GE(ctx_on.Cache()->Stats().full_hits, 6);
}

TEST(LineageReuseTest, PartialReuseCompensationCorrect) {
  // steplm-style pattern: tsmm over a column-augmented matrix must be
  // served by the compensation plan and match the direct computation.
  const char* script =
      "X = rand(rows=200, cols=6, seed=7)\n"
      "Xg = X[, 1:3]\n"
      "A1 = t(Xg) %*% Xg\n"
      "Xi = cbind(Xg, X[, 5])\n"
      "A2 = t(Xi) %*% Xi\n";
  DMLConfig off;
  SystemDSContext ctx_off(off);
  auto r1 = ctx_off.Execute(script, {}, {"A2"});
  ASSERT_TRUE(r1.ok()) << r1.status();

  DMLConfig on;
  on.reuse_policy = ReusePolicy::kPartial;
  SystemDSContext ctx_on(on);
  auto r2 = ctx_on.Execute(script, {}, {"A2"});
  ASSERT_TRUE(r2.ok()) << r2.status();
  EXPECT_TRUE(r1->GetMatrix("A2")->EqualsApprox(*r2->GetMatrix("A2"), 1e-9));
  EXPECT_GE(ctx_on.Cache()->Stats().partial_hits, 1);
}

TEST(LineageReuseTest, DifferentSeedsNotConflated) {
  // Two rand calls with different seeds must not be served from each
  // other's cache entries.
  const char* script =
      "A = rand(rows=50, cols=5, seed=1)\n"
      "B = rand(rows=50, cols=5, seed=2)\n"
      "sa = sum(t(A) %*% A)\n"
      "sb = sum(t(B) %*% B)\n";
  DMLConfig on;
  on.reuse_policy = ReusePolicy::kFull;
  SystemDSContext ctx(on);
  auto r = ctx.Execute(script, {}, {"sa", "sb"});
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_NE(*r->GetDouble("sa"), *r->GetDouble("sb"));
}

TEST(LineageReuseTest, NonDeterministicRandNeverReused) {
  const char* script =
      "A = rand(rows=50, cols=5)\n"
      "B = rand(rows=50, cols=5)\n"
      "d = sum((A - B)^2)\n";
  DMLConfig on;
  on.reuse_policy = ReusePolicy::kFull;
  SystemDSContext ctx(on);
  auto r = ctx.Execute(script, {}, {"d"});
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_GT(*r->GetDouble("d"), 0.0);
}

TEST(LineageTracingTest, TraceAvailableWithoutReuse) {
  DMLConfig config;
  config.lineage_tracing = true;
  SystemDSContext ctx(config);
  auto r = ctx.Execute("X = rand(rows=5, cols=5, seed=1)\nY = t(X) %*% X\n",
                       {}, {"Y"});
  ASSERT_TRUE(r.ok());
  // No reuse configured: zero cache activity.
  EXPECT_EQ(ctx.Cache()->Stats().full_hits, 0);
}

}  // namespace
}  // namespace sysds
