#include <gtest/gtest.h>

#include "api/systemds_context.h"

namespace sysds {
namespace {

TEST(ExplainTest, ShowsBlocksAndInstructions) {
  SystemDSContext ctx;
  auto plan = ctx.Explain(
      "X = rand(rows=100, cols=10, seed=1)\n"
      "A = t(X) %*% X\n"
      "if (sum(A) > 0) {\n"
      "  s = 1\n"
      "} else {\n"
      "  s = 2\n"
      "}\n"
      "for (i in 1:3) {\n"
      "  s = s + i\n"
      "}\n");
  ASSERT_TRUE(plan.ok()) << plan.status();
  // Fused operator visible in the plan (the Example 1 story).
  EXPECT_NE(plan->find("tsmm"), std::string::npos);
  EXPECT_NE(plan->find("GENERIC block"), std::string::npos);
  EXPECT_NE(plan->find("IF block"), std::string::npos);
  EXPECT_NE(plan->find("FOR block"), std::string::npos);
  EXPECT_NE(plan->find("rand"), std::string::npos);
}

TEST(ExplainTest, ShowsFunctionsAndParfor) {
  SystemDSContext ctx;
  auto plan = ctx.Explain(
      "f = function(Matrix[Double] X) return (Double s) { s = sum(X) }\n"
      "R = matrix(0, 4, 1)\n"
      "parfor (i in 1:4) {\n"
      "  R[i, 1] = f(rand(rows=5, cols=5, seed=i))\n"
      "}\n");
  ASSERT_TRUE(plan.ok()) << plan.status();
  EXPECT_NE(plan->find("FUNCTION f"), std::string::npos);
  EXPECT_NE(plan->find("PARFOR block"), std::string::npos);
  EXPECT_NE(plan->find("fcall"), std::string::npos);
}

TEST(LineageApiTest, OutputsCarrySerializedTraces) {
  DMLConfig config;
  config.lineage_tracing = true;
  SystemDSContext ctx(config);
  auto r = ctx.Execute(
      "X = rand(rows=20, cols=5, seed=7)\n"
      "y = rand(rows=20, cols=1, seed=8)\n"
      "B = lmDS(X, y, 0, 0.001)\n",
      {}, {"B"});
  ASSERT_TRUE(r.ok()) << r.status();
  auto trace = r->GetLineage("B");
  ASSERT_TRUE(trace.ok()) << trace.status();
  // The trace is a queryable record of the logical operations including
  // datagen seeds (reproducibility).
  EXPECT_NE(trace->find("rand"), std::string::npos);
  EXPECT_NE(trace->find("tsmm"), std::string::npos);
  EXPECT_NE(trace->find("solve"), std::string::npos);
  EXPECT_NE(trace->find("7"), std::string::npos);  // the seed literal
}

TEST(LineageApiTest, NoTraceWithoutTracing) {
  SystemDSContext ctx;
  auto r = ctx.Execute("x = 1\n", {}, {"x"});
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->GetLineage("x").ok());
}

TEST(LineageApiTest, IdenticalScriptsYieldIdenticalTraces) {
  // Reproducibility: the serialized lineage of a deterministic script is
  // stable across executions (model versioning use case).
  DMLConfig config;
  config.lineage_tracing = true;
  const char* script =
      "X = rand(rows=10, cols=3, seed=1)\n"
      "B = t(X) %*% X + diag(matrix(0.1, 3, 1))\n";
  SystemDSContext c1(config);
  SystemDSContext c2(config);
  auto r1 = c1.Execute(script, {}, {"B"});
  auto r2 = c2.Execute(script, {}, {"B"});
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_EQ(*r1->GetLineage("B"), *r2->GetLineage("B"));
}

}  // namespace
}  // namespace sysds
