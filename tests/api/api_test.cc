#include "api/systemds_context.h"

#include <gtest/gtest.h>

#include "common/statistics.h"

namespace sysds {
namespace {

TEST(ApiTest, PreparedScriptRepeatedExecution) {
  SystemDSContext ctx;
  SymbolInfo mat;
  mat.dt = DataType::kMatrix;
  SymbolInfo sc;
  sc.dt = DataType::kScalar;
  auto prepared =
      ctx.Prepare("y = sum(X) * f\n", {{"X", mat}, {"f", sc}});
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  for (int i = 1; i <= 3; ++i) {
    (*prepared)->BindMatrix(
        "X", MatrixBlock::Dense(4, 4, static_cast<double>(i)));
    (*prepared)->BindDouble("f", 10.0);
    auto r = (*prepared)->Execute({"y"});
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_DOUBLE_EQ(*r->GetDouble("y"), 16.0 * i * 10.0);
  }
}

TEST(ApiTest, PreparedScriptBindsAllScalarTypes) {
  SystemDSContext ctx;
  SymbolInfo sc;
  sc.dt = DataType::kScalar;
  SymbolInfo si = sc;
  si.vt = ValueType::kInt64;
  SymbolInfo sb = sc;
  sb.vt = ValueType::kBoolean;
  SymbolInfo ss = sc;
  ss.vt = ValueType::kString;
  auto prepared = ctx.Prepare(
      "r = d + i\n"
      "msg = s + \"!\"\n"
      "flag = !b\n",
      {{"d", sc}, {"i", si}, {"b", sb}, {"s", ss}});
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  (*prepared)->BindDouble("d", 1.5);
  (*prepared)->BindInt("i", 2);
  (*prepared)->BindBool("b", false);
  (*prepared)->BindString("s", "hi");
  auto r = (*prepared)->Execute({"r", "msg", "flag"});
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_DOUBLE_EQ(*r->GetDouble("r"), 3.5);
  EXPECT_EQ(*r->GetString("msg"), "hi!");
  EXPECT_EQ(*r->GetString("flag"), "TRUE");
}

TEST(ApiTest, FrameInputOutput) {
  SystemDSContext ctx;
  FrameBlock f(2, {ValueType::kString, ValueType::kFP64}, {"k", "v"});
  f.SetString(0, 0, "a");
  f.SetString(1, 0, "b");
  f.SetDouble(0, 1, 1);
  f.SetDouble(1, 1, 2);
  auto r = ctx.Execute("n = nrow(F)\nG = F\n",
                       {{"F", SystemDSContext::Frame(f)}}, {"n", "G"});
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_DOUBLE_EQ(*r->GetDouble("n"), 2.0);
  EXPECT_EQ(r->GetFrame("G")->GetString(1, 0), "b");
}

TEST(ApiTest, MissingOutputReported) {
  SystemDSContext ctx;
  auto r = ctx.Execute("x = 1\n", {}, {"x"});
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->GetMatrix("x").ok());   // x is scalar, not matrix
  EXPECT_FALSE(r->GetDouble("nope").ok());
}

TEST(ApiTest, StatisticsCollection) {
  DMLConfig config;
  config.statistics = true;
  SystemDSContext ctx(config);
  Statistics::Get().Reset();
  auto r = ctx.Execute(
      "X = rand(rows=50, cols=10, seed=1)\nY = t(X) %*% X\ns = sum(Y)\n", {},
      {"s"});
  ASSERT_TRUE(r.ok());
  std::string report = Statistics::Get().Report();
  EXPECT_NE(report.find("tsmm"), std::string::npos);
  EXPECT_NE(report.find("rand"), std::string::npos);
}

TEST(ApiTest, ReusePolicySwitchBetweenExecutions) {
  DMLConfig config;
  SystemDSContext ctx(config);
  const char* script =
      "X = rand(rows=100, cols=10, seed=1)\n"
      "s = sum(t(X) %*% X)\n";
  auto r1 = ctx.Execute(script, {}, {"s"});
  ASSERT_TRUE(r1.ok());
  ctx.Config().reuse_policy = ReusePolicy::kFull;
  auto r2 = ctx.Execute(script, {}, {"s"});
  auto r3 = ctx.Execute(script, {}, {"s"});
  ASSERT_TRUE(r2.ok() && r3.ok());
  EXPECT_DOUBLE_EQ(*r1->GetDouble("s"), *r3->GetDouble("s"));
  // Third run reuses across executions (shared cache).
  EXPECT_GT(ctx.Cache()->Stats().full_hits, 0);
}

TEST(ApiTest, CompileErrorsSurfaceBeforeExecution) {
  SystemDSContext ctx;
  auto r = ctx.Execute("x = unknownFn(1)\n", {}, {});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kValidateError);
}

TEST(ApiTest, BuilderFixesConfigAtConstruction) {
  auto ctx = SystemDSContext::Builder()
                 .NumThreads(2)
                 .Reuse(ReusePolicy::kFull)
                 .LineageCacheLimit(1 << 20)
                 .Statistics(false)
                 .Build();
  EXPECT_EQ(ctx->config().num_threads, 2);
  EXPECT_EQ(ctx->config().reuse_policy, ReusePolicy::kFull);
  EXPECT_EQ(ctx->config().lineage_cache_limit, 1 << 20);
  EXPECT_EQ(ctx->Cache()->policy(), ReusePolicy::kFull);
}

TEST(ApiTest, TypedInputsOutputsExecute) {
  auto ctx = SystemDSContext::Builder().Build();
  MatrixBlock x = MatrixBlock::Dense(3, 2, 2.0);
  auto r = ctx->Execute("s = sum(X) * eps\nmsg = tag + \"!\"\n",
                        Inputs()
                            .Matrix("X", x)
                            .Scalar("eps", 0.5)
                            .String("tag", "done"),
                        Outputs("s", "msg"));
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_DOUBLE_EQ(*r->GetDouble("s"), 6.0);
  EXPECT_EQ(*r->GetString("msg"), "done!");
}

TEST(ApiTest, OutputsNoneForSideEffectScripts) {
  auto ctx = SystemDSContext::Builder().Build();
  auto r = ctx->Execute("print(\"hello\")\n", Inputs(), Outputs::None());
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_NE(r->Output().find("hello"), std::string::npos);
}

TEST(ApiTest, PreparedScriptStatelessExecute) {
  auto ctx = SystemDSContext::Builder().Build();
  SymbolInfo mat;
  mat.dt = DataType::kMatrix;
  mat.dim1 = 4;
  mat.dim2 = 4;
  auto prepared = ctx->Prepare("y = sum(X)\n", {{"X", mat}});
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  // Per-call bindings: no state on the PreparedScript, calls do not
  // interfere.
  for (int i = 1; i <= 3; ++i) {
    auto r = (*prepared)->Execute(
        Inputs().Matrix("X",
                        MatrixBlock::Dense(4, 4, static_cast<double>(i))),
        Outputs("y"));
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_DOUBLE_EQ(*r->GetDouble("y"), 16.0 * i);
  }
}

// Regression test: PreparedScript used to hold raw pointers into its
// SystemDSContext (config, lineage cache, buffer pool) that dangled once
// the context was destroyed. It now co-owns them.
TEST(ApiTest, PreparedScriptOutlivesContext) {
  std::unique_ptr<PreparedScript> prepared;
  {
    auto ctx = SystemDSContext::Builder().Reuse(ReusePolicy::kFull).Build();
    SymbolInfo mat;
    mat.dt = DataType::kMatrix;
    mat.dim1 = 8;
    mat.dim2 = 8;
    auto p = ctx->Prepare("y = sum(t(X) %*% X)\n", {{"X", mat}});
    ASSERT_TRUE(p.ok()) << p.status();
    prepared = std::move(*p);
  }  // context destroyed here
  auto r = prepared->Execute(
      Inputs().Matrix("X", MatrixBlock::Dense(8, 8, 1.0)), Outputs("y"));
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_DOUBLE_EQ(*r->GetDouble("y"), 8.0 * 8.0 * 8.0);
}

// Regression test: lineage used to trace bound inputs by variable name
// only, so with a reuse cache shared across executions, a second request
// binding a *different* matrix to "X" would be served the first request's
// cached intermediates. Inputs are now traced by object identity.
TEST(ApiTest, ReuseDoesNotAliasDistinctBoundInputs) {
  auto ctx = SystemDSContext::Builder().Reuse(ReusePolicy::kFull).Build();
  SymbolInfo mat;
  mat.dt = DataType::kMatrix;
  mat.dim1 = 4;
  mat.dim2 = 4;
  auto prepared = ctx->Prepare("y = sum(t(X) %*% X)\n", {{"X", mat}});
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  auto r1 = (*prepared)->Execute(
      Inputs().Matrix("X", MatrixBlock::Dense(4, 4, 1.0)), Outputs("y"));
  auto r2 = (*prepared)->Execute(
      Inputs().Matrix("X", MatrixBlock::Dense(4, 4, 2.0)), Outputs("y"));
  ASSERT_TRUE(r1.ok() && r2.ok());
  EXPECT_DOUBLE_EQ(*r1->GetDouble("y"), 64.0);    // 4x4 entries of 4
  EXPECT_DOUBLE_EQ(*r2->GetDouble("y"), 256.0);   // 4x4 entries of 16

  // Re-binding the same object does reuse cached intermediates.
  DataPtr shared = SystemDSContext::Matrix(MatrixBlock::Dense(4, 4, 3.0));
  auto r3 = (*prepared)->Execute(Inputs().Bind("X", shared), Outputs("y"));
  int64_t hits_before = ctx->Cache()->Stats().full_hits;
  auto r4 = (*prepared)->Execute(Inputs().Bind("X", shared), Outputs("y"));
  ASSERT_TRUE(r3.ok() && r4.ok());
  EXPECT_DOUBLE_EQ(*r3->GetDouble("y"), *r4->GetDouble("y"));
  EXPECT_GT(ctx->Cache()->Stats().full_hits, hits_before);
}

TEST(ApiTest, ExpiredDeadlineFailsWithTimeout) {
  auto ctx = SystemDSContext::Builder().Build();
  SymbolInfo mat;
  mat.dt = DataType::kMatrix;
  auto prepared = ctx->Prepare("y = sum(X)\n", {{"X", mat}});
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  ExecuteOptions opts;
  opts.deadline = std::chrono::steady_clock::now() -
                  std::chrono::milliseconds(1);  // already in the past
  auto r = (*prepared)->Execute(
      Inputs().Matrix("X", MatrixBlock::Dense(2, 2, 1.0)), Outputs("y"),
      opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTimeout);
  EXPECT_TRUE(IsRetryable(r.status()));
}

TEST(ApiTest, CancellationTokenStopsExecution) {
  auto ctx = SystemDSContext::Builder().Build();
  SymbolInfo mat;
  mat.dt = DataType::kMatrix;
  auto prepared = ctx->Prepare("y = sum(X)\n", {{"X", mat}});
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  ExecuteOptions opts;
  opts.cancel = std::make_shared<CancellationToken>();
  opts.cancel->Cancel();  // cancelled before submission
  auto r = (*prepared)->Execute(
      Inputs().Matrix("X", MatrixBlock::Dense(2, 2, 1.0)), Outputs("y"),
      opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCancelled);
}

TEST(ApiTest, DeadlineInterruptsLongLoop) {
  auto ctx = SystemDSContext::Builder().Build();
  // An effectively unbounded loop; only the instruction-level deadline
  // poll can stop it.
  SymbolInfo sc;
  sc.dt = DataType::kScalar;
  sc.vt = ValueType::kInt64;
  auto prepared = ctx->Prepare(
      "acc = 0\ni = 0\nwhile (i < n) { acc = acc + i\ni = i + 1 }\n",
      {{"n", sc}});
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  ExecuteOptions opts;
  opts.deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(50);
  auto r = (*prepared)->Execute(Inputs().Integer("n", 2000000000),
                                Outputs("acc"), opts);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTimeout);
}

}  // namespace
}  // namespace sysds
