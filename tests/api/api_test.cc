#include "api/systemds_context.h"

#include <gtest/gtest.h>

#include "common/statistics.h"

namespace sysds {
namespace {

TEST(ApiTest, PreparedScriptRepeatedExecution) {
  SystemDSContext ctx;
  SymbolInfo mat;
  mat.dt = DataType::kMatrix;
  SymbolInfo sc;
  sc.dt = DataType::kScalar;
  auto prepared =
      ctx.Prepare("y = sum(X) * f\n", {{"X", mat}, {"f", sc}});
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  for (int i = 1; i <= 3; ++i) {
    (*prepared)->BindMatrix(
        "X", MatrixBlock::Dense(4, 4, static_cast<double>(i)));
    (*prepared)->BindDouble("f", 10.0);
    auto r = (*prepared)->Execute({"y"});
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_DOUBLE_EQ(*r->GetDouble("y"), 16.0 * i * 10.0);
  }
}

TEST(ApiTest, PreparedScriptBindsAllScalarTypes) {
  SystemDSContext ctx;
  SymbolInfo sc;
  sc.dt = DataType::kScalar;
  SymbolInfo si = sc;
  si.vt = ValueType::kInt64;
  SymbolInfo sb = sc;
  sb.vt = ValueType::kBoolean;
  SymbolInfo ss = sc;
  ss.vt = ValueType::kString;
  auto prepared = ctx.Prepare(
      "r = d + i\n"
      "msg = s + \"!\"\n"
      "flag = !b\n",
      {{"d", sc}, {"i", si}, {"b", sb}, {"s", ss}});
  ASSERT_TRUE(prepared.ok()) << prepared.status();
  (*prepared)->BindDouble("d", 1.5);
  (*prepared)->BindInt("i", 2);
  (*prepared)->BindBool("b", false);
  (*prepared)->BindString("s", "hi");
  auto r = (*prepared)->Execute({"r", "msg", "flag"});
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_DOUBLE_EQ(*r->GetDouble("r"), 3.5);
  EXPECT_EQ(*r->GetString("msg"), "hi!");
  EXPECT_EQ(*r->GetString("flag"), "TRUE");
}

TEST(ApiTest, FrameInputOutput) {
  SystemDSContext ctx;
  FrameBlock f(2, {ValueType::kString, ValueType::kFP64}, {"k", "v"});
  f.SetString(0, 0, "a");
  f.SetString(1, 0, "b");
  f.SetDouble(0, 1, 1);
  f.SetDouble(1, 1, 2);
  auto r = ctx.Execute("n = nrow(F)\nG = F\n",
                       {{"F", SystemDSContext::Frame(f)}}, {"n", "G"});
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_DOUBLE_EQ(*r->GetDouble("n"), 2.0);
  EXPECT_EQ(r->GetFrame("G")->GetString(1, 0), "b");
}

TEST(ApiTest, MissingOutputReported) {
  SystemDSContext ctx;
  auto r = ctx.Execute("x = 1\n", {}, {"x"});
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->GetMatrix("x").ok());   // x is scalar, not matrix
  EXPECT_FALSE(r->GetDouble("nope").ok());
}

TEST(ApiTest, StatisticsCollection) {
  DMLConfig config;
  config.statistics = true;
  SystemDSContext ctx(config);
  Statistics::Get().Reset();
  auto r = ctx.Execute(
      "X = rand(rows=50, cols=10, seed=1)\nY = t(X) %*% X\ns = sum(Y)\n", {},
      {"s"});
  ASSERT_TRUE(r.ok());
  std::string report = Statistics::Get().Report();
  EXPECT_NE(report.find("tsmm"), std::string::npos);
  EXPECT_NE(report.find("rand"), std::string::npos);
}

TEST(ApiTest, ReusePolicySwitchBetweenExecutions) {
  DMLConfig config;
  SystemDSContext ctx(config);
  const char* script =
      "X = rand(rows=100, cols=10, seed=1)\n"
      "s = sum(t(X) %*% X)\n";
  auto r1 = ctx.Execute(script, {}, {"s"});
  ASSERT_TRUE(r1.ok());
  ctx.Config().reuse_policy = ReusePolicy::kFull;
  auto r2 = ctx.Execute(script, {}, {"s"});
  auto r3 = ctx.Execute(script, {}, {"s"});
  ASSERT_TRUE(r2.ok() && r3.ok());
  EXPECT_DOUBLE_EQ(*r1->GetDouble("s"), *r3->GetDouble("s"));
  // Third run reuses across executions (shared cache).
  EXPECT_GT(ctx.Cache()->Stats().full_hits, 0);
}

TEST(ApiTest, CompileErrorsSurfaceBeforeExecution) {
  SystemDSContext ctx;
  auto r = ctx.Execute("x = unknownFn(1)\n", {}, {});
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kValidateError);
}

}  // namespace
}  // namespace sysds
