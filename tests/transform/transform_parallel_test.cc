// Differential tests for the parallel transformencode pipeline: parallel
// Fit/Apply must be bit-identical to the serial reference at every thread
// count, and the direct-to-compressed sink must decompress to exactly the
// dense encode. Labeled `transform` (also selected by the tsan preset —
// Fit partial merges and the Apply row chunks are shared-state parallel).
#include "runtime/frame/transform.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <random>
#include <string>
#include <vector>

namespace sysds {
namespace {

// Deterministic mixed frame: a low-cardinality city column, a mid-
// cardinality device column, a numeric age column with NaN holes, and a
// numeric income column. Seed changes the row content, not the shape.
FrameBlock RandomFrame(int64_t rows, uint64_t seed) {
  FrameBlock f(rows,
               {ValueType::kString, ValueType::kString, ValueType::kFP64,
                ValueType::kFP64},
               {"city", "device", "age", "income"});
  std::mt19937_64 rng(seed);
  const char* cities[] = {"graz", "vienna", "linz", "salzburg", "innsbruck"};
  for (int64_t r = 0; r < rows; ++r) {
    f.SetString(r, 0, cities[rng() % 5]);
    f.SetString(r, 1, "dev" + std::to_string(rng() % 40));
    double age = rng() % 100 == 0 ? std::nan("") : double(20 + rng() % 60);
    f.SetDouble(r, 2, age);
    f.SetDouble(r, 3, double(rng() % 100000) / 100.0);
  }
  return f;
}

const char* kFullSpec =
    R"({"recode":["city","device"],"dummycode":["city"],
        "bin":[{"name":"income","method":"equi-height","numbins":8}],
        "impute":[{"name":"age","method":"mean"}]})";

void ExpectBitIdentical(const MatrixBlock& a, const MatrixBlock& b) {
  ASSERT_EQ(a.Rows(), b.Rows());
  ASSERT_EQ(a.Cols(), b.Cols());
  for (int64_t r = 0; r < a.Rows(); ++r) {
    for (int64_t c = 0; c < a.Cols(); ++c) {
      double x = a.Get(r, c), y = b.Get(r, c);
      // Bit-identity: exact equality, and NaN only matches NaN.
      ASSERT_TRUE(x == y || (std::isnan(x) && std::isnan(y)))
          << "mismatch at (" << r << "," << c << "): " << x << " vs " << y;
    }
  }
}

TEST(TransformParallelTest, FitIsThreadCountInvariant) {
  for (uint64_t seed : {7u, 1234u, 99991u}) {
    FrameBlock f = RandomFrame(10000, seed);
    auto spec = ParseTransformSpec(kFullSpec, f);
    ASSERT_TRUE(spec.ok());
    auto base = MultiColumnEncoder::Fit(f, *spec, 1);
    ASSERT_TRUE(base.ok());
    FrameBlock base_meta = base->MetaFrame();
    for (int threads : {2, 4, 8}) {
      auto enc = MultiColumnEncoder::Fit(f, *spec, threads);
      ASSERT_TRUE(enc.ok());
      FrameBlock meta = enc->MetaFrame();
      ASSERT_EQ(meta.Rows(), base_meta.Rows());
      ASSERT_EQ(meta.Cols(), base_meta.Cols());
      for (int64_t r = 0; r < meta.Rows(); ++r) {
        for (int64_t c = 0; c < meta.Cols(); ++c) {
          ASSERT_EQ(meta.GetString(r, c), base_meta.GetString(r, c))
              << "seed " << seed << " threads " << threads << " meta cell ("
              << r << "," << c << ")";
        }
      }
    }
  }
}

TEST(TransformParallelTest, ApplyMatchesSerialReferenceAtAllThreadCounts) {
  for (uint64_t seed : {3u, 4242u}) {
    FrameBlock f = RandomFrame(10000, seed);
    auto spec = ParseTransformSpec(kFullSpec, f);
    ASSERT_TRUE(spec.ok());
    auto enc = MultiColumnEncoder::Fit(f, *spec, 4);
    ASSERT_TRUE(enc.ok());
    auto ref = enc->ApplyReferenceSerial(f);
    ASSERT_TRUE(ref.ok());
    for (int threads : {1, 2, 4, 8}) {
      EncodeOptions opts;
      opts.num_threads = threads;
      auto out = enc->Apply(f, opts);
      ASSERT_TRUE(out.ok());
      ASSERT_FALSE(out->IsCompressed());
      ExpectBitIdentical(out->Dense(), *ref);
    }
  }
}

TEST(TransformParallelTest, CompressedSinkDecompressesToDenseEncode) {
  FrameBlock f = RandomFrame(5000, 11);
  auto spec = ParseTransformSpec(kFullSpec, f);
  ASSERT_TRUE(spec.ok());
  auto enc = MultiColumnEncoder::Fit(f, *spec, 4);
  ASSERT_TRUE(enc.ok());
  auto ref = enc->ApplyReferenceSerial(f);
  ASSERT_TRUE(ref.ok());
  for (int threads : {1, 4}) {
    EncodeOptions opts;
    opts.output = TransformOutputFormat::kCompressed;
    opts.num_threads = threads;
    auto out = enc->Apply(f, opts);
    ASSERT_TRUE(out.ok());
    ASSERT_TRUE(out->IsCompressed());
    EXPECT_EQ(out->Rows(), ref->Rows());
    EXPECT_EQ(out->Cols(), ref->Cols());
    MatrixBlock decompressed = out->Compressed().Decompress(threads);
    ExpectBitIdentical(decompressed, *ref);
    // ToMatrix is the representation-agnostic accessor.
    ExpectBitIdentical(out->ToMatrix(threads), *ref);
  }
}

TEST(TransformParallelTest, AutoSinkCompressesCategoricalHeavyWorkload) {
  // Dummy-coded low-cardinality columns are the best case for DDC: the
  // dictionary is tiny and codes are 1 byte. kAuto must pick compressed.
  FrameBlock f = RandomFrame(20000, 5);
  auto spec = ParseTransformSpec(
      R"({"recode":["city","device"],"dummycode":["city","device"]})", f);
  ASSERT_TRUE(spec.ok());
  auto enc = MultiColumnEncoder::Fit(f, *spec, 4);
  ASSERT_TRUE(enc.ok());
  EncodeOptions opts;
  opts.output = TransformOutputFormat::kAuto;
  opts.num_threads = 4;
  auto out = enc->Apply(f, opts);
  ASSERT_TRUE(out.ok());
  EXPECT_TRUE(out->IsCompressed());
  auto ref = enc->ApplyReferenceSerial(f);
  ASSERT_TRUE(ref.ok());
  ExpectBitIdentical(out->ToMatrix(4), *ref);
}

TEST(TransformParallelTest, AutoSinkKeepsPassThroughDense) {
  // All-numeric pass-through columns gain nothing from DDC; kAuto must
  // fall back to the dense sink rather than wrapping uncompressed groups.
  FrameBlock f(500, {ValueType::kFP64, ValueType::kFP64}, {"a", "b"});
  std::mt19937_64 rng(17);
  for (int64_t r = 0; r < 500; ++r) {
    f.SetDouble(r, 0, double(rng() % 1000000));
    f.SetDouble(r, 1, double(rng() % 1000000));
  }
  auto spec = ParseTransformSpec(R"({})", f);
  ASSERT_TRUE(spec.ok());
  auto enc = MultiColumnEncoder::Fit(f, *spec, 2);
  ASSERT_TRUE(enc.ok());
  EncodeOptions opts;
  opts.output = TransformOutputFormat::kAuto;
  opts.num_threads = 2;
  auto out = enc->Apply(f, opts);
  ASSERT_TRUE(out.ok());
  EXPECT_FALSE(out->IsCompressed());
}

TEST(TransformParallelTest, UnseenTokensRoundTripThroughBothSinks) {
  FrameBlock train = RandomFrame(2000, 21);
  auto spec = ParseTransformSpec(
      R"({"recode":["city","device"],"dummycode":["city"]})", train);
  ASSERT_TRUE(spec.ok());
  auto enc = MultiColumnEncoder::Fit(train, *spec, 4);
  ASSERT_TRUE(enc.ok());
  FrameBlock test = RandomFrame(1000, 22);
  test.SetString(0, 0, "unseen-city");
  test.SetString(1, 1, "unseen-device");
  auto ref = enc->ApplyReferenceSerial(test);
  ASSERT_TRUE(ref.ok());
  // Unseen tokens encode as 0 (missing). Output layout is the city dummy
  // block, then device/age/income one column each.
  EXPECT_DOUBLE_EQ(ref->Get(1, enc->NumOutputCols() - 3), 0.0);
  for (int64_t c = 0; c < enc->NumOutputCols() - 3; ++c) {
    EXPECT_DOUBLE_EQ(ref->Get(0, c), 0.0);  // unseen city: all-zero dummy row
  }
  for (TransformOutputFormat sink :
       {TransformOutputFormat::kDense, TransformOutputFormat::kCompressed}) {
    EncodeOptions opts;
    opts.output = sink;
    opts.num_threads = 4;
    auto out = enc->Apply(test, opts);
    ASSERT_TRUE(out.ok());
    ExpectBitIdentical(out->ToMatrix(4), *ref);
  }
}

TEST(TransformParallelTest, NanImputeIsThreadCountInvariant) {
  FrameBlock f(4097, {ValueType::kFP64}, {"x"});
  std::mt19937_64 rng(31);
  for (int64_t r = 0; r < 4097; ++r) {
    // ~1/3 missing, spread across chunk boundaries (4096-row fit chunks).
    f.SetDouble(r, 0, rng() % 3 == 0 ? std::nan("") : double(rng() % 500));
  }
  auto spec =
      ParseTransformSpec(R"({"impute":[{"name":"x","method":"mean"}]})", f);
  ASSERT_TRUE(spec.ok());
  auto base = MultiColumnEncoder::Fit(f, *spec, 1);
  ASSERT_TRUE(base.ok());
  auto ref = base->ApplyReferenceSerial(f);
  ASSERT_TRUE(ref.ok());
  for (int threads : {2, 8}) {
    auto enc = MultiColumnEncoder::Fit(f, *spec, threads);
    ASSERT_TRUE(enc.ok());
    EncodeOptions opts;
    opts.num_threads = threads;
    auto out = enc->Apply(f, opts);
    ASSERT_TRUE(out.ok());
    ExpectBitIdentical(out->Dense(), *ref);
    for (int64_t r = 0; r < f.Rows(); ++r) {
      ASSERT_FALSE(std::isnan(out->Dense().Get(r, 0)));
    }
  }
}

TEST(TransformParallelTest, ConstantColumnEquiHeightBinning) {
  // A constant column makes every equi-height boundary identical; all
  // values must land in a valid bin, identically at every thread count.
  FrameBlock f(3000, {ValueType::kFP64}, {"c"});
  for (int64_t r = 0; r < 3000; ++r) f.SetDouble(r, 0, 42.0);
  auto spec = ParseTransformSpec(
      R"({"bin":[{"name":"c","method":"equi-height","numbins":5}]})", f);
  ASSERT_TRUE(spec.ok());
  auto base = MultiColumnEncoder::Fit(f, *spec, 1);
  ASSERT_TRUE(base.ok());
  auto ref = base->ApplyReferenceSerial(f);
  ASSERT_TRUE(ref.ok());
  for (int threads : {1, 4}) {
    auto enc = MultiColumnEncoder::Fit(f, *spec, threads);
    ASSERT_TRUE(enc.ok());
    EncodeOptions opts;
    opts.num_threads = threads;
    auto out = enc->Apply(f, opts);
    ASSERT_TRUE(out.ok());
    ExpectBitIdentical(out->Dense(), *ref);
    for (int64_t r = 0; r < f.Rows(); ++r) {
      ASSERT_GE(out->Dense().Get(r, 0), 1.0);
      ASSERT_LE(out->Dense().Get(r, 0), 5.0);
    }
  }
}

TEST(TransformParallelTest, FromMetaReproducesParallelFitExactly) {
  FrameBlock f = RandomFrame(6000, 77);
  auto spec = ParseTransformSpec(kFullSpec, f);
  ASSERT_TRUE(spec.ok());
  auto enc = MultiColumnEncoder::Fit(f, *spec, 8);
  ASSERT_TRUE(enc.ok());
  auto rebuilt = MultiColumnEncoder::FromMeta(*spec, enc->MetaFrame(), f.Cols());
  ASSERT_TRUE(rebuilt.ok());
  EXPECT_EQ(rebuilt->NumOutputCols(), enc->NumOutputCols());
  EncodeOptions opts;
  opts.num_threads = 4;
  auto a = enc->Apply(f, opts);
  auto b = rebuilt->Apply(f, opts);
  ASSERT_TRUE(a.ok() && b.ok());
  ExpectBitIdentical(a->Dense(), b->Dense());
}

TEST(TransformParallelTest, DecodeInvertsParallelEncode) {
  FrameBlock f = RandomFrame(4000, 13);
  auto spec = ParseTransformSpec(
      R"({"recode":["city","device"],"dummycode":["city"]})", f);
  ASSERT_TRUE(spec.ok());
  auto enc = MultiColumnEncoder::Fit(f, *spec, 4);
  ASSERT_TRUE(enc.ok());
  EncodeOptions opts;
  opts.num_threads = 4;
  auto x = enc->Apply(f, opts);
  ASSERT_TRUE(x.ok());
  auto decoded = enc->Decode(x->Dense(), f, 4);
  ASSERT_TRUE(decoded.ok());
  for (int64_t r = 0; r < f.Rows(); ++r) {
    ASSERT_EQ(decoded->GetString(r, 0), f.GetString(r, 0));
    ASSERT_EQ(decoded->GetString(r, 1), f.GetString(r, 1));
  }
}

TEST(TransformParallelTest, DeprecatedDenseShimStillWorks) {
  FrameBlock f = RandomFrame(500, 1);
  auto spec = ParseTransformSpec(R"({"recode":["city"]})", f);
  ASSERT_TRUE(spec.ok());
  auto enc = MultiColumnEncoder::Fit(f, *spec);
  ASSERT_TRUE(enc.ok());
  auto old_api = enc->Apply(f);  // deprecated dense-only overload
  ASSERT_TRUE(old_api.ok());
  auto ref = enc->ApplyReferenceSerial(f);
  ASSERT_TRUE(ref.ok());
  ExpectBitIdentical(*old_api, *ref);
}

TEST(TransformParallelTest, EncodedOutputAccessorsAndShapes) {
  FrameBlock f = RandomFrame(100, 2);
  auto spec = ParseTransformSpec(R"({"recode":["city"],"dummycode":["city"]})",
                                 f);
  ASSERT_TRUE(spec.ok());
  auto enc = MultiColumnEncoder::Fit(f, *spec, 2);
  ASSERT_TRUE(enc.ok());
  EncodeOptions dense_opts;
  auto dense = enc->Apply(f, dense_opts);
  ASSERT_TRUE(dense.ok());
  EXPECT_FALSE(dense->IsCompressed());
  EXPECT_EQ(dense->Rows(), 100);
  EXPECT_EQ(dense->Cols(), enc->NumOutputCols());
  EncodeOptions comp_opts;
  comp_opts.output = TransformOutputFormat::kCompressed;
  auto comp = enc->Apply(f, comp_opts);
  ASSERT_TRUE(comp.ok());
  EXPECT_TRUE(comp->IsCompressed());
  EXPECT_EQ(comp->Rows(), dense->Rows());
  EXPECT_EQ(comp->Cols(), dense->Cols());
}

}  // namespace
}  // namespace sysds
