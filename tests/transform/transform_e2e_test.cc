// End-to-end transformencode through the DML runtime: the compressed and
// auto sinks configured via SystemDSContext::Builder must produce the same
// numeric results as the default dense path, and transformapply/decode must
// round-trip through the meta frame.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>

#include "api/systemds_context.h"

namespace sysds {
namespace {

class TransformE2ETest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = "transform_e2e_people.csv";
    std::ofstream out(path_);
    out << "city,age\n";
    const char* cities[] = {"graz", "vienna", "linz"};
    for (int i = 0; i < 300; ++i) {
      out << cities[i % 3] << "," << (20 + i % 50) << "\n";
    }
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string Script() const {
    return "F = read('" + path_ +
           "', data_type='frame', header=TRUE)\n"
           "[X, M] = transformencode(target=F, "
           "spec='{\"recode\":[\"city\"],\"dummycode\":[\"city\"]}')\n"
           "s = sum(X)\n"
           "c = sum(X^2)\n";
  }

  std::string path_;
};

TEST_F(TransformE2ETest, CompressedSinkMatchesDenseThroughDml) {
  auto dense_ctx = SystemDSContext::Builder().Build();
  auto r1 = dense_ctx->Execute(Script(), {}, {"s", "c"});
  ASSERT_TRUE(r1.ok()) << r1.status();
  for (auto output : {TransformOutputFormat::kCompressed,
                      TransformOutputFormat::kAuto}) {
    auto ctx = SystemDSContext::Builder()
                   .TransformOutput(output)
                   .TransformThreads(4)
                   .Build();
    auto r2 = ctx->Execute(Script(), {}, {"s", "c"});
    ASSERT_TRUE(r2.ok()) << r2.status();
    EXPECT_DOUBLE_EQ(*r2->GetDouble("s"), *r1->GetDouble("s"));
    EXPECT_DOUBLE_EQ(*r2->GetDouble("c"), *r1->GetDouble("c"));
  }
}

TEST_F(TransformE2ETest, CompressionEnabledUpgradesEncodeOutputs) {
  // With --compress the compiler stamps encode outputs kAuto; results must
  // stay identical to the dense baseline.
  auto dense_ctx = SystemDSContext::Builder().Build();
  auto r1 = dense_ctx->Execute(Script(), {}, {"s"});
  ASSERT_TRUE(r1.ok()) << r1.status();
  DMLConfig config;
  config.compression_enabled = true;
  auto ctx = SystemDSContext::Builder().WithConfig(config).Build();
  auto r2 = ctx->Execute(Script(), {}, {"s"});
  ASSERT_TRUE(r2.ok()) << r2.status();
  EXPECT_DOUBLE_EQ(*r2->GetDouble("s"), *r1->GetDouble("s"));
}

}  // namespace
}  // namespace sysds
