#include "serve/scoring_service.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

namespace sysds {
namespace serve {
namespace {

using std::chrono::milliseconds;
using std::chrono::steady_clock;

std::shared_ptr<const PreparedScript> PrepareModel(
    SystemDSContext& ctx, const std::string& script,
    const std::map<std::string, SymbolInfo>& infos) {
  auto p = ctx.Prepare(script, infos);
  EXPECT_TRUE(p.ok()) << p.status();
  return p.ok() ? std::shared_ptr<const PreparedScript>(std::move(*p))
                : nullptr;
}

SymbolInfo MatrixInfo(int64_t rows = -1, int64_t cols = -1) {
  SymbolInfo info;
  info.dt = DataType::kMatrix;
  info.dim1 = rows;
  info.dim2 = cols;
  return info;
}

SymbolInfo IntInfo() {
  SymbolInfo info;
  info.dt = DataType::kScalar;
  info.vt = ValueType::kInt64;
  return info;
}

/// Spins until `pred` holds or `timeout` elapses; returns pred().
template <typename Pred>
bool WaitUntil(Pred pred, milliseconds timeout = milliseconds(5000)) {
  auto end = steady_clock::now() + timeout;
  while (!pred()) {
    if (steady_clock::now() >= end) return false;
    std::this_thread::sleep_for(milliseconds(1));
  }
  return true;
}

// A request that runs until its token is cancelled (bounded by n). A while
// loop, not `for (i in 1:n)`: the for range is materialized up front where
// no interrupt poll runs, while the while predicate re-evaluates — and
// polls — every iteration.
constexpr const char* kSlowScript =
    "acc = 0\ni = 0\nwhile (i < n) { acc = acc + i\ni = i + 1 }\n";

TEST(ScoringServiceTest, RegisterAndScore) {
  auto ctx = SystemDSContext::Builder().Build();
  auto script = PrepareModel(*ctx, "y = sum(X) * 2\n", {{"X", MatrixInfo()}});
  ASSERT_NE(script, nullptr);

  ScoringService svc;
  ASSERT_TRUE(svc.RegisterModel("m", script, {"y"}).ok());
  auto r = svc.Score("m", Inputs().Matrix("X", MatrixBlock::Dense(3, 3, 1.0)));
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_DOUBLE_EQ(*r->GetDouble("y"), 18.0);
  EXPECT_EQ(svc.Stats().completed, 1);
}

TEST(ScoringServiceTest, UnknownModelAndDuplicateRegistration) {
  auto ctx = SystemDSContext::Builder().Build();
  auto script = PrepareModel(*ctx, "y = sum(X)\n", {{"X", MatrixInfo()}});
  ASSERT_NE(script, nullptr);

  ScoringService svc;
  auto r = svc.Score("ghost", Inputs());
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);

  ASSERT_TRUE(svc.RegisterModel("m", script, {"y"}).ok());
  EXPECT_EQ(svc.RegisterModel("m", script, {"y"}).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(svc.RegisterModel("n", nullptr, {"y"}).code(),
            StatusCode::kInvalidArgument);
}

TEST(ScoringServiceTest, QueueBackpressureRejectsWithRetryableOom) {
  auto ctx = SystemDSContext::Builder().Build();
  auto slow = PrepareModel(*ctx, kSlowScript, {{"n", IntInfo()}});
  ASSERT_NE(slow, nullptr);

  ServiceOptions opts;
  opts.num_workers = 1;
  opts.max_queue_depth = 1;
  ScoringService svc(opts);
  ASSERT_TRUE(svc.RegisterModel("slow", slow, {"acc"}).ok());

  // Occupy the single worker with a request that runs until cancelled.
  RequestOptions blocker_opts;
  blocker_opts.cancel = std::make_shared<CancellationToken>();
  auto blocker = svc.Submit("slow", Inputs().Integer("n", 2000000000),
                            blocker_opts);
  ASSERT_TRUE(WaitUntil([&] { return svc.QueueDepth() == 0; }));

  // One request fits in the queue; the next one must be rejected.
  auto queued = svc.Submit("slow", Inputs().Integer("n", 1));
  auto rejected = svc.Submit("slow", Inputs().Integer("n", 1));
  auto r = rejected.get();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kOom);
  EXPECT_TRUE(IsRetryable(r.status()));
  EXPECT_EQ(svc.Stats().rejected, 1);

  blocker_opts.cancel->Cancel();
  EXPECT_EQ(blocker.get().status().code(), StatusCode::kCancelled);
  EXPECT_TRUE(queued.get().ok());
}

TEST(ScoringServiceTest, DeadlineExpiresWhileQueued) {
  auto ctx = SystemDSContext::Builder().Build();
  auto slow = PrepareModel(*ctx, kSlowScript, {{"n", IntInfo()}});
  ASSERT_NE(slow, nullptr);

  ServiceOptions opts;
  opts.num_workers = 1;
  ScoringService svc(opts);
  ASSERT_TRUE(svc.RegisterModel("slow", slow, {"acc"}).ok());

  RequestOptions blocker_opts;
  blocker_opts.cancel = std::make_shared<CancellationToken>();
  auto blocker = svc.Submit("slow", Inputs().Integer("n", 2000000000),
                            blocker_opts);
  ASSERT_TRUE(WaitUntil([&] { return svc.QueueDepth() == 0; }));

  // This request's deadline expires while it waits behind the blocker.
  RequestOptions doomed_opts;
  doomed_opts.deadline = steady_clock::now() + milliseconds(30);
  auto doomed = svc.Submit("slow", Inputs().Integer("n", 1), doomed_opts);
  std::this_thread::sleep_for(milliseconds(60));
  blocker_opts.cancel->Cancel();

  auto r = doomed.get();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTimeout);
  EXPECT_EQ(svc.Stats().deadline_misses, 1);
  blocker.get();
}

TEST(ScoringServiceTest, DeadlineInterruptsRunningRequest) {
  auto ctx = SystemDSContext::Builder().Build();
  auto slow = PrepareModel(*ctx, kSlowScript, {{"n", IntInfo()}});
  ASSERT_NE(slow, nullptr);

  ServiceOptions opts;
  opts.num_workers = 1;
  opts.default_deadline = milliseconds(50);
  ScoringService svc(opts);
  ASSERT_TRUE(svc.RegisterModel("slow", slow, {"acc"}).ok());

  auto r = svc.Score("slow", Inputs().Integer("n", 2000000000));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTimeout);
  EXPECT_EQ(svc.Stats().deadline_misses, 1);
}

TEST(ScoringServiceTest, ShutdownDrainsAdmittedRequests) {
  auto ctx = SystemDSContext::Builder().Build();
  auto script = PrepareModel(*ctx, "y = sum(X)\n", {{"X", MatrixInfo()}});
  ASSERT_NE(script, nullptr);

  ServiceOptions opts;
  opts.num_workers = 2;
  opts.max_queue_depth = 256;
  ScoringService svc(opts);
  ASSERT_TRUE(svc.RegisterModel("m", script, {"y"}).ok());

  std::vector<std::future<StatusOr<ScriptResult>>> futures;
  for (int i = 0; i < 32; ++i) {
    futures.push_back(svc.Submit(
        "m", Inputs().Matrix("X", MatrixBlock::Dense(2, 2, 1.0 + i))));
  }
  svc.Shutdown();  // must drain, not drop

  for (int i = 0; i < 32; ++i) {
    auto r = futures[static_cast<size_t>(i)].get();
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_DOUBLE_EQ(*r->GetDouble("y"), 4.0 * (1.0 + i));
  }
  // Admission is closed after shutdown.
  auto late = svc.Score("m", Inputs().Matrix("X", MatrixBlock::Dense(2, 2)));
  ASSERT_FALSE(late.ok());
  EXPECT_EQ(late.status().code(), StatusCode::kCancelled);
}

TEST(ScoringServiceTest, MicroBatchingStacksSingleRowRequests) {
  auto ctx = SystemDSContext::Builder().Build();
  auto script = PrepareModel(*ctx, "yhat = X %*% B\n",
                             {{"X", MatrixInfo()}, {"B", MatrixInfo()}});
  ASSERT_NE(script, nullptr);

  ServiceOptions sopts;
  sopts.num_workers = 1;
  sopts.max_queue_depth = 64;
  ScoringService svc(sopts);
  ModelOptions mopts;
  mopts.micro_batching = true;
  mopts.batch_input = "X";
  mopts.max_batch_size = 8;
  ASSERT_TRUE(svc.RegisterModel("lm", script, {"yhat"}, mopts).ok());

  // Shared model weights: same DataPtr across requests (batching
  // requirement).
  MatrixBlock b = MatrixBlock::Dense(4, 1);
  for (int64_t i = 0; i < 4; ++i) b.DenseRow(i)[0] = 1.0 + i;
  b.MarkNnzDirty();
  DataPtr weights = SystemDSContext::Matrix(b);

  // Occupy the worker so the scoring requests pile up and batch.
  auto slow = PrepareModel(*ctx, kSlowScript, {{"n", IntInfo()}});
  ASSERT_NE(slow, nullptr);
  ASSERT_TRUE(svc.RegisterModel("slow", slow, {"acc"}).ok());
  RequestOptions blocker_opts;
  blocker_opts.cancel = std::make_shared<CancellationToken>();
  auto blocker = svc.Submit("slow", Inputs().Integer("n", 2000000000),
                            blocker_opts);
  ASSERT_TRUE(WaitUntil([&] { return svc.QueueDepth() == 0; }));

  std::vector<std::future<StatusOr<ScriptResult>>> futures;
  for (int i = 0; i < 6; ++i) {
    MatrixBlock row = MatrixBlock::Dense(1, 4);
    for (int64_t j = 0; j < 4; ++j) {
      row.DenseRow(0)[j] = static_cast<double>(i + 1);
    }
    row.MarkNnzDirty();
    futures.push_back(svc.Submit(
        "lm", Inputs().Matrix("X", row).Bind("B", weights)));
  }
  ASSERT_TRUE(WaitUntil([&] { return svc.QueueDepth() == 6; }));
  blocker_opts.cancel->Cancel();
  blocker.get();

  // yhat_i = (i+1) * (1+2+3+4) = (i+1) * 10, one row per request.
  for (int i = 0; i < 6; ++i) {
    auto r = futures[static_cast<size_t>(i)].get();
    ASSERT_TRUE(r.ok()) << r.status();
    MatrixBlock yhat = *r->GetMatrix("yhat");
    ASSERT_EQ(yhat.Rows(), 1);
    ASSERT_EQ(yhat.Cols(), 1);
    EXPECT_DOUBLE_EQ(yhat.Get(0, 0), 10.0 * (i + 1));
  }
  ServiceStats stats = svc.Stats();
  EXPECT_GE(stats.batches, 1);
  EXPECT_GE(stats.batched_requests, 2);
}

TEST(ScoringServiceTest, BatchWithScalarOutputFallsBackToIndividual) {
  auto ctx = SystemDSContext::Builder().Build();
  auto script = PrepareModel(*ctx, "s = sum(X %*% B)\n",
                             {{"X", MatrixInfo()}, {"B", MatrixInfo()}});
  ASSERT_NE(script, nullptr);

  ServiceOptions sopts;
  sopts.num_workers = 1;
  ScoringService svc(sopts);
  ModelOptions mopts;
  mopts.micro_batching = true;
  mopts.batch_input = "X";
  mopts.max_batch_size = 4;
  ASSERT_TRUE(svc.RegisterModel("m", script, {"s"}, mopts).ok());

  DataPtr weights =
      SystemDSContext::Matrix(MatrixBlock::Dense(3, 1, 2.0));
  // The scalar output cannot be sliced per row; every request must still
  // get its own (correct) answer through the fallback path.
  std::vector<std::future<StatusOr<ScriptResult>>> futures;
  for (int i = 0; i < 4; ++i) {
    futures.push_back(svc.Submit(
        "m", Inputs()
                 .Matrix("X", MatrixBlock::Dense(1, 3, 1.0 + i))
                 .Bind("B", weights)));
  }
  for (int i = 0; i < 4; ++i) {
    auto r = futures[static_cast<size_t>(i)].get();
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_DOUBLE_EQ(*r->GetDouble("s"), (1.0 + i) * 3.0 * 2.0);
  }
}

// The ISSUE's stress test: 8 workers x 200 executions over a shared
// PreparedScript with lineage reuse; results must match serial execution
// and the cache hit count must be consistent with the request count.
TEST(ScoringServiceTest, StressConcurrentExecutionMatchesSerial) {
  constexpr int kWorkers = 8;
  constexpr int kRequestsPerWorker = 200;
  constexpr int kDistinctInputs = 4;
  constexpr int kTotal = kWorkers * kRequestsPerWorker;

  auto ctx = SystemDSContext::Builder()
                 .Reuse(ReusePolicy::kFull)
                 .NumThreads(1)
                 .Build();
  auto script = PrepareModel(*ctx, "y = sum(t(X) %*% X)\n",
                             {{"X", MatrixInfo(16, 16)}});
  ASSERT_NE(script, nullptr);

  // Shared input objects: lineage traces bound matrices by object
  // identity, so reuse across requests requires sharing the DataPtr (the
  // serving pattern for model weights and hot feature blocks).
  std::vector<DataPtr> inputs;
  std::vector<double> expected;
  for (int i = 0; i < kDistinctInputs; ++i) {
    inputs.push_back(
        SystemDSContext::Matrix(MatrixBlock::Dense(16, 16, 1.0 + i)));
    // Serial reference execution.
    auto r = script->Execute(Inputs().Bind("X", inputs.back()),
                             Outputs("y"));
    ASSERT_TRUE(r.ok()) << r.status();
    expected.push_back(*r->GetDouble("y"));
  }
  LineageCacheStats warm = ctx->Cache()->Stats();
  ASSERT_GT(warm.puts, 0);  // the serial pass populated the cache

  ServiceOptions opts;
  opts.num_workers = kWorkers;
  opts.max_queue_depth = kTotal + 16;
  ScoringService svc(opts);
  ASSERT_TRUE(svc.RegisterModel("m", script, {"y"}).ok());

  // Concurrent submitters exercise Submit from many threads as well.
  std::vector<std::future<StatusOr<ScriptResult>>> futures(
      static_cast<size_t>(kTotal));
  std::vector<std::thread> submitters;
  for (int t = 0; t < kWorkers; ++t) {
    submitters.emplace_back([&, t] {
      for (int i = 0; i < kRequestsPerWorker; ++i) {
        int idx = t * kRequestsPerWorker + i;
        futures[static_cast<size_t>(idx)] = svc.Submit(
            "m", Inputs().Bind("X", inputs[static_cast<size_t>(
                                       idx % kDistinctInputs)]));
      }
    });
  }
  for (std::thread& t : submitters) t.join();

  for (int i = 0; i < kTotal; ++i) {
    auto r = futures[static_cast<size_t>(i)].get();
    ASSERT_TRUE(r.ok()) << r.status();
    EXPECT_DOUBLE_EQ(*r->GetDouble("y"),
                     expected[static_cast<size_t>(i % kDistinctInputs)])
        << "request " << i;
  }
  EXPECT_EQ(svc.Stats().completed, kTotal);
  EXPECT_EQ(svc.Stats().failed, 0);

  // The cache was warmed serially, so every concurrent request hits at
  // least once (the tsmm intermediate), and counters stay consistent.
  LineageCacheStats stats = ctx->Cache()->Stats();
  EXPECT_GE(stats.full_hits - warm.full_hits, kTotal);
  EXPECT_GE(stats.probes, stats.full_hits);
}

}  // namespace
}  // namespace serve
}  // namespace sysds
