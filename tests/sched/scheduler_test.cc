// Scheduler regression suite (ctest -L sched). Runs with SYSDS_NUM_THREADS=8
// (set in main below, before the global pool is created) so the
// work-stealing pool has 7 workers even on small CI machines: nested
// parallelism, stealing, and helping joins are all exercised for real.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <cstring>
#include <future>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

#include "common/thread_pool.h"
#include "common/util.h"
#include "obs/metrics.h"
#include "runtime/compress/compressed_block.h"
#include "runtime/matrix/lib_agg.h"
#include "runtime/matrix/lib_datagen.h"
#include "runtime/matrix/lib_fused.h"
#include "runtime/matrix/lib_matmult.h"

namespace sysds {
namespace {

MatrixBlock Random(int64_t rows, int64_t cols, double sparsity,
                   uint64_t seed) {
  auto m = RandMatrix(rows, cols, -1.0, 1.0, sparsity, seed,
                      RandPdf::kUniform, 1);
  return *m;
}

// Bitwise equality: the scheduler must never change results, not even in
// the last ulp, so approximate comparison would hide exactly the bugs this
// suite exists to catch (merge-order or chunking dependent on scheduling).
::testing::AssertionResult BitIdentical(const MatrixBlock& a,
                                        const MatrixBlock& b) {
  if (a.Rows() != b.Rows() || a.Cols() != b.Cols()) {
    return ::testing::AssertionFailure() << "shape mismatch";
  }
  for (int64_t i = 0; i < a.Rows(); ++i) {
    for (int64_t j = 0; j < a.Cols(); ++j) {
      double va = a.Get(i, j), vb = b.Get(i, j);
      uint64_t x, y;
      std::memcpy(&x, &va, sizeof(x));
      std::memcpy(&y, &vb, sizeof(y));
      if (x != y) {
        return ::testing::AssertionFailure()
               << "bit mismatch at (" << i << "," << j << "): " << va
               << " vs " << vb;
      }
    }
  }
  return ::testing::AssertionSuccess();
}

uint64_t Bits(double v) {
  uint64_t x;
  std::memcpy(&x, &v, sizeof(x));
  return x;
}

const int kThreadCounts[] = {1, 2, 4, 8};

// A parfor body that runs a matrix kernel must fan out across workers
// instead of collapsing to serial execution (the pre-helping-join pool ran
// nested ParallelFor inline on the caller).
TEST(SchedulerTest, NestedParallelForUsesMultipleThreads) {
  ASSERT_GE(ThreadPool::Global().num_threads(), 1u);
  std::mutex mu;
  std::set<std::thread::id> inner_threads;
  ThreadPool::Global().ParallelFor(0, 4, 4, [&](int64_t ob, int64_t oe) {
    for (int64_t o = ob; o < oe; ++o) {
      ThreadPool::Global().ParallelFor(0, 16, 16, [&](int64_t b, int64_t e) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
        std::lock_guard<std::mutex> lock(mu);
        (void)b;
        (void)e;
        inner_threads.insert(std::this_thread::get_id());
      });
    }
  });
  EXPECT_GE(inner_threads.size(), 2u)
      << "nested ParallelFor chunks all ran on one thread";
}

// Deep nesting with every worker occupied by a blocked join must complete:
// joins help (execute pending chunks) instead of sleeping while holding a
// worker slot. A hang here fails via the 60s watchdog instead of wedging
// the whole suite.
TEST(SchedulerTest, NestedJoinsCompleteUnderSaturation) {
  auto workload = [] {
    std::atomic<int64_t> total{0};
    ThreadPool::Global().ParallelFor(0, 16, 16, [&](int64_t ob, int64_t oe) {
      for (int64_t o = ob; o < oe; ++o) {
        ThreadPool::Global().ParallelFor(
            0, 16, 16, [&](int64_t b, int64_t e) {
              for (int64_t i = b; i < e; ++i) {
                ThreadPool::Global().ParallelFor(
                    0, 4, 4,
                    [&](int64_t ib, int64_t ie) { total += ie - ib; });
              }
            });
      }
    });
    return total.load();
  };
  std::packaged_task<int64_t()> task(workload);
  std::future<int64_t> done = task.get_future();
  std::thread runner(std::move(task));
  ASSERT_EQ(done.wait_for(std::chrono::seconds(60)),
            std::future_status::ready)
      << "nested joins deadlocked under saturation";
  EXPECT_EQ(done.get(), 16 * 16 * 4);
  runner.join();
}

TEST(SchedulerTest, MatMultBitIdenticalAcrossThreadCounts) {
  MatrixBlock ad = Random(130, 70, 1.0, 1);
  MatrixBlock bd = Random(70, 90, 1.0, 2);
  MatrixBlock as = Random(130, 70, 0.05, 3);
  as.ToSparse();
  MatrixBlock bs = Random(70, 90, 0.08, 4);
  bs.ToSparse();
  for (GemmKernel kernel : {GemmKernel::kNative, GemmKernel::kPortable}) {
    SetGemmKernel(kernel);
    auto dense_ref = MatMult(ad, bd, 1);
    auto sd_ref = MatMult(as, bd, 1);
    auto ss_ref = MatMult(as, bs, 1);
    ASSERT_TRUE(dense_ref.ok() && sd_ref.ok() && ss_ref.ok());
    for (int t : kThreadCounts) {
      auto dense = MatMult(ad, bd, t);
      auto sd = MatMult(as, bd, t);
      auto ss = MatMult(as, bs, t);
      ASSERT_TRUE(dense.ok() && sd.ok() && ss.ok());
      EXPECT_TRUE(BitIdentical(*dense_ref, *dense)) << "dense t=" << t;
      EXPECT_TRUE(BitIdentical(*sd_ref, *sd)) << "sparse-dense t=" << t;
      EXPECT_TRUE(BitIdentical(*ss_ref, *ss)) << "sparse-sparse t=" << t;
    }
  }
  SetGemmKernel(GemmKernel::kNative);
}

TEST(SchedulerTest, TsmmAndTlmmBitIdenticalAcrossThreadCounts) {
  MatrixBlock xd = Random(200, 40, 1.0, 5);
  MatrixBlock xs = Random(200, 40, 0.1, 6);
  xs.ToSparse();
  MatrixBlock bd = Random(200, 30, 1.0, 7);
  for (GemmKernel kernel : {GemmKernel::kNative, GemmKernel::kPortable}) {
    SetGemmKernel(kernel);
    for (const MatrixBlock* x : {&xd, &xs}) {
      auto left_ref = TransposeSelfMatMult(*x, true, 1);
      auto right_ref = TransposeSelfMatMult(*x, false, 1);
      auto tlmm_ref = TransposeLeftMatMult(*x, bd, 1);
      ASSERT_TRUE(left_ref.ok() && right_ref.ok() && tlmm_ref.ok());
      for (int t : kThreadCounts) {
        auto left = TransposeSelfMatMult(*x, true, t);
        auto right = TransposeSelfMatMult(*x, false, t);
        auto tlmm = TransposeLeftMatMult(*x, bd, t);
        ASSERT_TRUE(left.ok() && right.ok() && tlmm.ok());
        EXPECT_TRUE(BitIdentical(*left_ref, *left)) << "tsmm-left t=" << t;
        EXPECT_TRUE(BitIdentical(*right_ref, *right)) << "tsmm-right t=" << t;
        EXPECT_TRUE(BitIdentical(*tlmm_ref, *tlmm)) << "tlmm t=" << t;
      }
    }
  }
  SetGemmKernel(GemmKernel::kNative);
}

TEST(SchedulerTest, AggregatesBitIdenticalAcrossThreadCounts) {
  MatrixBlock a = Random(500, 20, 1.0, 8);
  MatrixBlock s = Random(500, 20, 0.1, 9);
  s.ToSparse();
  for (const MatrixBlock* m : {&a, &s}) {
    for (AggOpCode op : {AggOpCode::kSum, AggOpCode::kMean, AggOpCode::kVar,
                         AggOpCode::kMin, AggOpCode::kMax}) {
      auto full_ref = AggregateAll(op, *m, 1);
      auto row_ref = AggregateRowCol(op, AggDirection::kRow, *m, 1);
      auto col_ref = AggregateRowCol(op, AggDirection::kCol, *m, 1);
      ASSERT_TRUE(full_ref.ok() && row_ref.ok() && col_ref.ok());
      for (int t : kThreadCounts) {
        auto full = AggregateAll(op, *m, t);
        auto row = AggregateRowCol(op, AggDirection::kRow, *m, t);
        auto col = AggregateRowCol(op, AggDirection::kCol, *m, t);
        ASSERT_TRUE(full.ok() && row.ok() && col.ok());
        EXPECT_EQ(Bits(*full_ref), Bits(*full)) << "full t=" << t;
        EXPECT_TRUE(BitIdentical(*row_ref, *row)) << "row t=" << t;
        EXPECT_TRUE(BitIdentical(*col_ref, *col)) << "col t=" << t;
      }
    }
  }
}

TEST(SchedulerTest, FusedPipelineBitIdenticalAcrossThreadCounts) {
  // (X - s0) / s1 then ^ s1, row-summed: the doc-grammar example pipeline.
  auto plan =
      FusedPlan::Parse("in1;sc2;kF;b-:i0,s0;b/:t0,s1;b^:t1,s1;out:t2;agg:uarsum");
  ASSERT_TRUE(plan.ok()) << plan.status();
  MatrixBlock x = Random(400, 16, 1.0, 10);
  std::vector<double> scalars = {0.5, 2.0};
  auto ref = ExecuteFusedPlan(*plan, {&x}, scalars, 1);
  ASSERT_TRUE(ref.ok()) << ref.status();
  for (int t : kThreadCounts) {
    auto r = ExecuteFusedPlan(*plan, {&x}, scalars, t);
    ASSERT_TRUE(r.ok());
    ASSERT_EQ(ref->is_scalar, r->is_scalar);
    EXPECT_TRUE(BitIdentical(ref->matrix, r->matrix)) << "t=" << t;
  }
}

TEST(SchedulerTest, CompressedOpsBitIdenticalAcrossThreadCounts) {
  // Few distinct values per column so the planner picks dictionary groups.
  MatrixBlock m = MatrixBlock::Dense(600, 8);
  for (int64_t i = 0; i < m.Rows(); ++i) {
    for (int64_t j = 0; j < m.Cols(); ++j) {
      m.Set(i, j, static_cast<double>((i * 7 + j * 13) % 5));
    }
  }
  m.MarkNnzDirty();
  CompressedMatrixBlock c = CompressedMatrixBlock::Compress(m);
  MatrixBlock b = Random(8, 6, 1.0, 11);
  MatrixBlock dec_ref = c.Decompress(1);
  auto rmm_ref = c.RightMatMult(b, 1);
  ASSERT_TRUE(rmm_ref.ok());
  for (int t : kThreadCounts) {
    MatrixBlock dec = c.Decompress(t);
    auto rmm = c.RightMatMult(b, t);
    ASSERT_TRUE(rmm.ok());
    EXPECT_TRUE(BitIdentical(dec_ref, dec)) << "decompress t=" << t;
    EXPECT_TRUE(BitIdentical(*rmm_ref, *rmm)) << "rightmm t=" << t;
  }
}

// Same computation repeated under live stealing: the chunk->thread
// assignment varies run to run, the bits must not.
TEST(SchedulerTest, RepeatedRunsBitIdenticalUnderStealing) {
  MatrixBlock a = Random(130, 70, 0.1, 12);
  a.ToSparse();
  MatrixBlock b = Random(70, 90, 1.0, 13);
  auto first_mm = MatMult(a, b, 8);
  auto first_tsmm = TransposeSelfMatMult(b, true, 8);
  ASSERT_TRUE(first_mm.ok() && first_tsmm.ok());
  for (int rep = 0; rep < 10; ++rep) {
    auto mm = MatMult(a, b, 8);
    auto tsmm = TransposeSelfMatMult(b, true, 8);
    ASSERT_TRUE(mm.ok() && tsmm.ok());
    EXPECT_TRUE(BitIdentical(*first_mm, *mm)) << "rep=" << rep;
    EXPECT_TRUE(BitIdentical(*first_tsmm, *tsmm)) << "rep=" << rep;
  }
}

// A pathologically skewed sparse matrix (one dense row, the rest nearly
// empty) goes down the cost-weighted chunking path; results must match the
// serial run exactly.
TEST(SchedulerTest, SkewedSparseMatMultBitIdentical) {
  MatrixBlock a(400, 300, /*sparse=*/true);
  Xoshiro rng(14);
  for (int64_t j = 0; j < 300; ++j) {
    a.SparseData().Row(0).Append(j, rng.NextDouble(-1.0, 1.0));
  }
  for (int64_t i = 1; i < 400; ++i) {
    if (i % 7 == 0) {
      a.SparseData().Row(i).Append(i % 300, rng.NextDouble(-1.0, 1.0));
    }
  }
  a.MarkNnzDirty();
  MatrixBlock b = Random(300, 50, 1.0, 15);
  MatrixBlock b_tl = Random(400, 50, 1.0, 16);  // t(A)%*%B needs 400 rows
  auto ref = MatMult(a, b, 1);
  auto skew_tlmm_ref = TransposeLeftMatMult(a, b_tl, 1);
  ASSERT_TRUE(ref.ok() && skew_tlmm_ref.ok())
      << ref.status() << " " << skew_tlmm_ref.status();
  for (int t : kThreadCounts) {
    auto r = MatMult(a, b, t);
    auto tl = TransposeLeftMatMult(a, b_tl, t);
    ASSERT_TRUE(r.ok() && tl.ok());
    EXPECT_TRUE(BitIdentical(*ref, *r)) << "t=" << t;
    EXPECT_TRUE(BitIdentical(*skew_tlmm_ref, *tl)) << "t=" << t;
  }
}

TEST(SchedulerTest, SchedulerMetricsAdvance) {
  auto& reg = obs::MetricsRegistry::Get();
  int64_t chunks_before = reg.GetCounter("scheduler.chunks")->Value();
  int64_t tasks_before = reg.GetCounter("scheduler.tasks")->Value();
  obs::Histogram* imb = reg.GetHistogram("scheduler.imbalance.sched_test");
  int64_t imb_before = imb->Count();

  std::atomic<int64_t> sum{0};
  ThreadPool::Global().ParallelFor(
      0, 1024, 32,
      [&](int64_t b, int64_t e) {
        std::this_thread::sleep_for(std::chrono::microseconds(200));
        sum += e - b;
      },
      "sched_test");
  EXPECT_EQ(sum.load(), 1024);
  EXPECT_GT(reg.GetCounter("scheduler.chunks")->Value(), chunks_before);
  EXPECT_GE(reg.GetCounter("scheduler.tasks")->Value(), tasks_before);
  EXPECT_GT(imb->Count(), imb_before);
}

}  // namespace
}  // namespace sysds

// Custom main: pin the pool size before anything touches
// ThreadPool::Global() so the suite exercises real multi-worker scheduling
// regardless of the machine it runs on. setenv(..., 0) keeps an explicit
// caller-provided SYSDS_NUM_THREADS.
int main(int argc, char** argv) {
  setenv("SYSDS_NUM_THREADS", "8", /*overwrite=*/0);
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
