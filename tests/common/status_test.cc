#include "common/status.h"

#include <gtest/gtest.h>

namespace sysds {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = ParseError("bad token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "bad token");
  EXPECT_EQ(s.ToString(), "ParseError: bad token");
}

TEST(StatusTest, FactoryFunctionsSetCodes) {
  EXPECT_EQ(InvalidArgument("").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(ValidateError("").code(), StatusCode::kValidateError);
  EXPECT_EQ(CompileError("").code(), StatusCode::kCompileError);
  EXPECT_EQ(RuntimeError("").code(), StatusCode::kRuntimeError);
  EXPECT_EQ(IoError("").code(), StatusCode::kIoError);
  EXPECT_EQ(NotFound("").code(), StatusCode::kNotFound);
  EXPECT_EQ(Unimplemented("").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(OutOfRange("").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Internal("").code(), StatusCode::kInternal);
}

TEST(StatusTest, ServingTaxonomyCodesAndNames) {
  EXPECT_EQ(OomError("").code(), StatusCode::kOom);
  EXPECT_EQ(TimeoutError("").code(), StatusCode::kTimeout);
  EXPECT_EQ(CancelledError("").code(), StatusCode::kCancelled);
  EXPECT_EQ(OomError("queue full").ToString(), "Oom: queue full");
  EXPECT_EQ(TimeoutError("late").ToString(), "Timeout: late");
  EXPECT_EQ(CancelledError("gone").ToString(), "Cancelled: gone");
}

TEST(StatusTest, RetryableClassification) {
  // Load-dependent failures are worth retrying with backoff...
  EXPECT_TRUE(IsRetryable(OomError("")));
  EXPECT_TRUE(IsRetryable(TimeoutError("")));
  EXPECT_TRUE(IsRetryable(CancelledError("")));
  // ...while deterministic failures are not.
  EXPECT_FALSE(IsRetryable(ParseError("")));
  EXPECT_FALSE(IsRetryable(ValidateError("")));
  EXPECT_FALSE(IsRetryable(CompileError("")));
  EXPECT_FALSE(IsRetryable(RuntimeError("")));
  EXPECT_FALSE(IsRetryable(NotFound("")));
  EXPECT_FALSE(IsRetryable(Internal("")));
  EXPECT_FALSE(IsRetryable(Status::Ok()));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = NotFound("nope");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> owned = std::move(v).value();
  EXPECT_EQ(*owned, 7);
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return InvalidArgument("odd");
  return x / 2;
}

StatusOr<int> Quarter(int x) {
  SYSDS_ASSIGN_OR_RETURN(int h, Half(x));
  SYSDS_ASSIGN_OR_RETURN(int q, Half(h));
  return q;
}

TEST(StatusOrTest, AssignOrReturnPropagates) {
  auto ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  auto err = Quarter(6);  // 6/2=3, odd -> error from inner call
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace sysds
