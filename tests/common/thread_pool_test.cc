#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

namespace sysds {
namespace {

TEST(ThreadPoolTest, SubmitExecutesTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  std::promise<void> done;
  const int n = 50;
  std::atomic<int> remaining{n};
  for (int i = 0; i < n; ++i) {
    pool.Submit([&] {
      count.fetch_add(1);
      if (remaining.fetch_sub(1) == 1) done.set_value();
    });
  }
  done.get_future().wait();
  EXPECT_EQ(count.load(), n);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(0, 1000, 7, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) hits[static_cast<size_t>(i)]++;
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(5, 5, 4, [&](int64_t, int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ParallelForSingleChunk) {
  ThreadPool pool(2);
  std::vector<int> order;
  pool.ParallelFor(0, 10, 1, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) order.push_back(static_cast<int>(i));
  });
  std::vector<int> expect(10);
  std::iota(expect.begin(), expect.end(), 0);
  EXPECT_EQ(order, expect);
}

TEST(ThreadPoolTest, NestedParallelForFromWorkerDoesNotDeadlock) {
  // Kernels run inside parfor workers; nested ParallelFor calls from pool
  // threads must run inline instead of waiting on the saturated pool.
  ThreadPool& pool = ThreadPool::Global();
  std::atomic<int64_t> total{0};
  pool.ParallelFor(0, 8, 8, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) {
      pool.ParallelFor(0, 100, 4, [&](int64_t ib, int64_t ie) {
        total.fetch_add(ie - ib);
      });
    }
  });
  EXPECT_EQ(total.load(), 800);
}

TEST(ThreadPoolTest, DefaultParallelismPositive) {
  EXPECT_GE(DefaultParallelism(), 1);
}

}  // namespace
}  // namespace sysds
