#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <mutex>
#include <numeric>
#include <utility>
#include <vector>

namespace sysds {
namespace {

TEST(ThreadPoolTest, SubmitExecutesTasks) {
  ThreadPool pool(2);
  std::atomic<int> count{0};
  std::promise<void> done;
  const int n = 50;
  std::atomic<int> remaining{n};
  for (int i = 0; i < n; ++i) {
    pool.Submit([&] {
      count.fetch_add(1);
      if (remaining.fetch_sub(1) == 1) done.set_value();
    });
  }
  done.get_future().wait();
  EXPECT_EQ(count.load(), n);
}

TEST(ThreadPoolTest, ParallelForCoversRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(1000);
  pool.ParallelFor(0, 1000, 7, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) hits[static_cast<size_t>(i)]++;
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForEmptyRange) {
  ThreadPool pool(2);
  bool called = false;
  pool.ParallelFor(5, 5, 4, [&](int64_t, int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ThreadPoolTest, ParallelForSingleChunk) {
  ThreadPool pool(2);
  std::vector<int> order;
  pool.ParallelFor(0, 10, 1, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) order.push_back(static_cast<int>(i));
  });
  std::vector<int> expect(10);
  std::iota(expect.begin(), expect.end(), 0);
  EXPECT_EQ(order, expect);
}

TEST(ThreadPoolTest, ZeroWorkerPoolRunsChunksInOrderOnCaller) {
  // A zero-worker pool (SYSDS_NUM_THREADS=1 gives Global() zero workers)
  // must still apply the same chunk decomposition, serially in chunk order.
  ThreadPool pool(0);
  std::vector<int> order;
  pool.ParallelFor(0, 20, 4, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) order.push_back(static_cast<int>(i));
  });
  std::vector<int> expect(20);
  std::iota(expect.begin(), expect.end(), 0);
  EXPECT_EQ(order, expect);
}

TEST(ThreadPoolTest, ZeroWorkerPoolDrainsSubmitsOnDestruction) {
  std::atomic<int> count{0};
  {
    ThreadPool pool(0);
    for (int i = 0; i < 5; ++i) pool.Submit([&] { count.fetch_add(1); });
    // Nothing runs until someone helps...
    EXPECT_EQ(count.load(), 0);
    EXPECT_TRUE(pool.TryRunPendingTask());
    EXPECT_EQ(count.load(), 1);
  }
  // ...and the destructor drains the rest.
  EXPECT_EQ(count.load(), 5);
}

TEST(ThreadPoolTest, NestedParallelForFromWorkerDoesNotDeadlock) {
  // Kernels run inside parfor workers; nested ParallelFor calls from pool
  // threads perform helping joins (claim pending chunks) instead of waiting
  // on the saturated pool.
  ThreadPool& pool = ThreadPool::Global();
  std::atomic<int64_t> total{0};
  pool.ParallelFor(0, 8, 8, [&](int64_t b, int64_t e) {
    for (int64_t i = b; i < e; ++i) {
      pool.ParallelFor(0, 100, 4, [&](int64_t ib, int64_t ie) {
        total.fetch_add(ie - ib);
      });
    }
  });
  EXPECT_EQ(total.load(), 800);
}

TEST(ThreadPoolTest, ParallelForWeightedCoversRangeExactlyOnce) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> hits(500);
  std::vector<std::atomic<int>> chunk_of(500);
  pool.ParallelForWeighted(
      0, 500, 8, [](int64_t i) { return i % 7 + 1; },
      [&](int64_t b, int64_t e, int64_t c) {
        for (int64_t i = b; i < e; ++i) {
          hits[static_cast<size_t>(i)]++;
          chunk_of[static_cast<size_t>(i)] = static_cast<int>(c);
        }
      });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  // Chunk ids must be contiguous and non-decreasing over the range.
  for (size_t i = 1; i < chunk_of.size(); ++i) {
    int d = chunk_of[i].load() - chunk_of[i - 1].load();
    EXPECT_TRUE(d == 0 || d == 1);
  }
}

TEST(ThreadPoolTest, ParallelForWeightedIsolatesHeavyRow) {
  // One row carrying nearly all the weight must land in its own small chunk
  // so it cannot straggle a wide chunk.
  ThreadPool pool(2);
  std::vector<std::pair<int64_t, int64_t>> ranges(64, {-1, -1});
  int64_t used = 0;
  std::mutex mu;
  pool.ParallelForWeighted(
      0, 100, 8, [](int64_t i) { return i == 0 ? int64_t{100000} : int64_t{1}; },
      [&](int64_t b, int64_t e, int64_t c) {
        std::lock_guard<std::mutex> lock(mu);
        ranges[static_cast<size_t>(c)] = {b, e};
        used = std::max(used, c + 1);
      });
  // Row 0 exceeds every per-chunk target, so chunk 0 is exactly [0, 1).
  EXPECT_EQ(ranges[0].first, 0);
  EXPECT_EQ(ranges[0].second, 1);
  EXPECT_GE(used, 2);
}

TEST(ThreadPoolTest, PickChunksIgnoresThreadCount) {
  // Determinism across parallelism levels hinges on the chunk count being a
  // pure function of the row count.
  for (int64_t rows : {0, 1, 8, 15, 16, 60, 1000, 1 << 20}) {
    int64_t c1 = PickChunks(rows, 1);
    EXPECT_EQ(c1, PickChunks(rows, 2));
    EXPECT_EQ(c1, PickChunks(rows, 8));
    EXPECT_EQ(c1, PickChunks(rows, 64));
    EXPECT_GE(c1, 1);
    EXPECT_LE(c1, kMaxLoopChunks);
  }
  EXPECT_EQ(PickChunks(10, 8), 1);  // tiny inputs stay serial
}

TEST(ThreadPoolTest, PickChunksBoundedCapsScratch) {
  // 1M rows with a 32 MB per-chunk accumulator: the 64 MB budget allows two
  // chunks even though the unbounded policy would pick kMaxLoopChunks.
  EXPECT_EQ(PickChunks(1 << 20, 8), kMaxLoopChunks);
  EXPECT_EQ(PickChunksBounded(1 << 20, int64_t{32} << 20), 2);
  EXPECT_EQ(PickChunksBounded(1 << 20, 8), kMaxLoopChunks);
  EXPECT_GE(PickChunksBounded(1 << 20, int64_t{1} << 40), 1);
}

TEST(ThreadPoolTest, DefaultParallelismPositive) {
  EXPECT_GE(DefaultParallelism(), 1);
}

}  // namespace
}  // namespace sysds
