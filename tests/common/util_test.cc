#include "common/util.h"

#include <gtest/gtest.h>

#include <set>

namespace sysds {
namespace {

TEST(StringUtilTest, SplitString) {
  EXPECT_EQ(SplitString("a,b,c", ','),
            (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(SplitString("", ','), (std::vector<std::string>{""}));
  EXPECT_EQ(SplitString("a,,c", ','),
            (std::vector<std::string>{"a", "", "c"}));
  EXPECT_EQ(SplitString("a,", ','), (std::vector<std::string>{"a", ""}));
}

TEST(StringUtilTest, JoinStrings) {
  EXPECT_EQ(JoinStrings({"x", "y"}, "-"), "x-y");
  EXPECT_EQ(JoinStrings({}, "-"), "");
  EXPECT_EQ(JoinStrings({"solo"}, ","), "solo");
}

TEST(StringUtilTest, TrimString) {
  EXPECT_EQ(TrimString("  hi \t\n"), "hi");
  EXPECT_EQ(TrimString("hi"), "hi");
  EXPECT_EQ(TrimString("   "), "");
}

TEST(StringUtilTest, CaseAndAffixes) {
  EXPECT_EQ(ToLower("AbC"), "abc");
  EXPECT_TRUE(StartsWith("foobar", "foo"));
  EXPECT_FALSE(StartsWith("fo", "foo"));
  EXPECT_TRUE(EndsWith("foobar", "bar"));
  EXPECT_FALSE(EndsWith("ar", "bar"));
}

TEST(HashTest, StableAndDistinct) {
  EXPECT_EQ(HashString("abc"), HashString("abc"));
  EXPECT_NE(HashString("abc"), HashString("abd"));
  uint64_t a = HashCombine(1, 2);
  uint64_t b = HashCombine(2, 1);
  EXPECT_NE(a, b);  // order sensitivity
  EXPECT_EQ(HashCombine(1, 2), HashCombine(1, 2));
}

TEST(XoshiroTest, DeterministicForSeed) {
  Xoshiro a(12345), b(12345);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(XoshiroTest, DifferentSeedsDiffer) {
  Xoshiro a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_EQ(same, 0);
}

TEST(XoshiroTest, UniformInRange) {
  Xoshiro rng(7);
  double mn = 1e9, mx = -1e9, sum = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    double v = rng.NextDouble(2.0, 5.0);
    mn = std::min(mn, v);
    mx = std::max(mx, v);
    sum += v;
  }
  EXPECT_GE(mn, 2.0);
  EXPECT_LT(mx, 5.0);
  EXPECT_NEAR(sum / n, 3.5, 0.05);
}

TEST(XoshiroTest, GaussianMoments) {
  Xoshiro rng(11);
  double sum = 0, sumsq = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    double v = rng.NextGaussian();
    sum += v;
    sumsq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.03);
  EXPECT_NEAR(sumsq / n, 1.0, 0.05);
}

TEST(GenerateSeedTest, ProducesFreshSeeds) {
  std::set<uint64_t> seeds;
  for (int i = 0; i < 100; ++i) seeds.insert(GenerateSeed());
  EXPECT_EQ(seeds.size(), 100u);
}

}  // namespace
}  // namespace sysds
