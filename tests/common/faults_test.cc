#include "common/faults.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "common/status.h"
#include "fed/federated.h"
#include "runtime/matrix/lib_datagen.h"

namespace sysds {
namespace {

FaultConfig Config(uint64_t seed, double drop = 0.3) {
  FaultConfig c;
  c.enabled = true;
  c.seed = seed;
  c.profile.drop_prob = drop;
  return c;
}

std::vector<bool> Decisions(uint64_t seed, int n) {
  ScopedFaultInjection chaos(Config(seed));
  std::vector<bool> out;
  out.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    out.push_back(FaultInjector::Get().ShouldInject(
        FaultLayer::kFederated, 0, FaultKind::kMessageDrop));
  }
  return out;
}

TEST(FaultInjectorTest, DisabledInjectorIsInert) {
  FaultInjector& inj = FaultInjector::Get();
  inj.Disable();
  EXPECT_FALSE(inj.enabled());
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(inj.ShouldInject(FaultLayer::kFederated, 0,
                                  FaultKind::kMessageDrop));
  }
  EXPECT_FALSE(inj.IsDead(FaultLayer::kFederated, 0));
  EXPECT_EQ(inj.Decisions(), 0);
}

TEST(FaultInjectorTest, SameSeedSameDecisionStream) {
  std::vector<bool> a = Decisions(7, 200);
  std::vector<bool> b = Decisions(7, 200);
  EXPECT_EQ(a, b);
  int fired = 0;
  for (bool d : a) fired += d ? 1 : 0;
  // 30% drop over 200 events: the stream must be neither empty nor full.
  EXPECT_GT(fired, 0);
  EXPECT_LT(fired, 200);
}

TEST(FaultInjectorTest, DifferentSeedsDiverge) {
  EXPECT_NE(Decisions(1, 200), Decisions(2, 200));
}

TEST(FaultInjectorTest, StreamsAreIndependentPerTargetAndKind) {
  ScopedFaultInjection chaos([] {
    FaultConfig c = Config(11, 0.5);
    c.profile.crash_prob = 0.5;
    return c;
  }());
  FaultInjector& inj = FaultInjector::Get();
  std::vector<bool> site0, site1, crash0;
  for (int i = 0; i < 100; ++i) {
    site0.push_back(inj.ShouldInject(FaultLayer::kFederated, 0,
                                     FaultKind::kMessageDrop));
    site1.push_back(inj.ShouldInject(FaultLayer::kFederated, 1,
                                     FaultKind::kMessageDrop));
    crash0.push_back(
        inj.ShouldInject(FaultLayer::kFederated, 0, FaultKind::kCrash));
  }
  EXPECT_NE(site0, site1);
  EXPECT_NE(site0, crash0);
  EXPECT_GE(inj.Decisions(), 300);
}

TEST(FaultInjectorTest, DeadTargetsAlwaysFail) {
  FaultConfig c = Config(3, /*drop=*/0.0);
  c.profile.dead_targets.push_back({FaultLayer::kFederated, 2});
  ScopedFaultInjection chaos(c);
  FaultInjector& inj = FaultInjector::Get();
  EXPECT_TRUE(inj.IsDead(FaultLayer::kFederated, 2));
  EXPECT_FALSE(inj.IsDead(FaultLayer::kFederated, 1));
  for (int i = 0; i < 20; ++i) {
    EXPECT_TRUE(inj.ShouldInject(FaultLayer::kFederated, 2,
                                 FaultKind::kMessageDrop));
    EXPECT_FALSE(inj.ShouldInject(FaultLayer::kFederated, 1,
                                  FaultKind::kMessageDrop));
  }
}

TEST(FaultInjectorTest, ScopedInjectionDisablesOnExit) {
  {
    ScopedFaultInjection chaos(Config(5));
    EXPECT_TRUE(FaultInjector::Get().enabled());
  }
  EXPECT_FALSE(FaultInjector::Get().enabled());
}

TEST(FaultInjectorTest, CorruptedPayloadFailsIntegrityCheck) {
  ScopedFaultInjection chaos(Config(9));
  MatrixBlock m = *RandMatrix(8, 5, -1, 1, 1.0, 42, RandPdf::kUniform, 1);
  std::vector<uint8_t> payload = SerializeMatrix(m);
  ASSERT_TRUE(ValidateMatrixPayload(payload).ok());
  FaultInjector::Get().CorruptPayload(FaultLayer::kFederated, 0, &payload);
  Status s = ValidateMatrixPayload(payload);
  EXPECT_EQ(s.code(), StatusCode::kCorrupt);
  EXPECT_EQ(DeserializeMatrix(payload).status().code(), StatusCode::kCorrupt);
}

TEST(FaultInjectorTest, JitterIsDeterministicAndBounded) {
  FaultInjector& inj = FaultInjector::Get();
  inj.Disable();
  for (int attempt = 0; attempt < 5; ++attempt) {
    int j1 = inj.JitterMs(FaultLayer::kFederated, 1, attempt, 8);
    int j2 = inj.JitterMs(FaultLayer::kFederated, 1, attempt, 8);
    EXPECT_EQ(j1, j2);
    EXPECT_GE(j1, 0);
    EXPECT_LE(j1, 8);
  }
  EXPECT_EQ(inj.JitterMs(FaultLayer::kFederated, 1, 1, 0), 0);
}

TEST(FaultStatusTest, NewCodesAreRetryable) {
  Status unavailable = UnavailableError("site down");
  Status corrupt = CorruptError("bad checksum");
  EXPECT_EQ(unavailable.code(), StatusCode::kUnavailable);
  EXPECT_EQ(corrupt.code(), StatusCode::kCorrupt);
  EXPECT_TRUE(IsRetryable(unavailable));
  EXPECT_TRUE(IsRetryable(corrupt));
  EXPECT_FALSE(IsRetryable(RuntimeError("bad opcode")));
  EXPECT_FALSE(IsRetryable(Status::Ok()));
  EXPECT_NE(unavailable.ToString().find("Unavailable"), std::string::npos);
  EXPECT_NE(corrupt.ToString().find("Corrupt"), std::string::npos);
}

TEST(FaultSerializationTest, TruncatedAndMalformedPayloadsAreCorrupt) {
  MatrixBlock m = *RandMatrix(4, 3, -1, 1, 1.0, 7, RandPdf::kUniform, 1);
  std::vector<uint8_t> payload = SerializeMatrix(m);
  // Truncation at every boundary must fail cleanly, never read past end.
  for (size_t cut : {size_t{0}, size_t{8}, size_t{23}, payload.size() - 1}) {
    std::vector<uint8_t> truncated(payload.begin(),
                                   payload.begin() + static_cast<long>(cut));
    EXPECT_EQ(DeserializeMatrix(truncated).status().code(),
              StatusCode::kCorrupt)
        << "cut=" << cut;
  }
  // Negative dimensions.
  std::vector<uint8_t> negative = payload;
  int64_t bad_rows = -4;
  std::memcpy(negative.data(), &bad_rows, 8);
  EXPECT_EQ(DeserializeMatrix(negative).status().code(), StatusCode::kCorrupt);
  // Huge dimensions whose product overflows must not be trusted.
  std::vector<uint8_t> huge = payload;
  int64_t big = int64_t{1} << 62;
  std::memcpy(huge.data(), &big, 8);
  std::memcpy(huge.data() + 8, &big, 8);
  EXPECT_EQ(DeserializeMatrix(huge).status().code(), StatusCode::kCorrupt);
}

}  // namespace
}  // namespace sysds
