#include "common/json.h"

#include <gtest/gtest.h>

namespace sysds {
namespace {

TEST(JsonTest, ParsesScalars) {
  EXPECT_EQ(ParseJson("42")->AsNumber(), 42.0);
  EXPECT_EQ(ParseJson("-3.5e2")->AsNumber(), -350.0);
  EXPECT_TRUE(ParseJson("true")->AsBool());
  EXPECT_FALSE(ParseJson("false")->AsBool());
  EXPECT_TRUE(ParseJson("null")->IsNull());
  EXPECT_EQ(ParseJson("\"hi\\nthere\"")->AsString(), "hi\nthere");
}

TEST(JsonTest, ParsesArrays) {
  auto v = ParseJson("[1, \"two\", [3]]");
  ASSERT_TRUE(v.ok());
  ASSERT_EQ(v->AsArray().size(), 3u);
  EXPECT_EQ(v->AsArray()[0].AsNumber(), 1.0);
  EXPECT_EQ(v->AsArray()[1].AsString(), "two");
  EXPECT_EQ(v->AsArray()[2].AsArray()[0].AsNumber(), 3.0);
}

TEST(JsonTest, ParsesNestedObjects) {
  auto v = ParseJson(R"({"recode":["city"],"bin":[{"name":"age","numbins":5}]})");
  ASSERT_TRUE(v.ok());
  const JsonValue* recode = v->Find("recode");
  ASSERT_NE(recode, nullptr);
  EXPECT_EQ(recode->AsArray()[0].AsString(), "city");
  const JsonValue* bin = v->Find("bin");
  ASSERT_NE(bin, nullptr);
  EXPECT_EQ(bin->AsArray()[0].Find("numbins")->AsNumber(), 5.0);
  EXPECT_EQ(v->Find("missing"), nullptr);
}

TEST(JsonTest, EmptyContainers) {
  EXPECT_TRUE(ParseJson("{}")->AsObject().empty());
  EXPECT_TRUE(ParseJson("[]")->AsArray().empty());
}

TEST(JsonTest, WhitespaceTolerant) {
  auto v = ParseJson("  { \"a\" :\n [ 1 , 2 ] }  ");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->Find("a")->AsArray().size(), 2u);
}

TEST(JsonTest, Errors) {
  EXPECT_FALSE(ParseJson("{").ok());
  EXPECT_FALSE(ParseJson("[1,]").ok());
  EXPECT_FALSE(ParseJson("\"unterminated").ok());
  EXPECT_FALSE(ParseJson("{\"a\":1} trailing").ok());
  EXPECT_FALSE(ParseJson("{a:1}").ok());
}

TEST(JsonTest, DumpRoundtrip) {
  std::string src = R"({"a":[1,true,"x"],"b":{"c":null}})";
  auto v = ParseJson(src);
  ASSERT_TRUE(v.ok());
  auto v2 = ParseJson(v->Dump());
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(v->Dump(), v2->Dump());
}

}  // namespace
}  // namespace sysds
