// Recovery suite unit tests (ctest -L recovery): the crash-safe file
// primitives (CRC32, atomic write + verified read), the compiler's
// loop-liveness annotation pass, deterministic checkpoint-boundary kill
// points, checkpoint-state rejection (corrupt manifest, truncated variable
// file, program-version mismatch), and CRC-verified buffer-pool spills.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "api/systemds_context.h"
#include "common/crc32.h"
#include "common/faults.h"
#include "common/util.h"
#include "compiler/compiler.h"
#include "io/atomic_file.h"
#include "runtime/controlprog/data.h"
#include "runtime/controlprog/program.h"
#include "runtime/matrix/matrix_block.h"

namespace sysds {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = (fs::temp_directory_path() /
             ("sysds_recovery_" + tag + "_" +
              std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
              "_" + std::to_string(reinterpret_cast<uintptr_t>(this))))
                .string();
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }
  std::string File(const std::string& name) const {
    return (fs::path(path_) / name).string();
  }

 private:
  std::string path_;
};

TEST(Crc32Test, KnownAnswer) {
  // The IEEE 802.3 check value for "123456789".
  EXPECT_EQ(Crc32::Of("123456789", 9), 0xCBF43926u);
  EXPECT_EQ(Crc32::Of("", 0), 0x00000000u);
}

TEST(Crc32Test, IncrementalMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  Crc32 inc;
  inc.Update(data.data(), 10);
  inc.Update(data.data() + 10, data.size() - 10);
  EXPECT_EQ(inc.Value(), Crc32::Of(data.data(), data.size()));
}

TEST(AtomicFileTest, RoundTripAndNoTempLeft) {
  TempDir dir("atomic");
  std::string path = dir.File("payload.bin");
  std::string payload(4096, '\0');
  for (size_t i = 0; i < payload.size(); ++i) {
    payload[i] = static_cast<char>(i * 31);
  }
  Status w = io::WriteAtomic(path, [&](std::ostream& out) {
    out.write(payload.data(), static_cast<std::streamsize>(payload.size()));
    return Status::Ok();
  });
  ASSERT_TRUE(w.ok()) << w;
  EXPECT_FALSE(fs::exists(path + ".tmp"));
  auto r = io::ReadVerified(path);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(*r, payload);
}

TEST(AtomicFileTest, BitFlipDetectedAsCorrupt) {
  TempDir dir("corrupt");
  std::string path = dir.File("payload.bin");
  ASSERT_TRUE(io::WriteAtomic(path, [](std::ostream& out) {
                out << "checkpoint payload bytes";
                return Status::Ok();
              }).ok());
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(3);
    f.put('X');
  }
  auto r = io::ReadVerified(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorrupt);
}

TEST(AtomicFileTest, TruncationDetectedAsCorrupt) {
  TempDir dir("trunc");
  std::string path = dir.File("payload.bin");
  ASSERT_TRUE(io::WriteAtomic(path, [](std::ostream& out) {
                out << std::string(1024, 'z');
                return Status::Ok();
              }).ok());
  fs::resize_file(path, 100);
  auto r = io::ReadVerified(path);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorrupt);
}

TEST(AtomicFileTest, FailedPayloadLeavesPreviousVersionIntact) {
  TempDir dir("keepold");
  std::string path = dir.File("payload.bin");
  ASSERT_TRUE(io::WriteAtomic(path, [](std::ostream& out) {
                out << "generation 1";
                return Status::Ok();
              }).ok());
  Status failed = io::WriteAtomic(
      path, [](std::ostream&) { return IoError("simulated payload failure"); });
  EXPECT_FALSE(failed.ok());
  auto r = io::ReadVerified(path);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(*r, "generation 1");
}

// ---------------------------------------------------------------------------
// Liveness annotation.

TEST(LoopLivenessTest, ForLoopCheckpointVarsAndInvariants) {
  DMLConfig config;
  auto program = CompileDML(
      "X = rand(rows=8, cols=3, seed=7)\n"
      "beta = matrix(0, rows=3, cols=1)\n"
      "for (i in 1:4) {\n"
      "  g = t(X) %*% (X %*% beta)\n"
      "  beta = beta - 0.01 * g\n"
      "}\n",
      config);
  ASSERT_TRUE(program.ok()) << program.status();
  ForBlock* loop = nullptr;
  for (const auto& b : (*program)->Blocks()) {
    if (auto* f = dynamic_cast<ForBlock*>(b.get())) loop = f;
  }
  ASSERT_NE(loop, nullptr);
  const LoopLiveness& lv = loop->Liveness();
  EXPECT_GE(lv.loop_id, 0);
  auto has = [](const std::vector<std::string>& v, const std::string& s) {
    return std::find(v.begin(), v.end(), s) != v.end();
  };
  // Loop-carried writes plus the induction variable are checkpointed.
  EXPECT_TRUE(has(lv.checkpoint_vars, "beta"));
  EXPECT_TRUE(has(lv.checkpoint_vars, "g"));
  EXPECT_TRUE(has(lv.checkpoint_vars, "i"));
  // X is read but never written: validated by lineage, not saved.
  EXPECT_FALSE(has(lv.checkpoint_vars, "X"));
  EXPECT_TRUE(has(lv.invariant_reads, "X"));
}

TEST(LoopLivenessTest, LoopIdsAreDeterministicAcrossCompiles) {
  const std::string src =
      "s = 0\n"
      "for (i in 1:3) { s = s + i }\n"
      "while (s > 0) { s = s - 1 }\n"
      "for (j in 1:2) { s = s + j }\n";
  DMLConfig config;
  auto p1 = CompileDML(src, config);
  auto p2 = CompileDML(src, config);
  ASSERT_TRUE(p1.ok() && p2.ok());
  std::vector<int> ids1, ids2;
  auto collect = [](Program* p, std::vector<int>* out) {
    for (const auto& b : p->Blocks()) {
      if (auto* f = dynamic_cast<ForBlock*>(b.get())) {
        out->push_back(f->Liveness().loop_id);
      } else if (auto* w = dynamic_cast<WhileBlock*>(b.get())) {
        out->push_back(w->Liveness().loop_id);
      }
    }
  };
  collect(p1->get(), &ids1);
  collect(p2->get(), &ids2);
  ASSERT_EQ(ids1.size(), 3u);
  EXPECT_EQ(ids1, ids2);
  // Pre-order: strictly increasing over the top-level walk.
  EXPECT_LT(ids1[0], ids1[1]);
  EXPECT_LT(ids1[1], ids1[2]);
}

// ---------------------------------------------------------------------------
// Deterministic kill points.

TEST(KillPointTest, ExactlyNthProbeFires) {
  FaultConfig config;
  config.enabled = true;
  config.seed = 1;
  config.profile.crash_at_boundary = 3;
  ScopedFaultInjection chaos(config);
  FaultInjector& inj = FaultInjector::Get();
  int fired_at = -1;
  for (int probe = 1; probe <= 6; ++probe) {
    if (inj.ShouldInject(FaultLayer::kRecovery, 0, FaultKind::kCrash)) {
      EXPECT_EQ(fired_at, -1) << "kill point fired twice";
      fired_at = probe;
    }
  }
  EXPECT_EQ(fired_at, 3);
}

TEST(KillPointTest, StreamsAreIndependentPerLoopId) {
  FaultConfig config;
  config.enabled = true;
  config.profile.crash_at_boundary = 2;
  ScopedFaultInjection chaos(config);
  FaultInjector& inj = FaultInjector::Get();
  // Advance loop 0's stream past its kill point; loop 1's stream still
  // fires at its own 2nd probe.
  EXPECT_FALSE(inj.ShouldInject(FaultLayer::kRecovery, 0, FaultKind::kCrash));
  EXPECT_TRUE(inj.ShouldInject(FaultLayer::kRecovery, 0, FaultKind::kCrash));
  EXPECT_FALSE(inj.ShouldInject(FaultLayer::kRecovery, 1, FaultKind::kCrash));
  EXPECT_TRUE(inj.ShouldInject(FaultLayer::kRecovery, 1, FaultKind::kCrash));
}

// ---------------------------------------------------------------------------
// Hermetic fault-injection scopes (regression: nested/sequential scopes used
// to leak the inner configuration into the enclosing one).

TEST(ScopedFaultInjectionTest, NestedScopeRestoresOuterConfig) {
  FaultConfig outer;
  outer.enabled = true;
  outer.seed = 11;
  outer.profile.crash_at_boundary = 5;
  ScopedFaultInjection outer_scope(outer);
  {
    FaultConfig inner;
    inner.enabled = true;
    inner.seed = 99;
    inner.profile.crash_at_boundary = 1;
    ScopedFaultInjection inner_scope(inner);
    EXPECT_EQ(FaultInjector::Get().CurrentConfig().seed, 99u);
  }
  FaultConfig restored = FaultInjector::Get().CurrentConfig();
  EXPECT_TRUE(restored.enabled);
  EXPECT_EQ(restored.seed, 11u);
  EXPECT_EQ(restored.profile.crash_at_boundary, 5);
}

TEST(ScopedFaultInjectionTest, SequentialScopesGetFreshDecisionStreams) {
  FaultConfig config;
  config.enabled = true;
  config.profile.crash_at_boundary = 1;
  {
    ScopedFaultInjection scope(config);
    EXPECT_TRUE(FaultInjector::Get().ShouldInject(FaultLayer::kRecovery, 0,
                                                  FaultKind::kCrash));
  }
  {
    // A fresh scope must replay the same decision stream from event 0, not
    // continue the previous scope's counters.
    ScopedFaultInjection scope(config);
    EXPECT_TRUE(FaultInjector::Get().ShouldInject(FaultLayer::kRecovery, 0,
                                                  FaultKind::kCrash));
  }
  EXPECT_FALSE(FaultInjector::Get().enabled());
}

// ---------------------------------------------------------------------------
// Checkpoint-state rejection on resume.

class CheckpointRejectionTest : public ::testing::Test {
 protected:
  void TearDown() override { FaultInjector::Get().Disable(); }

  // Runs the script with checkpointing and a kill point at boundary 1,
  // leaving a committed checkpoint behind in `dir`.
  void CrashOnce(const std::string& script, const std::string& dir) {
    FaultConfig faults;
    faults.enabled = true;
    faults.profile.crash_at_boundary = 1;
    auto ctx = SystemDSContext::Builder()
                   .Checkpointing(dir)
                   .Chaos(faults)
                   .Build();
    auto r = ctx->Execute(script, Inputs(), Outputs("acc"));
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kAborted) << r.status();
    FaultInjector::Get().Disable();
  }

  const std::string script_ =
      "acc = matrix(1, rows=4, cols=4)\n"
      "for (i in 1:5) {\n"
      "  acc = acc + i\n"
      "}\n";
};

TEST_F(CheckpointRejectionTest, CorruptManifestRejected) {
  TempDir dir("badmanifest");
  CrashOnce(script_, dir.path());
  // Flip a byte inside every manifest's payload.
  bool found = false;
  for (const auto& entry : fs::directory_iterator(dir.path())) {
    std::string name = entry.path().filename().string();
    if (name.rfind("manifest_loop", 0) != 0) continue;
    found = true;
    std::fstream f(entry.path(), std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(5);
    f.put('~');
  }
  ASSERT_TRUE(found) << "no committed manifest after simulated crash";
  auto ctx =
      SystemDSContext::Builder().Checkpointing(dir.path()).Resume().Build();
  auto r = ctx->Execute(script_, Inputs(), Outputs("acc"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorrupt) << r.status();
}

TEST_F(CheckpointRejectionTest, TruncatedVariableFileRejected) {
  TempDir dir("truncvar");
  CrashOnce(script_, dir.path());
  bool found = false;
  for (const auto& entry : fs::directory_iterator(dir.path())) {
    std::string name = entry.path().filename().string();
    if (name.rfind("loop", 0) != 0) continue;  // var files: loop<id>_g...
    found = true;
    fs::resize_file(entry.path(), fs::file_size(entry.path()) / 2);
  }
  ASSERT_TRUE(found) << "no checkpoint variable files after simulated crash";
  auto ctx =
      SystemDSContext::Builder().Checkpointing(dir.path()).Resume().Build();
  auto r = ctx->Execute(script_, Inputs(), Outputs("acc"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorrupt) << r.status();
}

TEST_F(CheckpointRejectionTest, ProgramVersionMismatchRejected) {
  TempDir dir("vermismatch");
  CrashOnce(script_, dir.path());
  // Resuming a DIFFERENT program from this checkpoint directory must be
  // refused: the manifest's program hash no longer matches.
  auto ctx =
      SystemDSContext::Builder().Checkpointing(dir.path()).Resume().Build();
  auto r = ctx->Execute(
      "acc = matrix(2, rows=4, cols=4)\n"
      "for (i in 1:7) {\n"
      "  acc = acc * 1.5 + i\n"
      "}\n",
      Inputs(), Outputs("acc"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kValidateError) << r.status();
}

// ---------------------------------------------------------------------------
// Buffer-pool spill files are CRC-protected.

TEST(SpillIntegrityTest, CorruptSpillFileSurfacesAsRetryableCorrupt) {
  TempDir dir("spill");
  MatrixBlock block = MatrixBlock::Dense(16, 16, 2.5);
  MatrixObject obj(std::move(block));
  std::string path = dir.File("spill0.bin");
  auto evicted = obj.EvictTo(path);
  ASSERT_TRUE(evicted.ok()) << evicted.status();
  ASSERT_TRUE(*evicted);
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(64);
    f.put('\x7f');
  }
  auto read = obj.AcquireRead();
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kCorrupt) << read.status();
  EXPECT_TRUE(fs::exists(path)) << "spill file must be kept for retry";
}

TEST(SpillIntegrityTest, IntactSpillRoundTrips) {
  TempDir dir("spillok");
  MatrixBlock block = MatrixBlock::Dense(8, 8, 0.0);
  for (int64_t i = 0; i < 8; ++i) block.Set(i, i, static_cast<double>(i + 1));
  MatrixObject obj(std::move(block));
  std::string path = dir.File("spill1.bin");
  auto evicted = obj.EvictTo(path);
  ASSERT_TRUE(evicted.ok() && *evicted);
  auto read = obj.AcquireRead();
  ASSERT_TRUE(read.ok()) << read.status();
  EXPECT_DOUBLE_EQ((*read)->Get(3, 3), 4.0);
  obj.Release();
  // Blocks are immutable, so the spill file stays a valid copy after the
  // restore: the object is clean and its next eviction is a free drop.
  EXPECT_TRUE(fs::exists(path)) << "restore keeps the still-valid spill file";
  auto again = obj.EvictTo(path);
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_TRUE(*again) << "clean re-eviction drops without rewriting";
  EXPECT_FALSE(obj.IsCached());
}

}  // namespace
}  // namespace sysds
