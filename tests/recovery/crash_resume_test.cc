// Crash/resume chaos tests (ctest -L recovery): a run is killed by a
// deterministic kCrash kill point at a chosen checkpoint boundary, then a
// fresh context resumes from the checkpoint directory. The resumed run's
// outputs must be BIT-IDENTICAL to an uninterrupted run — the re-executed
// prefix draws the original run's generated seeds (manifest seed state),
// restored loop-carried variables are CRC-verified, and the fast-forwarded
// loop continues exactly where the crashed run stopped. Crash points cover
// iterations {1, k/2, k-1} of k, across chaos seeds {1, 2, 3}, for an
// lmDS-style for loop, a while loop, a parfor body, and BSP parameter-
// server training with model-version checkpoints.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <tuple>

#include "api/systemds_context.h"
#include "common/faults.h"
#include "common/util.h"
#include "obs/metrics.h"
#include "runtime/matrix/lib_datagen.h"
#include "runtime/ps/param_server.h"

namespace sysds {
namespace {

namespace fs = std::filesystem;

int64_t Counter(const std::string& name) {
  return obs::MetricsRegistry::Get().CounterValue(name);
}

class TempDir {
 public:
  explicit TempDir(const std::string& tag) {
    path_ = (fs::temp_directory_path() /
             ("sysds_crashresume_" + tag + "_" +
              std::to_string(reinterpret_cast<uintptr_t>(this))))
                .string();
    fs::create_directories(path_);
  }
  ~TempDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// The crash point (1-based checkpoint boundary) and the chaos seed. The
// kill point itself is exact — the seed exercises the injector's seeded
// decision streams around it.
class CrashResumeTest
    : public ::testing::TestWithParam<std::tuple<int64_t, uint64_t>> {
 protected:
  void TearDown() override { FaultInjector::Get().Disable(); }

  static FaultConfig KillAt(int64_t boundary, uint64_t seed) {
    FaultConfig c;
    c.enabled = true;
    c.seed = seed;
    c.profile.crash_at_boundary = boundary;
    return c;
  }

  // All three runs (reference, crashed, resumed prefix) must draw the same
  // auto-generated RNG seeds, so each starts from this fixed process seed
  // state. The resume run deliberately starts from a DIFFERENT state to
  // prove the manifest's recorded seed state is restored.
  static constexpr SeedState kRunSeeds{0x5eedba5eULL, 17};

  // Runs uninterrupted (no checkpointing) and returns the named matrix.
  static MatrixBlock Reference(const std::string& script,
                               const std::string& out) {
    SetSeedState(kRunSeeds);
    auto ctx = SystemDSContext::Builder().Build();
    auto r = ctx->Execute(script, Inputs(), Outputs(out));
    EXPECT_TRUE(r.ok()) << r.status();
    return *r->GetMatrix(out);
  }

  // Crash-at-boundary run followed by a resume run; returns the resumed
  // run's output.
  static MatrixBlock CrashThenResume(const std::string& script,
                                     const std::string& out,
                                     const std::string& dir,
                                     int64_t boundary, uint64_t seed) {
    SetSeedState(kRunSeeds);
    {
      auto ctx = SystemDSContext::Builder()
                     .Checkpointing(dir)
                     .Chaos(KillAt(boundary, seed))
                     .Build();
      auto crashed = ctx->Execute(script, Inputs(), Outputs(out));
      EXPECT_FALSE(crashed.ok()) << "kill point did not fire";
      EXPECT_EQ(crashed.status().code(), StatusCode::kAborted)
          << crashed.status();
    }
    FaultInjector::Get().Disable();
    // Scramble the process seed state: resume must restore the recorded one.
    SetSeedState({0xdeadULL, 0});
    int64_t resumes_before = Counter("recovery.resumes");
    auto ctx = SystemDSContext::Builder()
                   .Checkpointing(dir)
                   .Resume()
                   .Build();
    auto resumed = ctx->Execute(script, Inputs(), Outputs(out));
    EXPECT_TRUE(resumed.ok()) << resumed.status();
    EXPECT_GT(Counter("recovery.resumes"), resumes_before)
        << "resume did not restore from a checkpoint";
    return *resumed->GetMatrix(out);
  }
};

constexpr SeedState CrashResumeTest::kRunSeeds;

// k = 6 iterations of an lmDS-style gradient sweep; the feature matrix is
// auto-seeded (seed=-1) so the prefix re-execution exercises seed-state
// restoration.
TEST_P(CrashResumeTest, LmdsForLoopBitIdentical) {
  const auto [boundary, seed] = GetParam();
  const std::string script =
      "X = rand(rows=24, cols=5, min=-1, max=1, seed=-1)\n"
      "y = rand(rows=24, cols=1, seed=11)\n"
      "beta = matrix(0, 5, 1)\n"
      "for (i in 1:6) {\n"
      "  g = t(X) %*% (X %*% beta - y)\n"
      "  beta = beta - 0.001 * g\n"
      "}\n";
  MatrixBlock ref = Reference(script, "beta");
  TempDir dir("lmds");
  MatrixBlock res =
      CrashThenResume(script, "beta", dir.path(), boundary, seed);
  EXPECT_TRUE(res.EqualsApprox(ref, 0)) << "resume is not bit-identical";
}

TEST_P(CrashResumeTest, WhileLoopBitIdentical) {
  const auto [boundary, seed] = GetParam();
  const std::string script =
      "acc = rand(rows=6, cols=6, seed=-1)\n"
      "i = 0\n"
      "while (i < 6) {\n"
      "  i = i + 1\n"
      "  acc = acc * 0.9 + i * 0.125\n"
      "}\n";
  MatrixBlock ref = Reference(script, "acc");
  TempDir dir("while");
  MatrixBlock res = CrashThenResume(script, "acc", dir.path(), boundary, seed);
  EXPECT_TRUE(res.EqualsApprox(ref, 0)) << "resume is not bit-identical";
}

INSTANTIATE_TEST_SUITE_P(
    Boundaries, CrashResumeTest,
    ::testing::Combine(::testing::Values<int64_t>(1, 3, 5),
                       ::testing::Values<uint64_t>(1, 2, 3)));

// Parfor bodies have a single checkpoint boundary after compare-and-merge
// (there is no consistent mid-flight cut across parallel workers): a crash
// there resumes by skipping the completed parfor entirely.
TEST(CrashResumeParforTest, ParforSkippedOnResume) {
  const std::string script =
      "X = rand(rows=16, cols=4, seed=-1)\n"
      "R = matrix(0, 16, 1)\n"
      "parfor (i in 1:16) {\n"
      "  R[i, 1] = sum(X[i, ]) * i\n"
      "}\n"
      "R = R * 2\n";
  SetSeedState({0x5eedba5eULL, 17});
  MatrixBlock ref;
  {
    auto ctx = SystemDSContext::Builder().Build();
    auto r = ctx->Execute(script, Inputs(), Outputs("R"));
    ASSERT_TRUE(r.ok()) << r.status();
    ref = *r->GetMatrix("R");
  }
  TempDir dir("parfor");
  SetSeedState({0x5eedba5eULL, 17});
  {
    FaultConfig kill;
    kill.enabled = true;
    kill.profile.crash_at_boundary = 1;
    auto ctx = SystemDSContext::Builder()
                   .Checkpointing(dir.path())
                   .Chaos(kill)
                   .Build();
    auto crashed = ctx->Execute(script, Inputs(), Outputs("R"));
    ASSERT_FALSE(crashed.ok());
    EXPECT_EQ(crashed.status().code(), StatusCode::kAborted)
        << crashed.status();
  }
  FaultInjector::Get().Disable();
  SetSeedState({0x1234ULL, 0});
  auto ctx =
      SystemDSContext::Builder().Checkpointing(dir.path()).Resume().Build();
  auto resumed = ctx->Execute(script, Inputs(), Outputs("R"));
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  EXPECT_TRUE(resumed->GetMatrix("R")->EqualsApprox(ref, 0));
}

// A clean run with checkpointing enabled leaves no state behind (completed
// loops delete their checkpoints) and matches the plain run bit-identically.
TEST(CrashResumeParforTest, CompletedRunCleansUpCheckpointState) {
  const std::string script =
      "acc = matrix(1, 4, 4)\n"
      "for (i in 1:3) { acc = acc + i }\n";
  TempDir dir("cleanup");
  auto ctx = SystemDSContext::Builder().Checkpointing(dir.path()).Build();
  auto r = ctx->Execute(script, Inputs(), Outputs("acc"));
  ASSERT_TRUE(r.ok()) << r.status();
  size_t leftover = 0;
  for ([[maybe_unused]] const auto& e : fs::directory_iterator(dir.path())) {
    ++leftover;
  }
  EXPECT_EQ(leftover, 0u) << "completed loop left checkpoint state behind";
}

// ---------------------------------------------------------------------------
// Parameter-server model-version checkpoints.

class PsCrashResumeTest
    : public ::testing::TestWithParam<std::tuple<int64_t, uint64_t>> {
 protected:
  void TearDown() override { FaultInjector::Get().Disable(); }
};

TEST_P(PsCrashResumeTest, BspTrainingBitIdenticalAfterCrashResume) {
  const auto [boundary, seed] = GetParam();
  MatrixBlock x = *RandMatrix(48, 6, -1, 1, 1.0, 7, RandPdf::kUniform, 1);
  MatrixBlock y = *RandMatrix(48, 1, 0, 1, 1.0, 8, RandPdf::kUniform, 1);

  // 3 workers x 16 rows each, batch 4 => 4 rounds/epoch x 3 epochs = 12
  // rounds; crash points {1, 6, 11} are round boundaries {1, k/2, k-1}.
  PsConfig base;
  base.num_workers = 3;
  base.epochs = 3;
  base.batch_size = 4;
  base.mode = PsUpdateMode::kBSP;

  // Deterministic BSP: the fault-free reference is exact, not a tolerance.
  auto ref = PsTrain(x, y, base);
  ASSERT_TRUE(ref.ok()) << ref.status();

  TempDir dir("ps");
  {
    FaultConfig kill;
    kill.enabled = true;
    kill.seed = seed;
    kill.profile.crash_at_boundary = boundary;
    ScopedFaultInjection chaos(kill);
    PsConfig crash_cfg = base;
    crash_cfg.checkpoint_dir = dir.path();
    auto crashed = PsTrain(x, y, crash_cfg);
    ASSERT_FALSE(crashed.ok()) << "ps kill point did not fire";
    EXPECT_EQ(crashed.status().code(), StatusCode::kAborted)
        << crashed.status();
  }
  PsConfig resume_cfg = base;
  resume_cfg.checkpoint_dir = dir.path();
  resume_cfg.resume = true;
  auto resumed = PsTrain(x, y, resume_cfg);
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  EXPECT_EQ(resumed->resumed_round, boundary);
  EXPECT_TRUE(resumed->weights.EqualsApprox(ref->weights, 0))
      << "resumed ps model is not bit-identical";
}

INSTANTIATE_TEST_SUITE_P(
    Rounds, PsCrashResumeTest,
    ::testing::Combine(::testing::Values<int64_t>(1, 6, 11),
                       ::testing::Values<uint64_t>(1, 2, 3)));

TEST(PsRollbackTest, ExclusionCascadeRollsBackToLastCheckpoint) {
  MatrixBlock x = *RandMatrix(40, 5, -1, 1, 1.0, 9, RandPdf::kUniform, 1);
  MatrixBlock y = *RandMatrix(40, 1, 0, 1, 1.0, 10, RandPdf::kUniform, 1);

  TempDir dir("psroll");
  PsConfig cfg;
  cfg.num_workers = 4;
  cfg.epochs = 2;
  cfg.batch_size = 5;
  cfg.mode = PsUpdateMode::kBSP;
  cfg.checkpoint_dir = dir.path();
  cfg.rollback_after_exclusions = 1;

  // Worker 2 is permanently dead (every injector probe on its id fires):
  // its first server call exhausts the retry budget and excludes it, which
  // trips the rollback threshold.
  FaultConfig faults;
  faults.enabled = true;
  faults.seed = 5;
  faults.profile.dead_targets.push_back({FaultLayer::kPs, 2});
  ScopedFaultInjection chaos(faults);

  auto r = PsTrain(x, y, cfg);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->excluded_workers, 1);
  EXPECT_GE(r->rollbacks, 1);
  EXPECT_EQ(r->weights.Rows(), 5);
}

TEST(PsRollbackTest, CorruptPsCheckpointRejectedOnResume) {
  MatrixBlock x = *RandMatrix(24, 4, -1, 1, 1.0, 3, RandPdf::kUniform, 1);
  MatrixBlock y = *RandMatrix(24, 1, 0, 1, 1.0, 4, RandPdf::kUniform, 1);
  TempDir dir("pscorrupt");
  PsConfig cfg;
  cfg.num_workers = 2;
  cfg.epochs = 1;
  cfg.batch_size = 6;
  cfg.mode = PsUpdateMode::kBSP;
  cfg.checkpoint_dir = dir.path();
  ASSERT_TRUE(PsTrain(x, y, cfg).ok());
  // Flip a payload byte in the committed model checkpoint.
  std::string ckpt = (fs::path(dir.path()) / "ps_model.ckpt").string();
  ASSERT_TRUE(fs::exists(ckpt));
  {
    std::fstream f(ckpt, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(12);
    f.put('\x55');
  }
  cfg.resume = true;
  auto r = PsTrain(x, y, cfg);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorrupt) << r.status();
}

}  // namespace
}  // namespace sysds
