// Federated ML example (§3.3): X and y are row-partitioned across four
// federated sites (worker threads speaking a serialized request/response
// protocol over a simulated wire). Training runs entirely via federated
// push-down instructions — each site computes its local t(Xi)%*%Xi and
// t(Xi)%*%yi, only the small aggregates travel, and the master combines and
// solves. The raw data never leaves its site, and the example reports how
// many bytes crossed site boundaries compared to centralizing the data.

#include <iostream>

#include "fed/federated.h"
#include "runtime/matrix/lib_datagen.h"
#include "runtime/matrix/lib_matmult.h"
#include "runtime/matrix/lib_solve.h"

int main() {
  using namespace sysds;

  const int64_t rows = 4000, cols = 20;
  auto x_or = RandMatrix(rows, cols, 0.0, 1.0, 1.0, 7, RandPdf::kUniform, 1);
  auto w_or = RandMatrix(cols, 1, -1.0, 1.0, 1.0, 8, RandPdf::kUniform, 1);
  if (!x_or.ok() || !w_or.ok()) return 1;
  auto y_or = MatMult(*x_or, *w_or, 1);
  if (!y_or.ok()) return 1;

  FederatedRegistry registry(4);
  auto fx = FederatedMatrix::Distribute(&registry, *x_or, "X");
  auto fy = FederatedMatrix::Distribute(&registry, *y_or, "y");
  if (!fx.ok() || !fy.ok()) {
    std::cerr << "federated init failed\n";
    return 1;
  }
  int64_t bytes_after_init = registry.TotalBytesTransferred();

  // Federated closed-form training via push-down aggregates.
  auto fb = FederatedLmDS(*fx, *fy, 1e-8);
  if (!fb.ok()) {
    std::cerr << "federated training failed: " << fb.status() << "\n";
    return 1;
  }
  int64_t pushdown_bytes = registry.TotalBytesTransferred() - bytes_after_init;

  // Verify against local training on the centralized data.
  auto xtx = TransposeSelfMatMult(*x_or, true, 1);
  auto xty = TransposeLeftMatMult(*x_or, *y_or, 1);
  xtx->ToDense();
  for (int64_t i = 0; i < cols; ++i) xtx->DenseRow(i)[i] += 1e-8;
  auto local = Solve(*xtx, *xty);
  double diff = 0;
  for (int64_t i = 0; i < cols; ++i) {
    double d = fb->Get(i, 0) - local->Get(i, 0);
    diff += d * d;
  }
  std::cout << "federated vs local coefficient distance: " << diff << "\n";

  // What centralizing would have cost instead.
  int64_t before = registry.TotalBytesTransferred();
  auto collected = fx->Collect();
  (void)collected;
  int64_t centralize_bytes = registry.TotalBytesTransferred() - before;
  std::cout << "bytes over the wire (push-down training): " << pushdown_bytes
            << "\n";
  std::cout << "bytes over the wire (centralizing X once): "
            << centralize_bytes << "\n";
  std::cout << "push-down exchanges "
            << static_cast<double>(centralize_bytes) /
                   static_cast<double>(pushdown_bytes)
            << "x less data\n";
  return 0;
}
