// Command-line DML runner (the `java -jar systemds` equivalent):
//   dml_runner script.dml [-stats] [-lineage] [-reuse full|partial]
//              [-explain] [-threads N] [--trace out.json]
//              [--metrics out.json] [--chaos-seed N] [--no-fusion]
//              [--compress]
// Executes the script and prints script output; with -stats, prints the
// heavy-hitter instruction profile afterwards. --trace records spans from
// every runtime subsystem and writes Chrome trace-event JSON (open in
// chrome://tracing or https://ui.perfetto.dev); --metrics dumps the metrics
// registry (counters/gauges/histograms) as JSON. --chaos-seed N runs the
// script under deterministic fault injection (FaultProfile::Standard()
// with seed N); combine with --metrics to inspect the fault.* counters.
// --no-fusion disables the operator-fusion planner (results are identical;
// use it to isolate fusion when debugging or benchmarking — with fusion on,
// --metrics reports fusion.regions and fusion.intermediates_elided).
// --compress enables workload-aware compressed linear algebra: loops over
// large read-only matrices run on compressed column groups (results are
// identical; --metrics reports the compress.* counters).
// --checkpoint-dir DIR snapshots loop-carried variables of outermost loops
// into crash-safe checkpoint files every --checkpoint-interval iterations
// (default 1; <= 0 selects the adaptive cost gate). After a crash, rerun
// the same command with --resume to restart from the last committed
// checkpoint instead of iteration 0 (--metrics reports recovery.*).
// --mem-limit BYTES caps the buffer pool: matrix data beyond the limit is
// transparently spilled to temp files and restored on access (results are
// identical at any limit; --metrics reports the bufferpool.* counters).
// --no-write-behind / --no-prefetch disable the pool's asynchronous spill
// writer and loop-hint prefetcher for debugging or benchmarking stalls.

#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "api/systemds_context.h"
#include "common/statistics.h"

int main(int argc, char** argv) {
  using namespace sysds;
  if (argc < 2) {
    std::cerr << "usage: " << argv[0]
              << " script.dml [-stats] [-lineage] [-reuse full|partial]"
                 " [-threads N] [--trace out.json] [--metrics out.json]"
                 " [--chaos-seed N] [--no-fusion] [--compress]"
                 " [--transform-compressed] [--transform-threads N]"
                 " [--checkpoint-dir DIR] [--checkpoint-interval N]"
                 " [--resume] [--mem-limit BYTES] [--no-write-behind]"
                 " [--no-prefetch]\n";
    return 2;
  }

  DMLConfig config;
  std::string path;
  std::string trace_path;
  std::string metrics_path;
  bool explain = false;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "-explain") {
      explain = true;
    } else if (arg == "-stats") {
      config.statistics = true;
    } else if (arg == "-lineage") {
      config.lineage_tracing = true;
    } else if (arg == "-reuse" && i + 1 < argc) {
      std::string policy = argv[++i];
      config.reuse_policy = policy == "partial" ? ReusePolicy::kPartial
                                                : ReusePolicy::kFull;
    } else if (arg == "-threads" && i + 1 < argc) {
      config.num_threads = std::atoi(argv[++i]);
    } else if ((arg == "--trace" || arg == "-trace") && i + 1 < argc) {
      trace_path = argv[++i];
    } else if ((arg == "--metrics" || arg == "-metrics") && i + 1 < argc) {
      metrics_path = argv[++i];
    } else if (arg == "--no-fusion" || arg == "-no-fusion") {
      config.fusion_enabled = false;
    } else if (arg == "--compress" || arg == "-compress") {
      config.compression_enabled = true;
    } else if (arg == "--transform-compressed" ||
               arg == "-transform-compressed") {
      config.transform_output = TransformOutputFormat::kCompressed;
    } else if ((arg == "--transform-threads" || arg == "-transform-threads") &&
               i + 1 < argc) {
      config.transform_num_threads = std::atoi(argv[++i]);
    } else if ((arg == "--chaos-seed" || arg == "-chaos-seed") &&
               i + 1 < argc) {
      config.faults.enabled = true;
      config.faults.seed = static_cast<uint64_t>(std::atoll(argv[++i]));
      config.faults.profile = FaultProfile::Standard();
    } else if ((arg == "--checkpoint-dir" || arg == "-checkpoint-dir") &&
               i + 1 < argc) {
      config.checkpoint_dir = argv[++i];
    } else if ((arg == "--checkpoint-interval" ||
                arg == "-checkpoint-interval") &&
               i + 1 < argc) {
      config.checkpoint_interval = std::atoll(argv[++i]);
    } else if (arg == "--resume" || arg == "-resume") {
      config.checkpoint_resume = true;
    } else if ((arg == "--mem-limit" || arg == "-mem-limit") && i + 1 < argc) {
      config.buffer_pool_limit = std::atoll(argv[++i]);
    } else if (arg == "--no-write-behind" || arg == "-no-write-behind") {
      config.buffer_pool_write_behind = false;
    } else if (arg == "--no-prefetch" || arg == "-no-prefetch") {
      config.buffer_pool_prefetch = false;
    } else if (arg == "-reuse" || arg == "-threads" || arg == "--trace" ||
               arg == "-trace" || arg == "--metrics" || arg == "-metrics" ||
               arg == "--chaos-seed" || arg == "-chaos-seed" ||
               arg == "--checkpoint-dir" || arg == "-checkpoint-dir" ||
               arg == "--checkpoint-interval" || arg == "-checkpoint-interval" ||
               arg == "--transform-threads" || arg == "-transform-threads" ||
               arg == "--mem-limit" || arg == "-mem-limit") {
      std::cerr << arg << " requires a value\n";
      return 2;
    } else if (!arg.empty() && arg[0] != '-') {
      path = arg;
    } else {
      std::cerr << "unknown option: " << arg << "\n";
      return 2;
    }
  }
  if (path.empty()) {
    std::cerr << "no script given\n";
    return 2;
  }

  std::ifstream in(path);
  if (!in) {
    std::cerr << "cannot open " << path << "\n";
    return 1;
  }
  std::stringstream buf;
  buf << in.rdbuf();

  Statistics::Get().Reset();
  SystemDSContext::Builder builder;
  builder.WithConfig(config);
  if (!trace_path.empty()) builder.EnableTracing(trace_path);
  if (!metrics_path.empty()) builder.EnableMetricsExport(metrics_path);
  auto ctx = builder.Build();
  if (explain) {
    auto plan = ctx->Explain(buf.str());
    if (!plan.ok()) {
      std::cerr << "error: " << plan.status() << "\n";
      return 1;
    }
    std::cout << *plan;
  }
  auto result = ctx->Execute(buf.str(), Inputs(), Outputs::None());
  if (!result.ok()) {
    std::cerr << "error: " << result.status() << "\n";
    return 1;
  }
  std::cout << result->Output();
  if (config.statistics) {
    std::cout << "\n" << Statistics::Get().Report();
  }
  Status flush = ctx->FlushObservability();
  if (!flush.ok()) {
    std::cerr << "error: " << flush << "\n";
    return 1;
  }
  return 0;
}
