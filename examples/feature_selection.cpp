// Example 1 of the paper: stepwise linear regression (steplm), a classical
// forward feature-selection method built entirely from declarative
// abstractions — steplm runs what-if scenarios in a parfor, each scenario
// trains via lm/lmDS, and the lineage reuse cache exploits the redundancy
// across scenarios (partial reuse of t(X)%*%X over column-augmented X).

#include <iostream>

#include "api/systemds_context.h"
#include "common/util.h"

int main() {
  using namespace sysds;

  const char* script = R"(
    X = read('features.csv')
    y = read('labels.csv')
    [B, S] = steplm(X, y, 0, 0.001)
    print("selection order (0 = not selected):")
    print(toString(S))
    write(B, 'model.txt')
  )";

  // Synthesize a dataset where only 3 of 12 features matter.
  auto gen = SystemDSContext::Builder().Build();
  auto g = gen->Execute(R"(
    X = rand(rows=2000, cols=12, seed=1)
    y = 3*X[,2] - 2*X[,5] + 0.5*X[,9]
    write(X, 'features.csv')
    write(y, 'labels.csv')
  )",
                        Inputs(), Outputs::None());
  if (!g.ok()) {
    std::cerr << "datagen error: " << g.status() << "\n";
    return 1;
  }

  auto run = [&](ReusePolicy policy, const char* label) -> int {
    auto ctx = SystemDSContext::Builder().Reuse(policy).Build();
    Timer timer;
    auto r = ctx->Execute(script, Inputs(), Outputs::None());
    if (!r.ok()) {
      std::cerr << "error: " << r.status() << "\n";
      return 1;
    }
    std::cout << "=== " << label << " (" << timer.ElapsedSeconds()
              << "s) ===\n"
              << r->Output();
    if (policy != ReusePolicy::kNone) {
      LineageCacheStats stats = ctx->Cache()->Stats();
      std::cout << "lineage cache: " << stats.full_hits << " full hits, "
                << stats.partial_hits << " partial hits\n";
    }
    return 0;
  };

  if (run(ReusePolicy::kNone, "steplm without reuse") != 0) return 1;
  if (run(ReusePolicy::kPartial, "steplm with lineage-based reuse") != 0) {
    return 1;
  }
  return 0;
}
