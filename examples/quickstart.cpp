// Quickstart: compile and run a DML script through the SystemDSContext API
// (the MLContext-style entry point), bind in-memory inputs, fetch outputs.
//
// Build: cmake -B build -G Ninja && cmake --build build --target quickstart
// Run:   ./build/examples/quickstart

#include <iostream>

#include "api/systemds_context.h"

int main() {
  using namespace sysds;

  auto ctx = SystemDSContext::Builder().Build();

  // 1) Scalars, matrices, control flow, and builtin functions in DML.
  auto r1 = ctx->Execute(R"(
    X = rand(rows=100, cols=5, seed=42)
    mu = colMeans(X)
    sd = colSds(X)
    Z = (X - mu) / sd          # standardize
    s = sum(Z^2) / (nrow(Z) * ncol(Z))
    print("mean square of standardized data: " + s)
  )",
                         Inputs(), Outputs("Z", "s"));
  if (!r1.ok()) {
    std::cerr << "error: " << r1.status() << "\n";
    return 1;
  }
  std::cout << r1->Output();

  // 2) Train a regression model with the lm builtin (dispatches to
  //    lmDS/lmCG like Figure 2 of the paper) on bound in-memory inputs.
  MatrixBlock x = MatrixBlock::Dense(200, 3);
  MatrixBlock y = MatrixBlock::Dense(200, 1);
  for (int64_t i = 0; i < 200; ++i) {
    double a = 0.01 * static_cast<double>(i);
    x.DenseRow(i)[0] = a;
    x.DenseRow(i)[1] = a * a;
    x.DenseRow(i)[2] = 1.0;
    y.DenseRow(i)[0] = 2.0 * a - 0.5 * a * a + 3.0;
  }
  x.MarkNnzDirty();
  y.MarkNnzDirty();

  auto r2 = ctx->Execute("B = lm(X, y, 0, 1e-10)\n",
                         Inputs().Matrix("X", x).Matrix("y", y), Outputs("B"));
  if (!r2.ok()) {
    std::cerr << "error: " << r2.status() << "\n";
    return 1;
  }
  MatrixBlock b = *r2->GetMatrix("B");
  std::cout << "fitted coefficients (expect ~[2, -0.5, 3]):\n"
            << b.ToString() << "\n";

  // 3) JMLC-style prepared script: compile once, execute many times with
  //    different inputs (low-latency scoring). The Inputs/Outputs overload
  //    is thread-safe: per-call bindings over the shared compiled program.
  SymbolInfo xi;
  xi.dt = DataType::kMatrix;
  auto prepared = ctx->Prepare("yhat = X %*% B\n", {{"X", xi}, {"B", xi}});
  if (!prepared.ok()) {
    std::cerr << "error: " << prepared.status() << "\n";
    return 1;
  }
  auto scored =
      (*prepared)->Execute(Inputs().Matrix("X", x).Matrix("B", b),
                           Outputs("yhat"));
  if (!scored.ok()) {
    std::cerr << "error: " << scored.status() << "\n";
    return 1;
  }
  std::cout << "scored " << scored->GetMatrix("yhat")->Rows()
            << " rows with the prepared script\n";
  return 0;
}
