// End-to-end data science lifecycle example (the paper's core pitch):
// ingest a heterogeneous CSV into a frame, compose a semi-automated data
// preparation pipeline (recode + dummy-code + binning + imputation via
// transformencode, §3.2), train a model on the encoded features, and score
// new records with transformapply using the fitted metadata — all inside
// one declarative script, no boundary crossing.

#include <fstream>
#include <iostream>

#include "api/systemds_context.h"

int main() {
  using namespace sysds;

  // A small heterogeneous dataset: city (categorical), age (numeric,
  // missing values), income (numeric), label.
  {
    std::ofstream f("people.csv");
    f << "city,age,income,label\n";
    const char* cities[] = {"graz", "vienna", "linz"};
    for (int i = 0; i < 300; ++i) {
      const char* city = cities[i % 3];
      bool missing_age = (i % 17) == 0;
      double age = 20 + (i * 7) % 45;
      double income = 30000 + 1000.0 * ((i * 13) % 40) + (i % 3) * 5000;
      double label = income / 10000.0 + ((i % 3) == 1 ? 2.0 : 0.0);
      f << city << ",";
      if (missing_age) {
        f << "";
      } else {
        f << age;
      }
      f << "," << income << "," << label << "\n";
    }
  }

  auto ctx = SystemDSContext::Builder().Build();
  auto r = ctx->Execute(R"(
    F = read('people.csv', data_type='frame', format='csv', header=TRUE)
    spec = "{\"recode\":[\"city\"],\"dummycode\":[\"city\"],\"impute\":[{\"name\":\"age\",\"method\":\"mean\"}],\"bin\":[{\"name\":\"age\",\"method\":\"equi-width\",\"numbins\":4}]}"
    [Xall, M] = transformencode(target=F, spec=spec)

    # split encoded features vs. label (last column)
    n = ncol(Xall)
    X = Xall[, 1:(n-1)]
    y = Xall[, n]

    # scale numeric features and train
    [Xs, cm, csd] = scale(X)
    B = lm(Xs, y, 1, 0.001)

    # training error
    ones = matrix(1, nrow(Xs), 1)
    yhat = cbind(Xs, ones) %*% B
    rmse = sqrt(sum((yhat - y)^2) / nrow(y))
    print("training RMSE: " + rmse)

    # transformapply re-encodes raw records with the fitted metadata, so a
    # scoring pipeline stays consistent with training (stateless system,
    # rules shipped as frames).
    X2 = transformapply(target=F, spec=spec, meta=M)
    consistency = sum((X2 - Xall)^2)
    print("encode/apply consistency (expect 0): " + consistency)
  )",
                        Inputs(), Outputs("B", "M"));
  if (!r.ok()) {
    std::cerr << "error: " << r.status() << "\n";
    return 1;
  }
  std::cout << r->Output();
  std::cout << "transform metadata frame:\n"
            << r->GetFrame("M")->ToString(6) << "\n";
  std::cout << "model coefficients:\n"
            << r->GetMatrix("B")->ToString(20, 4) << "\n";
  return 0;
}
